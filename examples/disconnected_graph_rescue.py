#!/usr/bin/env python3
"""Scenario: the graph is loosely connected and a random walk gets
trapped — Frontier Sampling doesn't.

This reproduces the paper's GAB stress test (Sections 4.5, 6.1-6.2):
two Barabási–Albert graphs with very different average degrees (~2 and
~10) joined by a *single* edge.  A walker that starts on one side
almost never crosses the bridge within the budget, so its estimate of
the degree distribution reflects only its side.  FS spreads m dependent
walkers over the whole graph and keeps them allocated proportionally to
volume.

Run:  python examples/disconnected_graph_rescue.py
"""

from repro import FrontierSampler, SingleRandomWalk, barabasi_albert, join_by_bridge
from repro.estimators import degree_pmf_from_trace
from repro.metrics import true_degree_pmf
from repro.util import child_rng


def main() -> None:
    sparse = barabasi_albert(2_000, 1, rng=0)   # average degree ~2
    dense = barabasi_albert(2_000, 5, rng=1)    # average degree ~10
    graph = join_by_bridge(sparse, dense)
    print(
        f"GAB graph: {graph.num_vertices:,} vertices,"
        f" {graph.num_edges:,} edges, one bridge edge"
    )

    target_degree = 10
    truth = true_degree_pmf(graph)[target_degree]
    print(f"true fraction of degree-{target_degree} vertices:"
          f" theta = {truth:.4f}\n")

    budget = graph.num_vertices / 4
    print(f"{'run':>4} {'SingleRW':>10} {'FS (m=100)':>11}")
    fs_errors, rw_errors = [], []
    for run in range(8):
        rw_trace = SingleRandomWalk().sample(graph, budget, child_rng(5, run))
        fs_trace = FrontierSampler(100).sample(graph, budget, child_rng(6, run))
        rw_estimate = degree_pmf_from_trace(graph, rw_trace).get(
            target_degree, 0.0
        )
        fs_estimate = degree_pmf_from_trace(graph, fs_trace).get(
            target_degree, 0.0
        )
        rw_errors.append(abs(rw_estimate - truth))
        fs_errors.append(abs(fs_estimate - truth))
        print(f"{run:>4} {rw_estimate:>10.4f} {fs_estimate:>11.4f}")

    print(f"\ntruth {truth:.4f}")
    print(
        f"mean |error|: SingleRW {sum(rw_errors) / len(rw_errors):.4f},"
        f" FS {sum(fs_errors) / len(fs_errors):.4f}"
    )
    print(
        "\nSingleRW's estimates bifurcate: runs seeded in the sparse"
        "\nhalf report one value, runs seeded in the dense half another"
        "\n— the walker cannot cross the bridge within the budget."
        "\nEvery FS run lands near the truth."
    )


if __name__ == "__main__":
    main()
