#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one go.

Equivalent to `repro-experiments all`, with a size/runs preset chosen
to finish in a few minutes.  Output is the same rows/series the paper
reports, one block per artifact.

Run:  python examples/reproduce_paper.py [--scale 0.25] [--runs 40] \\
          [--procs N]

``--procs N`` fans every experiment's replicates across N worker
processes (results are bit-identical for any N at a fixed seed; the
pooled sessions use the csr draw protocol).
"""

import argparse
import sys

from repro.experiments.cli import main as cli_main


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--runs", type=int, default=40)
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="worker processes for replicate fan-out (default: in-process)",
    )
    args = parser.parse_args()
    argv = ["all", "--scale", str(args.scale), "--runs", str(args.runs)]
    if args.procs is not None:
        argv += ["--procs", str(args.procs)]
    return cli_main(argv)


if __name__ == "__main__":
    sys.exit(main())
