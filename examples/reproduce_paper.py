#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one go.

Equivalent to `repro-experiments all`, with a size/runs preset chosen
to finish in a few minutes.  Output is the same rows/series the paper
reports, one block per artifact.

Run:  python examples/reproduce_paper.py [--scale 0.25] [--runs 40]
"""

import argparse
import sys

from repro.experiments.cli import main as cli_main


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--runs", type=int, default=40)
    args = parser.parse_args()
    return cli_main(
        ["all", "--scale", str(args.scale), "--runs", str(args.runs)]
    )


if __name__ == "__main__":
    sys.exit(main())
