#!/usr/bin/env python3
"""Scenario: characterize an online social network you can only crawl.

This is the paper's motivating workload (Sections 1 and 6): a Flickr-like
service exposes, per queried user, their in/out links and group
memberships.  Queries are budgeted.  We estimate:

- the in-degree distribution's CCDF (the plot of choice for degree
  distributions),
- the density of the most popular special-interest groups,
- the graph's assortativity,

with three crawl strategies under the *same* budget, and score each
against ground truth (which we, unlike the crawler, can compute — the
network is synthetic).

Run:  python examples/crawl_social_network.py
"""

from repro.datasets import flickr_like
from repro.estimators import (
    assortativity_from_trace,
    degree_ccdf_from_trace,
    vertex_label_densities_from_trace,
)
from repro.metrics import (
    nmse,
    true_degree_ccdf,
    true_group_densities,
    true_undirected_assortativity,
)
from repro.sampling import FrontierSampler, MultipleRandomWalk, SingleRandomWalk
from repro.util import child_rng


def main() -> None:
    dataset = flickr_like(scale=0.5)
    graph = dataset.graph
    summary = dataset.summary()
    print(summary.header())
    print(summary.as_row())

    budget = graph.num_vertices / 5
    dimension = 100
    runs = 30
    strategies = {
        "FS": FrontierSampler(dimension),
        "SingleRW": SingleRandomWalk(),
        "MultipleRW": MultipleRandomWalk(dimension),
    }

    # Ground truth (available only because the network is synthetic).
    truth_ccdf = true_degree_ccdf(graph, dataset.in_degree_of)
    groups = sorted(
        dataset.labels.all_labels(),
        key=lambda g: -dataset.labels.count_with_label(g),
    )[:5]
    truth_groups = true_group_densities(graph, dataset.labels, groups)
    truth_r = true_undirected_assortativity(graph)

    print(f"\nbudget = {budget:.0f} queries,"
          f" {runs} independent crawls per strategy\n")
    header = (
        f"{'strategy':<12} {'CCDF(10) NMSE':>14} {'top-group NMSE':>15}"
        f" {'assort. NMSE':>13}"
    )
    print(header)
    print("-" * len(header))
    for name, sampler in strategies.items():
        ccdf_estimates, group_estimates, r_estimates = [], [], []
        for run in range(runs):
            trace = sampler.sample(graph, budget, child_rng(99, run))
            ccdf_estimates.append(
                degree_ccdf_from_trace(
                    graph, trace, dataset.in_degree_of
                ).get(10, 0.0)
            )
            group_estimates.append(
                vertex_label_densities_from_trace(
                    graph, trace, dataset.labels, groups
                )[groups[0]]
            )
            r_estimates.append(assortativity_from_trace(graph, trace))
        print(
            f"{name:<12}"
            f" {nmse(ccdf_estimates, truth_ccdf[10]):>14.3f}"
            f" {nmse(group_estimates, truth_groups[groups[0]]):>15.3f}"
            f" {nmse(r_estimates, truth_r):>13.3f}"
        )

    print(
        "\nFS should post the smallest errors: its uniformly seeded"
        "\nfrontier starts near the walk's steady state, while the"
        "\nindependent-walker baselines pay for their transient"
        " (Theorem 5.4)."
    )


if __name__ == "__main__":
    main()
