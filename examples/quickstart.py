#!/usr/bin/env python3
"""Quickstart: sample a graph with Frontier Sampling and estimate its
degree distribution, assortativity and clustering coefficient.

Run:  python examples/quickstart.py [--backend {list,csr}] [--resume]

``--backend csr`` routes the walk through the vectorized CSR engine
(native C kernels when a compiler is available) and the estimators
through the array-native fast path — same estimates, different
execution substrate.

``--resume`` additionally demos the incremental session protocol:
walk, checkpoint to disk, resume, extend the budget, and stream the
degree estimate from trace increments — ending with proof that the
resumed trace is bit-identical to an uninterrupted run.
"""

import argparse
import os
import tempfile

from repro import FrontierSampler, SingleRandomWalk, barabasi_albert
from repro.sampling import set_default_backend
from repro.estimators import (
    assortativity_from_trace,
    degree_ccdf_from_trace,
    global_clustering_from_trace,
)
from repro.metrics import (
    nmse,
    true_degree_ccdf,
    true_global_clustering,
    true_undirected_assortativity,
)


def resume_demo(graph) -> None:
    """Checkpoint a session mid-walk, resume it, stream the estimate."""
    from repro.estimators import StreamingDegreePMF
    from repro.sampling import load_session

    sampler = FrontierSampler(dimension=256)
    session = sampler.start(graph, rng=7)
    pmf = StreamingDegreePMF(graph)
    session.advance_budget(2_000)
    pmf.update(session.take_trace())

    handle, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(handle)
    try:
        session.save(path)
        print(f"\ncheckpointed at {session.spent():.0f} budget units"
              f" ({os.path.getsize(path):,} bytes on disk, graph excluded)")
        resumed = load_session(path, graph)
        resumed.advance_budget(4_000)  # extend the budget, keep walking
        increment = resumed.take_trace()
        pmf.update(increment)
        print(f"resumed to {resumed.spent():.0f} budget units;"
              f" streamed CCDF(10) = {pmf.ccdf().get(10, 0.0):.4f}")

        # The anytime protocol is exact: the same walk run without the
        # disk round-trip produces the identical step sequence.
        uninterrupted = sampler.start(graph, rng=7)
        uninterrupted.advance_budget(2_000)
        uninterrupted.advance_budget(4_000)
        assert increment.edges[-3:] == uninterrupted.trace().edges[-3:]
        print(f"resume is bit-exact: last edges {increment.edges[-3:]}"
              " match an uninterrupted run")
    finally:
        os.unlink(path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("list", "csr"),
        default="list",
        help="sampling backend: 'list' (interpreted, paper-literal)"
        " or 'csr' (vectorized arrays + array-native estimators)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="also demo session checkpoint/resume + streaming estimation",
    )
    args = parser.parse_args()
    set_default_backend(args.backend)

    # A scale-free graph with 20k vertices — the kind of topology the
    # paper's crawled social networks exhibit.
    graph = barabasi_albert(20_000, 3, rng=42)
    print(f"graph: {graph.num_vertices:,} vertices,"
          f" {graph.num_edges:,} edges,"
          f" average degree {graph.average_degree():.1f}")

    # Frontier Sampling: one coordinated process driving 256 walkers,
    # seeded at uniformly random vertices.  The budget counts vertex
    # queries: 256 seeds + 3,744 walk steps = 4,000 total.
    sampler = FrontierSampler(dimension=256)
    trace = sampler.sample(graph, budget=4_000, rng=7)
    print(f"\nsampled {trace.num_steps:,} edges"
          f" ({trace.spent():.0f} budget units spent)")

    # Degree distribution (CCDF), reweighted per eq. (7) of the paper.
    estimated = degree_ccdf_from_trace(graph, trace)
    truth = true_degree_ccdf(graph)
    print("\ndegree   true CCDF   estimated CCDF")
    for degree in (3, 5, 10, 30, 100):
        if truth.get(degree, 0) > 0:
            print(f"{degree:>6}   {truth[degree]:>9.4f}"
                  f"   {estimated.get(degree, 0.0):>14.4f}")

    # Scalar characteristics from the same trace.
    est_r = assortativity_from_trace(graph, trace)
    est_c = global_clustering_from_trace(graph, trace)
    print(f"\nassortativity:  true {true_undirected_assortativity(graph):+.4f}"
          f"  estimated {est_r:+.4f}")
    print(f"clustering:     true {true_global_clustering(graph):.4f}"
          f"   estimated {est_c:.4f}")

    # Compare against a single random walk with the same budget, over
    # a few replications.
    fs_estimates, rw_estimates = [], []
    true_gamma10 = truth[10]
    for seed in range(20):
        fs_trace = FrontierSampler(256).sample(graph, 4_000, rng=seed)
        rw_trace = SingleRandomWalk().sample(graph, 4_000, rng=seed)
        fs_estimates.append(
            degree_ccdf_from_trace(graph, fs_trace).get(10, 0.0)
        )
        rw_estimates.append(
            degree_ccdf_from_trace(graph, rw_trace).get(10, 0.0)
        )
    print(f"\nNMSE of CCDF(10) over 20 runs:"
          f"  FS {nmse(fs_estimates, true_gamma10):.3f}"
          f"  SingleRW {nmse(rw_estimates, true_gamma10):.3f}")

    if args.resume:
        resume_demo(graph)


if __name__ == "__main__":
    main()
