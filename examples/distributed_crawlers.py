#!/usr/bin/env python3
"""Scenario: run Frontier Sampling with *no coordinator* (Theorem 5.5).

Algorithm 1 looks centralized: line 4 picks a walker with probability
proportional to its current degree, which seems to require global
knowledge of the frontier.  Theorem 5.5 removes the coordinator: run m
independent crawlers where *leaving* vertex v costs an
Exponential(deg(v)) holding time; the merged, time-ordered edge stream
is an FS trace.

This example runs both realizations side by side on the same graph and
shows that their estimates agree — and that each distributed walker
really did act independently (no message ever crosses walkers).

Run:  python examples/distributed_crawlers.py
"""

from repro import DistributedFrontierSampler, FrontierSampler
from repro.datasets import youtube_like
from repro.estimators import degree_ccdf_from_trace
from repro.metrics import nmse, true_degree_ccdf
from repro.util import child_rng


def main() -> None:
    dataset = youtube_like(scale=0.5)
    graph = dataset.graph
    print(dataset.summary().header())
    print(dataset.summary().as_row())

    dimension = 64
    budget = graph.num_vertices / 5
    runs = 25
    truth = true_degree_ccdf(graph, dataset.in_degree_of)
    probe_degrees = [d for d in (1, 3, 10, 30) if truth.get(d, 0) > 0]

    centralized = FrontierSampler(dimension)
    distributed = DistributedFrontierSampler(dimension)

    print(f"\n{runs} runs each, budget {budget:.0f},"
          f" m = {dimension} walkers\n")
    print(f"{'degree':>7} {'truth':>9} {'FS NMSE':>9} {'DFS NMSE':>9}")
    for degree in probe_degrees:
        fs_estimates, dfs_estimates = [], []
        for run in range(runs):
            fs_trace = centralized.sample(graph, budget, child_rng(1, run))
            dfs_trace = distributed.sample(graph, budget, child_rng(2, run))
            fs_estimates.append(
                degree_ccdf_from_trace(
                    graph, fs_trace, dataset.in_degree_of
                ).get(degree, 0.0)
            )
            dfs_estimates.append(
                degree_ccdf_from_trace(
                    graph, dfs_trace, dataset.in_degree_of
                ).get(degree, 0.0)
            )
        print(
            f"{degree:>7} {truth[degree]:>9.4f}"
            f" {nmse(fs_estimates, truth[degree]):>9.3f}"
            f" {nmse(dfs_estimates, truth[degree]):>9.3f}"
        )

    # Show the independence: per-walker step counts under DFS follow
    # each walker's own exponential clock.
    trace = distributed.sample(graph, budget, rng=123)
    steps = sorted(len(edges) for edges in trace.per_walker)
    print(
        f"\nDFS per-walker steps (min/median/max):"
        f" {steps[0]}/{steps[len(steps) // 2]}/{steps[-1]}"
        f" — busier walkers sat on higher-degree vertices,"
        f"\nreproducing line 4 of Algorithm 1 without any coordination."
    )

    # Because the walkers are independent, the same process shards
    # across OS processes: workers share the graph through mmap'd
    # read-only CSR buffers and only the time-ordered merge is
    # centralized.  Per-walker RNG streams make the merged trace
    # identical for any shard count.
    from repro import ShardedFrontierSampler

    sharded = ShardedFrontierSampler(dimension, procs=2)
    sharded_trace = sharded.sample(graph, budget, rng=123)
    solo_trace = ShardedFrontierSampler(
        dimension, procs=1, use_processes=False
    ).sample(graph, budget, rng=123)
    identical = (
        sharded_trace.step_sources == solo_trace.step_sources
    ).all() and (sharded_trace.step_times == solo_trace.step_times).all()
    print(
        f"\nSharded FS across 2 worker processes: {sharded_trace.num_steps}"
        f" merged jumps,\nbit-identical to the single-shard run:"
        f" {bool(identical)}"
    )


if __name__ == "__main__":
    main()
