"""The backend vocabulary shared across layers.

Graph I/O, the dataset registry, and the samplers all accept a
``backend`` name; this module is the one place the legal names (and
their validation error) live, so adding a backend — e.g. an mmap'd
CSR variant — touches exactly one definition.  It deliberately sits
in ``util`` (imports nothing) so the graph layer can use it without
depending on the sampling layer.
"""

from __future__ import annotations

#: - "list": adjacency-list structures walked by interpreted code.
#: - "csr": packed indptr/indices arrays walked by the batch engine.
VALID_BACKENDS = ("list", "csr")


def check_backend_name(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"backend must be one of {VALID_BACKENDS}, got {backend!r}"
        )
    return backend
