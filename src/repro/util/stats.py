"""Small statistics helpers: online moments and empirical distributions.

The experiment harness aggregates thousands of replicated estimates per
degree bin; Welford-style online moments keep that memory-light and
numerically stable.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


class OnlineMoments:
    """Welford accumulator for count, mean and (unbiased) variance."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def update(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for v in values:
            self.add(v)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (requires >= 2 observations)."""
        if self._count < 2:
            raise ValueError("variance requires at least two observations")
        return self._m2 / (self._count - 1)

    @property
    def population_variance(self) -> float:
        """Biased (population) variance (requires >= 1 observation)."""
        if self._count == 0:
            raise ValueError("no observations")
        return self._m2 / self._count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def mean_squared_about(self, reference: float) -> float:
        """E[(X - reference)^2] over the observations seen so far."""
        if self._count == 0:
            raise ValueError("no observations")
        return self.population_variance + (self._mean - reference) ** 2

    def merge(self, other: "OnlineMoments") -> "OnlineMoments":
        """Return a new accumulator equal to processing both streams."""
        merged = OnlineMoments()
        n = self._count + other._count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._count = n
        if n > 0:
            merged._mean = (
                self._mean * self._count + other._mean * other._count
            ) / n
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / n
            if n > 0
            else 0.0
        )
        return merged


def normalize_counts(counts: Mapping[int, float]) -> Dict[int, float]:
    """Normalize a histogram into a probability mass function."""
    total = float(sum(counts.values()))
    if total <= 0:
        raise ValueError("counts must sum to a positive total")
    return {k: v / total for k, v in counts.items()}


def empirical_pmf(values: Iterable[int]) -> Dict[int, float]:
    """Empirical probability mass function of an integer sample."""
    counts: Dict[int, float] = {}
    n = 0
    for v in values:
        counts[v] = counts.get(v, 0.0) + 1.0
        n += 1
    if n == 0:
        raise ValueError("empirical_pmf requires at least one value")
    return {k: c / n for k, c in counts.items()}


def ccdf_from_pmf(pmf: Mapping[int, float]) -> Dict[int, float]:
    """Complementary CDF ``gamma_l = sum_{k > l} pmf_k`` on the pmf's support.

    Matches the paper's definition (eq. 2): ``gamma_l`` is the
    probability of a value *strictly greater* than ``l``.
    """
    if not pmf:
        raise ValueError("pmf must be non-empty")
    keys = sorted(pmf)
    ccdf: Dict[int, float] = {}
    tail = 0.0
    for k in reversed(keys):
        ccdf[k] = tail  # strictly-greater mass
        tail += pmf[k]
    return {k: ccdf[k] for k in keys}


def total_variation(p: Mapping[int, float], q: Mapping[int, float]) -> float:
    """Total-variation distance between two pmfs on integer support."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in support)


def mean_of_pmf(pmf: Mapping[int, float]) -> float:
    """Expected value of an integer-supported pmf."""
    return sum(k * v for k, v in pmf.items())


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def histogram(values: Iterable[float], edges: Sequence[float]) -> List[int]:
    """Counts of values per half-open bin ``[edges[i], edges[i+1])``."""
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    counts = [0] * (len(edges) - 1)
    for v in values:
        for i in range(len(edges) - 1):
            if edges[i] <= v < edges[i + 1]:
                counts[i] += 1
                break
    return counts
