"""Seeded random-number-generator management.

Every stochastic component in this library accepts either an integer
seed, an existing :class:`random.Random` instance, or ``None`` (fresh
nondeterministic generator).  Experiments that need many independent
replications derive *child* generators from a root seed so that each
replication is reproducible in isolation and the whole experiment is
reproducible end to end.
"""

from __future__ import annotations

import random
from typing import List, Union

import numpy as np

RngLike = Union[int, random.Random, None]

#: RNG-ish inputs the numpy-protocol (csr backend) code paths accept.
NpRngLike = Union[int, random.Random, np.random.Generator, None]

#: Multiplier used to decorrelate derived child seeds.  Any large odd
#: constant works; this one is the 64-bit golden-ratio increment used by
#: splitmix-style generators.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random` instance.

    ``None`` yields a freshly (OS-)seeded generator, an ``int`` seeds a
    new generator, and an existing generator is returned unchanged so
    callers can share state deliberately.
    """
    if rng is None:
        # repro-lint: disable=RPL001 -- rng=None is the documented
        # fresh-OS-entropy convenience path; deterministic callers seed.
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError("rng must be an int seed, random.Random, or None")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        f"rng must be an int seed, random.Random, or None, got {type(rng)!r}"
    )


def ensure_np_rng(rng: NpRngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    The vectorized (csr-backend) walkers draw uniforms in blocks from a
    numpy Generator — a different stream discipline than the
    :class:`random.Random` protocol the interpreted samplers use.  A
    :class:`random.Random` input is accepted for convenience and is
    consumed for 64 bits to derive the numpy seed, so replicated
    experiments that hand out child ``random.Random`` instances remain
    end-to-end reproducible on either backend.
    """
    if rng is None:
        # repro-lint: disable=RPL001 -- rng=None is the documented
        # fresh-OS-entropy convenience path; deterministic callers seed.
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(64))
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError(
            "rng must be an int seed, random.Random, numpy Generator,"
            " or None"
        )
    if isinstance(rng, int):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be an int seed, random.Random, numpy Generator, or"
        f" None, got {type(rng)!r}"
    )


def _mix(seed: int, index: int) -> int:
    """Splitmix64-style finalizer mixing ``seed`` and ``index``."""
    z = (seed + (index + 1) * _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def child_rng(root_seed: int, index: int) -> random.Random:
    """Return the ``index``-th child generator derived from ``root_seed``.

    Children with distinct indices are statistically independent for
    simulation purposes and reproducible: the same ``(root_seed, index)``
    pair always yields the same stream.
    """
    if index < 0:
        raise ValueError(f"child index must be >= 0, got {index}")
    return random.Random(_mix(root_seed, index))


def spawn_rngs(root_seed: int, count: int) -> List[random.Random]:
    """Return ``count`` independent child generators of ``root_seed``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [child_rng(root_seed, i) for i in range(count)]
