"""Registry of thread-execution contracts, checked by ``repro-lint``.

PR 7's thread executor runs replicate and shard tasks concurrently
from a ``ThreadPoolExecutor`` while ctypes has released the GIL inside
the native kernels.  That is only sound for *thread-core* functions:
tasks that read the shared ``CSRGraph`` but never write module globals
and never call a helper that mutates cross-thread state.  The original
audit that established this was a one-time manual sweep; these two
decorators turn it into a permanent, machine-checked contract:

- :func:`thread_core` marks a function as one the thread executor may
  run concurrently.  ``repro-lint`` rule **RPL003** statically rejects
  any ``global`` statement inside it and any call to a function marked
  :func:`non_reentrant` — at lint time, not hours later when a torture
  suite happens to interleave the race.
- :func:`non_reentrant` flags a helper that is *not* safe to call from
  concurrent thread-core tasks (it mutates process-global state), with
  a mandatory reason string that shows up in the registry.

Both decorators are zero-cost at runtime — they only attach metadata —
and importable everywhere (``util`` depends on nothing).  The live
registry (:func:`is_thread_core` / :func:`non_reentrant_reason`) lets
tests assert that the audit sites actually adopted the markers.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

#: Attribute names the decorators attach (and the linter's fixtures
#: mirror).  Dunder-free so ``functools.wraps`` copies them through.
THREAD_CORE_ATTR = "_repro_thread_core"
NON_REENTRANT_ATTR = "_repro_non_reentrant"


def thread_core(fn: _F) -> _F:
    """Mark ``fn`` as a task the thread executor runs concurrently.

    Contract (statically enforced by repro-lint RPL003): the function
    must not write module globals (no ``global`` declarations) and must
    not call anything marked :func:`non_reentrant`.  Shared state comes
    in through arguments — e.g. the ``(csr, native, task)`` signature
    of the sharded worker cores.
    """
    setattr(fn, THREAD_CORE_ATTR, True)
    return fn


def non_reentrant(reason: str) -> Callable[[_F], _F]:
    """Mark a helper unsafe to call from concurrent thread-core tasks.

    ``reason`` is mandatory — it documents *what* global state the
    helper mutates (e.g. "writes the per-process worker globals" or
    "swaps the process-wide default backend") and is surfaced by
    :func:`non_reentrant_reason` and the RPL003 diagnostics.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError("non_reentrant requires a non-empty reason string")

    def decorate(fn: _F) -> _F:
        setattr(fn, NON_REENTRANT_ATTR, reason)
        return fn

    return decorate


def is_thread_core(fn: object) -> bool:
    """Whether ``fn`` was registered with :func:`thread_core`."""
    return bool(getattr(fn, THREAD_CORE_ATTR, False))


def non_reentrant_reason(fn: object) -> Optional[str]:
    """The :func:`non_reentrant` reason for ``fn``, or ``None``."""
    reason = getattr(fn, NON_REENTRANT_ATTR, None)
    return reason if isinstance(reason, str) else None
