"""Low-level utilities shared by the rest of the library.

This package deliberately has no dependency on the graph or sampling
layers; it provides seeded random-number management, weighted-sampling
data structures (Fenwick tree, alias table) and small statistics
helpers (running moments, empirical distributions).
"""

from repro.util.alias import AliasTable
from repro.util.fenwick import FenwickTree
from repro.util.rng import child_rng, ensure_rng, spawn_rngs
from repro.util.stats import (
    OnlineMoments,
    ccdf_from_pmf,
    empirical_pmf,
    normalize_counts,
)

__all__ = [
    "AliasTable",
    "FenwickTree",
    "OnlineMoments",
    "ccdf_from_pmf",
    "child_rng",
    "empirical_pmf",
    "ensure_rng",
    "normalize_counts",
    "spawn_rngs",
]
