"""Walker's alias method for O(1) sampling from a fixed discrete law.

Used where a distribution is sampled many times without changing —
e.g. degree-proportional (steady-state) seeding of random walkers and
random edge sampling with replacement.
"""

from __future__ import annotations

import random
from typing import List, Sequence


class AliasTable:
    """Constant-time sampler for a fixed discrete distribution.

    Construction is O(n); each draw costs one uniform variate and one
    comparison.  Weights need not be normalized.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        n = len(weights)
        if n == 0:
            raise ValueError("cannot build an alias table over zero outcomes")
        total = 0.0
        for w in weights:
            if w < 0:
                raise ValueError(f"weights must be non-negative, got {w}")
            total += w
        if total <= 0:
            raise ValueError("at least one weight must be positive")

        self._n = n
        self._prob: List[float] = [0.0] * n
        self._alias: List[int] = [0] * n

        # Scaled weights sum to n; split into under- and over-full bins.
        scaled = [w * n / total for w in weights]
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]

        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in small + large:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

    def __len__(self) -> int:
        return self._n

    def sample(self, rng: random.Random) -> int:
        """Draw an outcome index proportionally to its weight."""
        u = rng.random() * self._n
        i = int(u)
        if i >= self._n:  # guard against u == n from floating point
            i = self._n - 1
        frac = u - i
        return i if frac < self._prob[i] else self._alias[i]

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent outcomes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.sample(rng) for _ in range(count)]
