"""Fenwick (binary indexed) tree supporting dynamic weighted sampling.

Frontier Sampling must repeatedly select a walker with probability
proportional to the degree of the vertex it occupies, then update that
walker's weight after it moves.  A Fenwick tree gives O(log m) updates
and O(log m) inverse-CDF sampling, which matters for the large frontier
dimensions (m = 1000) used in the paper's experiments.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence


class FenwickTree:
    """Prefix-sum tree over non-negative float weights with sampling.

    Positions are 0-based.  All operations other than construction are
    O(log n).
    """

    def __init__(
        self, weights: Optional[Sequence[float]] = None, size: int = 0
    ) -> None:
        if weights is not None:
            self._n = len(weights)
            self._tree = [0.0] * (self._n + 1)
            self._weights = [0.0] * self._n
            for i, w in enumerate(weights):
                self.update(i, w)
        else:
            if size < 0:
                raise ValueError(f"size must be >= 0, got {size}")
            self._n = size
            self._tree = [0.0] * (size + 1)
            self._weights = [0.0] * size

    def __len__(self) -> int:
        return self._n

    def weight(self, index: int) -> float:
        """Current weight at ``index``."""
        self._check_index(index)
        return self._weights[index]

    def weights(self) -> List[float]:
        """Copy of all weights, in position order."""
        return list(self._weights)

    def total(self) -> float:
        """Sum of all weights."""
        return self.prefix_sum(self._n)

    def update(self, index: int, weight: float) -> None:
        """Set the weight at ``index`` to ``weight``."""
        self._check_index(index)
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        delta = weight - self._weights[index]
        self._weights[index] = weight
        i = index + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the weight at ``index``."""
        self.update(index, self._weights[index] + delta)

    def prefix_sum(self, count: int) -> float:
        """Sum of the first ``count`` weights (``count`` in [0, n])."""
        if not 0 <= count <= self._n:
            raise IndexError(f"count must be in [0, {self._n}], got {count}")
        total = 0.0
        i = count
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def find(self, target: float) -> int:
        """Smallest index whose inclusive prefix sum exceeds ``target``.

        Equivalent to inverse-CDF lookup: for ``target`` uniform in
        ``[0, total())`` the returned index is distributed proportionally
        to the weights.
        """
        if target < 0:
            raise ValueError(f"target must be >= 0, got {target}")
        idx = 0
        remaining = target
        # Highest power of two <= n.
        bit = 1 << (self._n.bit_length() - 1) if self._n > 0 else 0
        while bit > 0:
            nxt = idx + bit
            if nxt <= self._n and self._tree[nxt] <= remaining:
                idx = nxt
                remaining -= self._tree[nxt]
            bit >>= 1
        if idx >= self._n:
            raise ValueError(
                f"target {target} is not below the total weight {self.total()}"
            )
        return idx

    def sample(self, rng: random.Random) -> int:
        """Draw an index with probability proportional to its weight."""
        total = self.total()
        if total <= 0:
            raise ValueError("cannot sample from an all-zero weight vector")
        return self.find(rng.random() * total)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._n:
            raise IndexError(f"index must be in [0, {self._n}), got {index}")


def fenwick_from_iterable(weights: Iterable[float]) -> FenwickTree:
    """Build a :class:`FenwickTree` from any iterable of weights."""
    return FenwickTree(list(weights))
