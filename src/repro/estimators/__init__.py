"""Estimators of graph characteristics from sampled data (Section 4.2).

All random-walk estimators consume a :class:`~repro.sampling.base.WalkTrace`
whose edges were sampled (approximately) uniformly; by Theorem 4.1
(SLLN) each estimator converges almost surely to the true value.

- vertex label density — eq. (7), the ``1/deg`` reweighted estimator;
- edge label density — eq. (5);
- degree distribution (PMF and CCDF) for arbitrary degree labels
  (in-, out-, or symmetric degree);
- degree assortativity — Section 4.2.2;
- global clustering coefficient — Section 4.2.4 / Corollary 4.2;
- a generic SLLN functional estimator for everything else.

Estimators for independent vertex samples (plain empirical averages)
live alongside their RW counterparts so experiment code can treat both
uniformly.

Every ``*_from_trace`` function is backend-aware: handed an
array-backed trace from the csr engine
(:class:`~repro.sampling.vectorized.ArrayWalkTrace`), it runs the
vectorized numpy implementation in
:mod:`repro.estimators._vectorized`; handed a list-backed
:class:`~repro.sampling.base.WalkTrace`, it runs the original
tuple loop.  The two paths agree to ~1e-12.

For anytime estimation over incremental sampling sessions, the
``Streaming*`` accumulators in :mod:`repro.estimators.streaming`
consume trace *increments* (``session.take_trace()``) in O(chunk) and
agree with their batch twins to ≤1e-12.
"""

from repro.estimators.assortativity import (
    assortativity_from_trace,
    directed_assortativity_from_trace,
)
from repro.estimators.clustering import global_clustering_from_trace
from repro.estimators.diagnostics import (
    gelman_rubin,
    geweke_z,
    walker_observable_sequences,
)
from repro.estimators.size import (
    estimate_num_edges,
    estimate_num_vertices,
    estimate_volume,
)
from repro.estimators.degree import (
    degree_ccdf_from_trace,
    degree_ccdf_from_vertices,
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.estimators.edge_density import (
    edge_label_densities_from_trace,
    edge_label_density_from_trace,
)
from repro.estimators.functionals import (
    edge_functional_from_trace,
    vertex_functional_from_trace,
    weighted_vertex_sums,
)
from repro.estimators.streaming import (
    StreamingAverageDegree,
    StreamingDegreePMF,
    StreamingEdgeDensity,
    StreamingEdgeFunctional,
    StreamingEstimator,
    StreamingGraphSize,
    StreamingVertexDensity,
    StreamingVertexFunctional,
)
from repro.estimators.vertex_density import (
    vertex_label_densities_from_trace,
    vertex_label_density_from_trace,
    vertex_label_density_from_vertices,
)

__all__ = [
    "StreamingAverageDegree",
    "StreamingDegreePMF",
    "StreamingEdgeDensity",
    "StreamingEdgeFunctional",
    "StreamingEstimator",
    "StreamingGraphSize",
    "StreamingVertexDensity",
    "StreamingVertexFunctional",
    "assortativity_from_trace",
    "degree_ccdf_from_trace",
    "degree_ccdf_from_vertices",
    "degree_pmf_from_trace",
    "degree_pmf_from_vertices",
    "directed_assortativity_from_trace",
    "edge_functional_from_trace",
    "edge_label_densities_from_trace",
    "edge_label_density_from_trace",
    "estimate_num_edges",
    "estimate_num_vertices",
    "estimate_volume",
    "gelman_rubin",
    "geweke_z",
    "global_clustering_from_trace",
    "walker_observable_sequences",
    "vertex_functional_from_trace",
    "vertex_label_densities_from_trace",
    "vertex_label_density_from_trace",
    "vertex_label_density_from_vertices",
    "weighted_vertex_sums",
]
