"""Edge label density estimator (Section 4.2.1, eq. 5).

``p_l`` is the fraction of *labeled* edges carrying label ``l``.
Because a stationary RW samples edges uniformly, the estimator is the
plain average of the label indicator over sampled edges restricted to
the labeled subset ``E*``.

Array-backed traces dispatch to :mod:`repro.estimators._vectorized`,
which performs the labeling lookups once per distinct sampled edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

from repro.estimators import _vectorized
from repro.graph.labels import EdgeLabeling
from repro.sampling.base import WalkTrace

Label = Hashable


def edge_label_density_from_trace(
    trace: WalkTrace,
    labeling: EdgeLabeling,
    label: Label,
) -> float:
    """Estimate ``p_l`` (eq. 5) from the labeled edges of the trace.

    Edges outside ``E*`` (unlabeled in either orientation) are skipped,
    exactly as ``B*(B)`` counts only relevant samples.  An orientation
    ``(u, v)`` is looked up as sampled; labelings that label only the
    original directed edges implement the paper's ``E* = E_d``.
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.edge_label_density(trace, labeling, label)
    hits = 0
    relevant = 0
    for u, v in trace.edges:
        if not labeling.is_labeled((u, v)):
            continue
        relevant += 1
        if labeling.has_label((u, v), label):
            hits += 1
    if relevant == 0:
        raise ValueError(
            "no sampled edge carries any label; cannot form the estimate"
        )
    return hits / relevant


def edge_label_densities_from_trace(
    trace: WalkTrace,
    labeling: EdgeLabeling,
    labels: Iterable[Label],
) -> Dict[Label, float]:
    """Estimate many edge label densities in one pass."""
    label_list = list(labels)
    if _vectorized.is_array_trace(trace):
        return _vectorized.edge_label_densities(trace, labeling, label_list)
    wanted = set(label_list)
    hits: Dict[Label, int] = {label: 0 for label in label_list}
    relevant = 0
    for u, v in trace.edges:
        edge_labels = labeling.labels_of((u, v))
        if not edge_labels:
            continue
        relevant += 1
        for label in edge_labels:
            if label in wanted:
                hits[label] += 1
    if relevant == 0:
        raise ValueError(
            "no sampled edge carries any label; cannot form the estimate"
        )
    return {label: hits[label] / relevant for label in label_list}
