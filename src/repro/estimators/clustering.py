"""Global clustering coefficient estimator (Section 4.2.4).

``C`` is the average over vertices with degree >= 2 of
``Delta(v) / C(deg(v), 2)``.  Computing ``Delta(v)`` needs the full
two-hop neighborhood; the paper's estimator avoids that by rewriting
the triangle count as a sum over incident edges of the *shared
neighbor* count ``f(v, u) = |N(v) ∩ N(u)|``, which a crawler learns
from the two adjacency lists it already holds.

Derivation (and a correction to the paper's printed formula).  A
stationary RW samples directed edges uniformly with probability
``1/vol(V)`` each.  Summing over the ``deg(v)`` directed edges out of
``v``: ``sum_{u in N(v)} f(v, u) = 2 Delta(v)`` (each triangle at ``v``
is seen through two incident edges).  Therefore the per-sample weight

    g(v, u) = f(v, u) / (2 * C(deg(v), 2))

has stationary mean ``(1/vol) * sum_v c(v)``, while the normalizer
``S = (1/B) sum_i 1(deg(v_i) >= 2) / deg(v_i)`` converges to
``|V*| / vol``; their ratio is exactly ``C``.  The paper's displayed
estimator carries an extra ``1/deg(v_i)`` inside the numerator, which
would converge to the average of ``2 Delta(v) / (C(deg v, 2) deg(v))``
instead of ``C`` (e.g. 0.4 instead of 1.0 on K6); we implement the
corrected weight, which is what Corollary 4.2's statement requires.
"""

from __future__ import annotations

from repro.estimators import _vectorized
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace


def shared_neighbors(graph: Graph, u: int, v: int) -> int:
    """``|N(u) ∩ N(v)|`` — iterate the smaller adjacency set."""
    set_u = graph.neighbor_set(u)
    set_v = graph.neighbor_set(v)
    if len(set_u) > len(set_v):
        set_u, set_v = set_v, set_u
    return sum(1 for w in set_u if w in set_v)


def global_clustering_from_trace(graph: Graph, trace: WalkTrace) -> float:
    """Estimate the global clustering coefficient from a walk trace.

    The i-th sampled edge is read as ``(v_i, u_i)`` with ``v_i`` its
    first endpoint (in steady state the orientation is uniform).
    Samples whose first endpoint has degree < 2 contribute to neither
    sum: such a vertex is outside ``V*`` and cannot close a triangle.

    Array-backed traces run the shared-neighbor lookup once per
    distinct sampled edge (:mod:`repro.estimators._vectorized`).
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.global_clustering(graph, trace)
    if not trace.edges:
        raise ValueError("empty trace; cannot form the estimate")
    weighted = 0.0
    normalizer = 0.0
    for v, u in trace.edges:
        deg_v = graph.degree(v)
        if deg_v < 2:
            continue
        pairs = deg_v * (deg_v - 1) / 2.0
        weighted += shared_neighbors(graph, v, u) / (2.0 * pairs)
        normalizer += 1.0 / deg_v
    if normalizer == 0.0:
        raise ValueError(
            "no sampled edge touches a vertex of degree >= 2;"
            " clustering is undefined on this trace"
        )
    return weighted / normalizer
