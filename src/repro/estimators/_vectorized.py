"""Array-native estimation core — the vectorized eq. (7)/(9) path.

The public estimator functions dispatch here whenever the trace is an
:class:`~repro.sampling.vectorized.ArrayWalkTrace`: instead of iterating
Python ``(u, v)`` tuples and calling ``graph.degree(v)`` per step, the
implementations below consume ``step_sources`` / ``step_targets``
directly and reweight with numpy:

- the ``1/deg`` importance weights of eq. (7) come from one fancy-index
  into the graph's degree array;
- histograms (degree PMFs, label densities) are ``np.bincount`` with
  those weights;
- edge functionals (eq. (9) instances) deduplicate the sampled edge
  multiset first, so a Python-level function ``f(u, v)`` is evaluated
  once per *distinct* edge and scaled by its multiplicity.

Python callables that estimators accept (``degree_of``, ``g``,
``membership``, labeling lookups) cannot be vectorized away, but they
are only ever applied to the *unique* vertices/edges of the trace — on
a mixing walk that is far smaller than the step count.

Numerical contract: these paths compute the same sums as the tuple
loops, only in a different association order, so results agree with the
interpreted estimators to ~1e-12 relative (the parity goldens in
``tests/test_estimators_vectorized.py`` pin this down).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.labels import EdgeLabeling, VertexLabeling
from repro.sampling.vectorized import ArrayWalkTrace

GraphLike = Union[Graph, CSRGraph]
Label = Hashable


def is_array_trace(trace) -> bool:
    """True when ``trace`` carries int64 step arrays (dispatch guard)."""
    return isinstance(trace, ArrayWalkTrace)


#: Versions retained in each adjacency-list graph's degree-array LRU.
#: Estimators that interleave a couple of graph snapshots (e.g. an
#: evolving-graph sweep alternating between two versions) stay cached;
#: a long mutate-estimate loop holds at most this many O(n) arrays
#: instead of growing without bound.
_DEGREE_CACHE_VERSIONS = 4


def degrees_of(graph: GraphLike) -> np.ndarray:
    """The degree sequence as an int64 array, cached per graph version.

    :class:`CSRGraph` computes it as one ``diff``; for an
    adjacency-list :class:`Graph` the converted array is cached on the
    instance in a small per-version LRU (keyed by its mutation
    counter, like the CSR cache) so repeated estimator calls don't
    re-pay the list-to-array copy.  The LRU keeps the
    :data:`_DEGREE_CACHE_VERSIONS` most recently used versions, so the
    cache stays O(1) arrays even when the graph mutates between calls.
    """
    if isinstance(graph, CSRGraph):
        return graph.degrees()
    cache = getattr(graph, "_degree_array_cache", None)
    if not isinstance(cache, OrderedDict):
        cache = OrderedDict()
        graph._degree_array_cache = cache
    version = graph.version
    array = cache.get(version)
    if array is None:
        array = np.asarray(graph.degrees(), dtype=np.int64)
        cache[version] = array
        while len(cache) > _DEGREE_CACHE_VERSIONS:
            cache.popitem(last=False)
    else:
        cache.move_to_end(version)
    return array


def _map_unique(
    vertices: np.ndarray,
    fn: Callable[[int], float],
    dtype=np.float64,
) -> np.ndarray:
    """Apply a Python callable elementwise, evaluating unique ids once."""
    unique, inverse = np.unique(vertices, return_inverse=True)
    mapped = np.fromiter(
        (fn(int(v)) for v in unique), dtype=dtype, count=unique.size
    )
    return mapped[inverse]


def _unique_edges(
    sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct directed edges of the trace with their multiplicities.

    Returns ``(unique_sources, unique_targets, counts)``.  Edges are
    keyed as ``u * base + v`` in int64, which cannot overflow for any
    graph whose CSR arrays fit in memory.
    """
    base = int(targets.max()) + 1
    keys = sources * np.int64(base) + targets
    unique, counts = np.unique(keys, return_counts=True)
    return unique // base, unique % base, counts


def _require_steps(trace: ArrayWalkTrace) -> None:
    if trace.step_targets.size == 0:
        raise ValueError("empty trace; cannot form the estimate")


# ----------------------------------------------------------------------
# eq. (7): 1/deg-reweighted vertex estimators
# ----------------------------------------------------------------------
def degree_pmf(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    degree_of: Optional[Callable[[int], int]] = None,
) -> Dict[int, float]:
    """Vectorized eq. (7): weighted-histogram degree PMF.

    The *walking* degree (the visit bias) always reweights; the
    optional ``degree_of`` only relabels what gets histogrammed —
    see :func:`repro.estimators.degree.degree_pmf_from_trace`.
    """
    _require_steps(trace)
    targets = trace.step_targets
    walking = degrees_of(graph)[targets]
    inv_deg = 1.0 / walking
    if degree_of is None:
        labels = walking
    else:
        labels = _map_unique(targets, degree_of, dtype=np.int64)
    weighted = np.bincount(labels, weights=inv_deg)
    pmf = weighted / inv_deg.sum()
    return {k: float(pmf[k]) for k in range(pmf.size)}


def weighted_vertex_sums(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    g: Callable[[int], float],
) -> Tuple[float, float]:
    """Raw ``(sum g(v)/deg(v), sum 1/deg(v))`` over the step targets."""
    targets = trace.step_targets
    inv_deg = 1.0 / degrees_of(graph)[targets]
    values = _map_unique(targets, g)
    return float((values * inv_deg).sum()), float(inv_deg.sum())


def vertex_functional(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    g: Callable[[int], float],
) -> float:
    """Self-normalized importance-sampling estimate of ``mean_v g(v)``."""
    _require_steps(trace)
    weighted, normalizer = weighted_vertex_sums(graph, trace, g)
    return weighted / normalizer


def vertex_label_density(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    labeling: VertexLabeling,
    label: Label,
) -> float:
    """Vectorized eq. (7) for one label indicator."""
    _require_steps(trace)
    return vertex_functional(
        graph, trace, lambda v: 1.0 if labeling.has_label(v, label) else 0.0
    )


def weighted_label_sums(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    labeling: VertexLabeling,
    labels: Sequence[Label],
) -> Tuple[Dict[Label, float], float]:
    """Raw eq. (7) label sums: ``({label: sum 1/deg}, sum 1/deg)``.

    The shared kernel behind both the batch label densities and the
    streaming accumulator: per-step weights collapse to per-vertex
    totals once, so each label costs an O(|unique|) dot, not an
    O(num_steps) pass.
    """
    targets = trace.step_targets
    inv_deg = 1.0 / degrees_of(graph)[targets]
    normalizer = inv_deg.sum()
    unique, inverse = np.unique(targets, return_inverse=True)
    per_vertex = np.bincount(inverse, weights=inv_deg)
    label_sets = [labeling.labels_of(int(v)) for v in unique]
    sums: Dict[Label, float] = {}
    for label in labels:
        indicator = np.fromiter(
            (label in labels_of_v for labels_of_v in label_sets),
            dtype=np.float64,
            count=unique.size,
        )
        sums[label] = float((indicator * per_vertex).sum())
    return sums, float(normalizer)


def vertex_label_densities(
    graph: GraphLike,
    trace: ArrayWalkTrace,
    labeling: VertexLabeling,
    labels: Sequence[Label],
) -> Dict[Label, float]:
    """Many label densities sharing one normalizer ``S``."""
    _require_steps(trace)
    sums, normalizer = weighted_label_sums(graph, trace, labeling, labels)
    return {label: sums[label] / normalizer for label in labels}


# ----------------------------------------------------------------------
# eq. (9)-style edge estimators (per-unique-edge evaluation)
# ----------------------------------------------------------------------
def edge_functional(
    trace: ArrayWalkTrace,
    f: Callable[[int, int], float],
    membership: Optional[Callable[[int, int], bool]] = None,
) -> float:
    """``(1/B*) sum f(u_i, v_i)`` over sampled edges in ``E*``."""
    if trace.step_targets.size == 0:
        raise ValueError(
            "no sampled edges fall in E*; cannot form the estimate"
        )
    us, vs, counts = _unique_edges(trace.step_sources, trace.step_targets)
    pairs = list(zip(us.tolist(), vs.tolist()))
    if membership is None:
        mask = np.ones(us.size, dtype=bool)
    else:
        mask = np.fromiter(
            (membership(u, v) for u, v in pairs),
            dtype=bool,
            count=us.size,
        )
    relevant = int(counts[mask].sum())
    if relevant == 0:
        raise ValueError(
            "no sampled edges fall in E*; cannot form the estimate"
        )
    values = np.fromiter(
        (f(u, v) if keep else 0.0 for (u, v), keep in zip(pairs, mask)),
        dtype=np.float64,
        count=us.size,
    )
    return float((values * counts).sum()) / relevant


def edge_label_density(
    trace: ArrayWalkTrace,
    labeling: EdgeLabeling,
    label: Label,
) -> float:
    """Vectorized eq. (5): label fraction over the labeled edges."""
    hits = 0
    relevant = 0
    if trace.step_targets.size:
        us, vs, counts = _unique_edges(
            trace.step_sources, trace.step_targets
        )
        for u, v, count in zip(us.tolist(), vs.tolist(), counts.tolist()):
            if not labeling.is_labeled((u, v)):
                continue
            relevant += count
            if labeling.has_label((u, v), label):
                hits += count
    if relevant == 0:
        raise ValueError(
            "no sampled edge carries any label; cannot form the estimate"
        )
    return hits / relevant


def edge_label_densities(
    trace: ArrayWalkTrace,
    labeling: EdgeLabeling,
    labels: Sequence[Label],
) -> Dict[Label, float]:
    """Many edge label densities in one pass over the distinct edges."""
    wanted = set(labels)
    hits: Dict[Label, int] = {label: 0 for label in labels}
    relevant = 0
    if trace.step_targets.size:
        us, vs, counts = _unique_edges(
            trace.step_sources, trace.step_targets
        )
        for u, v, count in zip(us.tolist(), vs.tolist(), counts.tolist()):
            edge_labels = labeling.labels_of((u, v))
            if not edge_labels:
                continue
            relevant += count
            for label in edge_labels:
                if label in wanted:
                    hits[label] += count
    if relevant == 0:
        raise ValueError(
            "no sampled edge carries any label; cannot form the estimate"
        )
    return {label: hits[label] / relevant for label in labels}


# ----------------------------------------------------------------------
# clustering, assortativity, size
# ----------------------------------------------------------------------
def _shared_neighbors(graph: GraphLike, u: int, v: int) -> int:
    """``|N(u) ∩ N(v)|`` on either representation."""
    if isinstance(graph, CSRGraph):
        return int(np.intersect1d(graph.neighbors(u), graph.neighbors(v)).size)
    # Function-local import: clustering.py imports this module at the
    # top level, so the reverse edge must be lazy.
    from repro.estimators.clustering import shared_neighbors

    return shared_neighbors(graph, u, v)


def global_clustering(graph: GraphLike, trace: ArrayWalkTrace) -> float:
    """Vectorized clustering estimator (Section 4.2.4, corrected form).

    The expensive ``|N(v) ∩ N(u)|`` lookup runs once per *distinct*
    sampled edge; the ``1/deg`` normalizer and the pair-count weights
    are pure array arithmetic.
    """
    _require_steps(trace)
    # The i-th sample is read as (v_i, u_i) with v_i the source.
    vs, us, counts = _unique_edges(trace.step_sources, trace.step_targets)
    deg_v = degrees_of(graph)[vs]
    mask = deg_v >= 2
    if not mask.any():
        raise ValueError(
            "no sampled edge touches a vertex of degree >= 2;"
            " clustering is undefined on this trace"
        )
    deg_v = deg_v[mask].astype(np.float64)
    weights = counts[mask].astype(np.float64)
    shared = np.fromiter(
        (
            _shared_neighbors(graph, int(v), int(u))
            for v, u in zip(vs[mask], us[mask])
        ),
        dtype=np.float64,
        count=int(mask.sum()),
    )
    pairs = deg_v * (deg_v - 1) / 2.0
    weighted = float((shared / (2.0 * pairs) * weights).sum())
    normalizer = float((weights / deg_v).sum())
    return weighted / normalizer


def _pearson(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> float:
    """Pearson correlation of weighted (x, y) observations."""
    n = float(weights.sum())
    if n == 0:
        raise ValueError("no edge samples in E*; cannot estimate r")
    mean_x = float((x * weights).sum()) / n
    mean_y = float((y * weights).sum()) / n
    var_x = float((x * x * weights).sum()) / n - mean_x * mean_x
    var_y = float((y * y * weights).sum()) / n - mean_y * mean_y
    if var_x <= 0 or var_y <= 0:
        # Degenerate degree spread: same graceful 0.0 as the tuple loop.
        return 0.0
    covariance = float((x * y * weights).sum()) / n - mean_x * mean_y
    return covariance / math.sqrt(var_x * var_y)


def assortativity(graph: GraphLike, trace: ArrayWalkTrace) -> float:
    """Undirected degree-degree correlation over the sampled edges."""
    degrees = degrees_of(graph)
    x = degrees[trace.step_sources].astype(np.float64)
    y = degrees[trace.step_targets].astype(np.float64)
    return _pearson(x, y, np.ones(x.size, dtype=np.float64))


def directed_assortativity(
    digraph: DiGraph, trace: ArrayWalkTrace
) -> float:
    """Directed assortativity with ``E* = E_d`` (arc-existence filter)."""
    if trace.step_targets.size == 0:
        raise ValueError("no edge samples in E*; cannot estimate r")
    us, vs, counts = _unique_edges(trace.step_sources, trace.step_targets)
    mask = np.fromiter(
        (digraph.has_edge(int(u), int(v)) for u, v in zip(us, vs)),
        dtype=bool,
        count=us.size,
    )
    if not mask.any():
        raise ValueError("no edge samples in E*; cannot estimate r")
    out_degrees = np.asarray(digraph.out_degrees(), dtype=np.float64)
    in_degrees = np.asarray(digraph.in_degrees(), dtype=np.float64)
    return _pearson(
        out_degrees[us[mask]],
        in_degrees[vs[mask]],
        counts[mask].astype(np.float64),
    )


def collision_statistics(
    graph: GraphLike, trace: ArrayWalkTrace
) -> Tuple[float, float, int, int]:
    """(Psi_1, Psi_2, collisions, B) over the visited-vertex arrays."""
    visited = trace.step_targets
    b = int(visited.size)
    if b < 2:
        raise ValueError("need at least two samples to estimate size")
    degrees = degrees_of(graph)[visited].astype(np.float64)
    psi_1 = float((1.0 / degrees).sum()) / b
    psi_2 = float(degrees.sum()) / b
    _, counts = np.unique(visited, return_counts=True)
    collisions = int((counts * (counts - 1) // 2).sum())
    return psi_1, psi_2, collisions, b
