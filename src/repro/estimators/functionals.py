"""Generic SLLN estimators (Theorem 4.1).

Everything in Section 4.2 is an instance of two templates:

- *edge functional*: the average of ``f(u, v)`` over the sampled edges
  restricted to a subset ``E*`` converges to the average of ``f`` over
  ``E*``;
- *vertex functional*: the ``1/deg``-reweighted, self-normalized
  average of ``g(v)`` over visited vertices converges to the uniform
  vertex average of ``g`` (importance sampling against the
  degree-biased stationary law).

Array-backed traces dispatch to :mod:`repro.estimators._vectorized`,
which evaluates ``f``/``g`` once per distinct edge/vertex and does the
reweighting in numpy.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.estimators import _vectorized
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace

EdgeFunction = Callable[[int, int], float]
EdgePredicate = Callable[[int, int], bool]
VertexFunction = Callable[[int], float]


def edge_functional_from_trace(
    trace: WalkTrace,
    f: EdgeFunction,
    membership: Optional[EdgePredicate] = None,
) -> float:
    """``(1/B*) sum f(u_i, v_i)`` over sampled edges in ``E*``.

    ``membership(u, v)`` selects ``E*`` (all edges when omitted).
    Raises if no sampled edge lands in ``E*`` — the estimator is
    undefined with zero relevant samples (``B* = 0``), and silently
    returning 0 would bias downstream error statistics.
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.edge_functional(trace, f, membership)
    total = 0.0
    count = 0
    for u, v in trace.edges:
        if membership is not None and not membership(u, v):
            continue
        total += f(u, v)
        count += 1
    if count == 0:
        raise ValueError(
            "no sampled edges fall in E*; cannot form the estimate"
        )
    return total / count


def vertex_functional_from_trace(
    graph: Graph, trace: WalkTrace, g: VertexFunction
) -> float:
    """Self-normalized importance-sampling estimate of ``mean_v g(v)``.

    Implements eq. (7)'s pattern: visited vertices arrive with
    probability proportional to degree, so each observation is weighted
    ``1/deg(v_i)`` and the weights are renormalized by
    ``S = (1/B) sum 1/deg(v_i)`` (which itself converges to
    ``|V| / |E|`` — the paper reports ``|E|`` but on the symmetric graph
    the denominator is ``vol(V) = 2|E|``; the ratio cancels either way).
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.vertex_functional(graph, trace, g)
    if not trace.edges:
        raise ValueError("empty trace; cannot form the estimate")
    weighted = 0.0
    normalizer = 0.0
    for _, v in trace.edges:
        inv_deg = 1.0 / graph.degree(v)
        weighted += g(v) * inv_deg
        normalizer += inv_deg
    return weighted / normalizer


def weighted_vertex_sums(
    graph: Graph, trace: WalkTrace, g: VertexFunction
) -> Tuple[float, float]:
    """Return the raw ``(sum g(v)/deg(v), sum 1/deg(v))`` pair.

    Exposed for estimators (degree distributions) that share one
    normalizer across many labels and for incremental sample-path
    plots (Figures 6 and 9).
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.weighted_vertex_sums(graph, trace, g)
    weighted = 0.0
    normalizer = 0.0
    for _, v in trace.edges:
        inv_deg = 1.0 / graph.degree(v)
        weighted += g(v) * inv_deg
        normalizer += inv_deg
    return weighted, normalizer
