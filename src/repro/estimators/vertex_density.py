"""Vertex label density estimators (Section 4.2.3, eq. 7).

``theta_l`` is the fraction of vertices of ``G`` carrying label ``l``.
A stationary RW visits vertices proportionally to degree, so the
estimator divides each observation by ``deg(v_i)`` and self-normalizes:

    theta_hat_l = (1 / (S B)) * sum_i 1(l in L_v(v_i)) / deg(v_i),
    S           = (1/B) * sum_i 1 / deg(v_i).

Array-backed traces dispatch to the numpy implementation in
:mod:`repro.estimators._vectorized` (label lookups run once per
distinct visited vertex; the reweighting is pure array arithmetic).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence

from repro.estimators import _vectorized
from repro.graph.graph import Graph
from repro.graph.labels import VertexLabeling
from repro.sampling.base import WalkTrace

Label = Hashable


def vertex_label_density_from_trace(
    graph: Graph,
    trace: WalkTrace,
    labeling: VertexLabeling,
    label: Label,
) -> float:
    """Estimate the fraction of vertices carrying ``label`` (eq. 7)."""
    if _vectorized.is_array_trace(trace):
        return _vectorized.vertex_label_density(graph, trace, labeling, label)
    if not trace.edges:
        raise ValueError("empty trace; cannot form the estimate")
    weighted = 0.0
    normalizer = 0.0
    for _, v in trace.edges:
        inv_deg = 1.0 / graph.degree(v)
        if labeling.has_label(v, label):
            weighted += inv_deg
        normalizer += inv_deg
    return weighted / normalizer


def vertex_label_densities_from_trace(
    graph: Graph,
    trace: WalkTrace,
    labeling: VertexLabeling,
    labels: Iterable[Label],
) -> Dict[Label, float]:
    """Estimate many label densities in one pass over the trace.

    Sharing the normalizer ``S`` across labels is both faster and
    exactly what eq. (7) prescribes (``S`` does not depend on ``l``).
    """
    label_list = list(labels)
    if _vectorized.is_array_trace(trace):
        return _vectorized.vertex_label_densities(
            graph, trace, labeling, label_list
        )
    if not trace.edges:
        raise ValueError("empty trace; cannot form the estimate")
    weighted: Dict[Label, float] = {label: 0.0 for label in label_list}
    wanted = set(label_list)
    normalizer = 0.0
    for _, v in trace.edges:
        inv_deg = 1.0 / graph.degree(v)
        normalizer += inv_deg
        for label in labeling.labels_of(v):
            if label in wanted:
                weighted[label] += inv_deg
    return {label: weighted[label] / normalizer for label in label_list}


def vertex_label_density_from_vertices(
    vertices: Sequence[int],
    labeling: VertexLabeling,
    label: Label,
) -> float:
    """Plain empirical fraction, for *uniform* vertex samples.

    Correct for :class:`~repro.sampling.independent.RandomVertexSampler`
    output and for Metropolis–Hastings visited sequences (both sample
    vertices uniformly), and wrong for RW traces — use the reweighted
    estimator for those.
    """
    if not vertices:
        raise ValueError("no vertex samples; cannot form the estimate")
    hits = sum(1 for v in vertices if labeling.has_label(v, label))
    return hits / len(vertices)
