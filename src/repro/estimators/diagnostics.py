"""Convergence diagnostics for random-walk estimates.

Section 7 notes that multiple independent walkers "have been used as a
convergence test in the literature".  This module implements the two
standard MCMC diagnostics in walker form so a practitioner can ask
"have my walkers mixed?" before trusting an estimate:

- **Gelman–Rubin** potential scale reduction factor ``R_hat`` across
  per-walker estimate sequences — near 1 when the walkers agree, large
  when they are stuck in different regions (exactly the GAB failure
  mode of Section 6.2);
- **Geweke** z-score comparing the early and late segments of a single
  walker's estimate sequence — large |z| flags an unfinished transient.

Both operate on per-walker scalar *observable* sequences extracted
from a trace (e.g. the running ``1/deg``-weighted indicator used by the
eq. (7) estimator).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace


def walker_observable_sequences(
    graph: Graph,
    trace: WalkTrace,
    observable: Callable[[int], float],
) -> List[List[float]]:
    """Per-walker sequences of ``observable(v)`` at visited vertices.

    Requires a trace with ``per_walker`` structure (MultipleRW, FS,
    DFS).  Walkers with empty sub-traces are dropped.
    """
    if trace.per_walker is None:
        raise ValueError(
            "trace has no per-walker structure; use a multi-walker sampler"
        )
    sequences = [
        [observable(v) for _, v in edges]
        for edges in trace.per_walker
        if edges
    ]
    if not sequences:
        raise ValueError("no walker produced any samples")
    return sequences


def gelman_rubin(sequences: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor ``R_hat`` over walker chains.

    Chains are truncated to the shortest length so variances compare
    like with like.  Requires at least two chains of length >= 2.
    ``R_hat`` near 1 indicates the chains sample the same distribution;
    values well above 1 indicate unmixed walkers.  If every chain is
    internally constant but the chains disagree, returns ``inf``.
    """
    chains = [list(c) for c in sequences if len(c) >= 2]
    if len(chains) < 2:
        raise ValueError("need at least two chains of length >= 2")
    length = min(len(c) for c in chains)
    chains = [c[:length] for c in chains]
    m = len(chains)
    n = length

    means = [sum(c) / n for c in chains]
    grand_mean = sum(means) / m
    # Between-chain variance (B/n in Gelman-Rubin notation).
    between = (
        n * sum((mu - grand_mean) ** 2 for mu in means) / (m - 1)
    )
    # Within-chain variance.
    within = (
        sum(
            sum((x - mu) ** 2 for x in chain) / (n - 1)
            for chain, mu in zip(chains, means)
        )
        / m
    )
    if within == 0:
        return 1.0 if between == 0 else float("inf")
    pooled = (n - 1) / n * within + between / n
    return math.sqrt(pooled / within)


def geweke_z(
    sequence: Sequence[float],
    head_fraction: float = 0.1,
    tail_fraction: float = 0.5,
) -> float:
    """Geweke diagnostic: z-score between the head and tail means.

    Uses plain (uncorrected) segment variances — adequate for the
    comparative use here; |z| >> 2 flags a transient.
    """
    n = len(sequence)
    if n < 10:
        raise ValueError(f"sequence too short for Geweke ({n} < 10)")
    if not 0 < head_fraction < 1 or not 0 < tail_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if head_fraction + tail_fraction > 1:
        raise ValueError("head and tail segments must not overlap")
    head = list(sequence[: max(2, int(n * head_fraction))])
    tail = list(sequence[n - max(2, int(n * tail_fraction)) :])

    def mean_var(xs):
        mu = sum(xs) / len(xs)
        var = sum((x - mu) ** 2 for x in xs) / (len(xs) - 1)
        return mu, var

    head_mean, head_var = mean_var(head)
    tail_mean, tail_var = mean_var(tail)
    denominator = math.sqrt(head_var / len(head) + tail_var / len(tail))
    if denominator == 0:
        return 0.0 if head_mean == tail_mean else float("inf")
    return (head_mean - tail_mean) / denominator


def degree_observable(graph: Graph) -> Callable[[int], float]:
    """The workhorse observable: ``1/deg(v)`` (eq. (7)'s weight).

    Its per-walker running means converge to ``|V|/vol(V)`` on a mixed
    walk, so disagreement across walkers directly predicts estimator
    error.
    """
    return lambda v: 1.0 / graph.degree(v)
