"""Graph size estimation from random-walk samples.

A natural companion to the paper's estimators: the number of vertices
``|V|`` and edges ``|E|`` of a crawled graph are themselves unknown
characteristics.  The classic approach (Katzir, Liberty & Somekh,
WWW'11 — contemporaneous with the paper and built on the same
stationary-RW machinery) combines

- the average inverse degree ``Psi_1 = (1/B) sum 1/deg(v_i)``, which
  converges to ``|V| / vol(V)`` (the paper's own ``S``),
- the average degree ``Psi_2 = (1/B) sum deg(v_i)``, and
- the number of *collisions* (sample index pairs that hit the same
  vertex), which calibrates the absolute scale.

Estimators::

    |V|_hat  =  Psi_1 * Psi_2 * C(B, 2) / collisions
    vol_hat  =  Psi_2 * C(B, 2) / collisions        (volume = 2|E|)

Both are asymptotically unbiased for a stationary walk; accuracy needs
``B = Omega(sqrt(|V|))`` so that collisions occur at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

from repro.estimators import _vectorized
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace


def _collision_statistics(
    graph: Graph, trace: WalkTrace
) -> Tuple[float, float, int, int]:
    """(Psi_1, Psi_2, collisions, B) over the visited-vertex sequence."""
    if _vectorized.is_array_trace(trace):
        return _vectorized.collision_statistics(graph, trace)
    visited = trace.visited_vertices
    b = len(visited)
    if b < 2:
        raise ValueError("need at least two samples to estimate size")
    inv_sum = 0.0
    deg_sum = 0.0
    counts = Counter()
    for v in visited:
        degree = graph.degree(v)
        inv_sum += 1.0 / degree
        deg_sum += degree
        counts[v] += 1
    collisions = sum(c * (c - 1) // 2 for c in counts.values())
    return inv_sum / b, deg_sum / b, collisions, b


def estimate_num_vertices(graph: Graph, trace: WalkTrace) -> float:
    """Katzir-style ``|V|`` estimate from a stationary RW/FS trace.

    Raises if the trace produced no vertex collisions — the walk was
    too short relative to the graph and no finite estimate exists.
    """
    psi_1, psi_2, collisions, b = _collision_statistics(graph, trace)
    if collisions == 0:
        raise ValueError(
            "no vertex collisions in the trace; increase the budget"
            " (need B on the order of sqrt(|V|))"
        )
    pairs = b * (b - 1) / 2.0
    return psi_1 * psi_2 * pairs / collisions


def estimate_volume(graph: Graph, trace: WalkTrace) -> float:
    """Estimate ``vol(V) = 2|E|`` from the same collision statistics."""
    _, psi_2, collisions, b = _collision_statistics(graph, trace)
    if collisions == 0:
        raise ValueError(
            "no vertex collisions in the trace; increase the budget"
        )
    pairs = b * (b - 1) / 2.0
    return psi_2 * pairs / collisions


def estimate_num_edges(graph: Graph, trace: WalkTrace) -> float:
    """Estimate ``|E|`` (undirected edge count)."""
    return estimate_volume(graph, trace) / 2.0
