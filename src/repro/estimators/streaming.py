"""Streaming estimators — accumulators over session trace increments.

The batch ``*_from_trace`` estimators need the whole trace in memory.
These accumulators consume *increments* instead — the chunks a
:class:`~repro.sampling.session.SamplerSession` hands out via
``take_trace()`` — in O(chunk) time and O(state) memory, so estimates
can track an anytime walk over a graph (or a trace) too large to
materialize:

    session = sampler.start(graph, rng=7)
    pmf = StreamingDegreePMF(graph)
    while session.spent() < budget:
        session.advance(chunk)
        pmf.update(session.take_trace())
    estimate = pmf.estimate()

Every accumulator is the running-sums decomposition of its batch twin:
eq. (7)'s reweighted estimators keep ``(sum g(v)/deg(v), sum 1/deg(v))``,
eq. (9)/(5)'s edge estimators keep ``(sum f, relevant count)``, and the
size estimator keeps the collision statistics.  Array-backed increments
(:class:`~repro.sampling.vectorized.ArrayWalkTrace`) run through the
same numpy kernels as :mod:`repro.estimators._vectorized`; list-backed
increments run the tuple loops.  Either way the final estimate matches
the batch estimator on the concatenated trace to ≤1e-12 (only float
summation association differs), which the parity tests pin down.

Fused blocks: accumulators that need only the eq. (7)/(9) sufficient
statistics also absorb a
:class:`~repro.sampling.fused.FusedBlock` — the exact-integer
(degree-count / visit-count / edge-key) record the fused C kernels
fill while advancing a session — via :meth:`absorb_block`.  Such an
accumulator advertises its block requirements through
:meth:`fused_needs`; the array-backed drain path and the block path
deliberately share one count-based float reduction per estimator
(``count / degree`` summed over distinct values), so fused and drained
runs produce **bit-identical** estimates, not merely 1e-12-close ones.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Hashable, Optional, Sequence

import numpy as np

from repro.estimators import _vectorized
from repro.estimators.degree import _dense
from repro.graph.labels import EdgeLabeling, VertexLabeling
from repro.sampling.base import VertexTrace, WalkTrace
from repro.sampling.fused import FusedBlock, FusedNeeds
from repro.util.stats import ccdf_from_pmf

Label = Hashable
DegreeOf = Callable[[int], int]
EdgeFunction = Callable[[int, int], float]
EdgePredicate = Callable[[int, int], bool]
VertexFunction = Callable[[int], float]


class StreamingEstimator(abc.ABC):
    """An accumulator fed trace increments via :meth:`update`.

    ``update`` accepts both backends' walk traces and dispatches to the
    vectorized or tuple-loop path; empty increments are no-ops.
    :meth:`estimate` may be called at any time (anytime estimation) and
    raises :class:`ValueError` while no samples have been consumed,
    matching the batch estimators' behavior on empty traces.
    """

    def update(self, trace) -> "StreamingEstimator":
        """Consume one trace increment; returns self for chaining."""
        if isinstance(trace, VertexTrace):
            self._update_vertex_trace(trace)
        elif _vectorized.is_array_trace(trace):
            if trace.step_targets.size:
                self._update_array(trace)
        elif isinstance(trace, WalkTrace):
            if trace.edges:
                self._update_list(trace)
        else:
            raise TypeError(
                f"cannot consume a {type(trace).__name__} increment"
            )
        return self

    @abc.abstractmethod
    def estimate(self):
        """The current estimate over everything consumed so far."""

    def __getstate__(self) -> dict:
        """Pickle running sums only — the graph is re-attached on load.

        Mirrors :class:`~repro.sampling.session.SamplerSession`'s
        checkpoint discipline, so a (session, accumulators) pair can be
        written to disk and resumed against the same graph.
        """
        state = self.__dict__.copy()
        if "graph" in state:
            state["graph"] = None
        return state

    def attach(self, graph) -> None:
        """Re-attach ``graph`` to an accumulator loaded from disk."""
        if "graph" in self.__dict__:
            self.graph = graph

    def fused_needs(self) -> Optional[FusedNeeds]:
        """Block statistics this accumulator can absorb, or ``None``.

        ``None`` (the default) marks the accumulator as drain-only:
        sessions and the engine must feed it ``take_trace()``
        increments.  Subclasses that consume only eq. (7)/(9)
        sufficient statistics override this to return their
        :class:`~repro.sampling.fused.FusedNeeds`.
        """
        return None

    def absorb_block(self, block: FusedBlock) -> "StreamingEstimator":
        """Consume one fused accumulator block; returns self.

        Empty blocks (no stat-bearing steps) are no-ops, mirroring
        :meth:`update` on an empty increment.
        """
        if block.steps:
            self._absorb_block(block)
        return self

    def _absorb_block(self, block: FusedBlock) -> None:
        raise TypeError(
            f"{type(self).__name__} cannot absorb fused blocks; feed it"
            " trace increments instead"
        )

    @abc.abstractmethod
    def _update_array(self, trace) -> None: ...

    @abc.abstractmethod
    def _update_list(self, trace: WalkTrace) -> None: ...

    def _update_vertex_trace(self, trace: VertexTrace) -> None:
        raise TypeError(
            f"{type(self).__name__} consumes walk traces, not independent"
            " vertex samples"
        )


# ----------------------------------------------------------------------
# eq. (7): reweighted vertex accumulators
# ----------------------------------------------------------------------
class StreamingDegreePMF(StreamingEstimator):
    """Degree-distribution accumulator (eq. (7) / plain counts).

    Fed walk-trace increments it runs the ``1/deg`` reweighted
    estimator; fed :class:`~repro.sampling.base.VertexTrace` increments
    (uniform independent samples) it runs the plain empirical PMF.  The
    two laws cannot be mixed in one accumulator.

    ``degree_of`` relabels what is histogrammed (in-/out-degree);
    the reweighting always uses the symmetric walking degree.
    """

    def __init__(self, graph, degree_of: Optional[DegreeOf] = None):
        self.graph = graph
        self.degree_of = degree_of
        self._weighted: Dict[int, float] = {}
        self._normalizer = 0.0
        self._samples = 0
        self._mode: Optional[str] = None

    def _latch(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise TypeError(
                "cannot mix walk-trace and vertex-sample increments in"
                " one degree accumulator"
            )

    def _update_array(self, trace) -> None:
        self._latch("walk")
        targets = trace.step_targets
        walking = _vectorized.degrees_of(self.graph)[targets]
        if self.degree_of is None:
            # Same count-based reduction as the fused-block path, so
            # drained and fused runs stay bit-identical.
            self._absorb_degree_counts(np.bincount(walking))
            return
        inv_deg = 1.0 / walking
        labels = _vectorized._map_unique(
            targets, self.degree_of, dtype=np.int64
        )
        histogram = np.bincount(labels, weights=inv_deg)
        for key in np.flatnonzero(histogram).tolist():
            self._weighted[key] = self._weighted.get(key, 0.0) + float(
                histogram[key]
            )
        self._normalizer += float(inv_deg.sum())
        self._samples += int(targets.size)

    def _absorb_degree_counts(self, counts: np.ndarray) -> None:
        """Fold exact per-degree visit counts into the running sums."""
        degrees = np.flatnonzero(counts)
        weighted = counts[degrees].astype(np.float64) / degrees.astype(
            np.float64
        )
        for key, value in zip(degrees.tolist(), weighted.tolist()):
            self._weighted[key] = self._weighted.get(key, 0.0) + value
        self._normalizer += float(weighted.sum())
        self._samples += int(counts.sum())

    def fused_needs(self) -> Optional[FusedNeeds]:
        """Degree counts suffice — unless ``degree_of`` relabels.

        A custom ``degree_of`` histograms a function of the *vertex*,
        which a per-degree count cannot reconstruct, so that
        configuration stays on the drain path.
        """
        if self.degree_of is not None:
            return None
        return FusedNeeds(degree_counts=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        self._latch("walk")
        assert block.deg_counts is not None
        self._absorb_degree_counts(block.deg_counts)

    def _update_list(self, trace: WalkTrace) -> None:
        self._latch("walk")
        graph = self.graph
        label = self.degree_of if self.degree_of is not None else graph.degree
        for _, v in trace.edges:
            inv_deg = 1.0 / graph.degree(v)
            self._normalizer += inv_deg
            key = label(v)
            self._weighted[key] = self._weighted.get(key, 0.0) + inv_deg
            self._samples += 1

    def _update_vertex_trace(self, trace: VertexTrace) -> None:
        if not trace.vertices:
            return
        self._latch("vertex")
        label = (
            self.degree_of if self.degree_of is not None else self.graph.degree
        )
        for v in trace.vertices:
            key = label(v)
            self._weighted[key] = self._weighted.get(key, 0.0) + 1.0
            self._samples += 1

    def estimate(self) -> Dict[int, float]:
        """Dense PMF over ``0 .. max_observed`` (the batch dict shape)."""
        if self._samples == 0:
            raise ValueError("no samples consumed; cannot form the estimate")
        if self._mode == "vertex":
            return _dense(
                {k: w / self._samples for k, w in self._weighted.items()}
            )
        return _dense(
            {k: w / self._normalizer for k, w in self._weighted.items()}
        )

    def ccdf(self) -> Dict[int, float]:
        """The estimated CCDF ``gamma_i = sum_{k > i} theta_k``."""
        return ccdf_from_pmf(self.estimate())


class StreamingVertexFunctional(StreamingEstimator):
    """Self-normalized eq. (7) accumulator for ``mean_v g(v)``."""

    def __init__(self, graph, g: VertexFunction):
        self.graph = graph
        self.g = g
        self._weighted = 0.0
        self._normalizer = 0.0

    def _update_array(self, trace) -> None:
        weighted, normalizer = _vectorized.weighted_vertex_sums(
            self.graph, trace, self.g
        )
        self._weighted += weighted
        self._normalizer += normalizer

    def _update_list(self, trace: WalkTrace) -> None:
        graph, g = self.graph, self.g
        for _, v in trace.edges:
            inv_deg = 1.0 / graph.degree(v)
            self._weighted += g(v) * inv_deg
            self._normalizer += inv_deg

    def estimate(self) -> float:
        if self._normalizer == 0.0:
            raise ValueError("no samples consumed; cannot form the estimate")
        return self._weighted / self._normalizer


class StreamingAverageDegree(StreamingEstimator):
    """Average-degree accumulator via eq. (7) with ``g = deg``.

    ``sum deg(v)/deg(v) = B`` exactly, so the estimate collapses to
    ``B / sum 1/deg(v_i)`` — the step count over the paper's ``S``
    statistic, tracked in O(1) state.
    """

    def __init__(self, graph):
        self.graph = graph
        self._steps = 0
        self._inverse_sum = 0.0

    def _update_array(self, trace) -> None:
        degrees = _vectorized.degrees_of(self.graph)[trace.step_targets]
        self._absorb_degree_counts(np.bincount(degrees))

    def _absorb_degree_counts(self, counts: np.ndarray) -> None:
        """Count-based ``S`` update shared with the fused-block path."""
        degrees = np.flatnonzero(counts)
        contributions = counts[degrees].astype(np.float64) / degrees.astype(
            np.float64
        )
        self._inverse_sum += float(contributions.sum())
        self._steps += int(counts.sum())

    def _update_list(self, trace: WalkTrace) -> None:
        graph = self.graph
        for _, v in trace.edges:
            self._inverse_sum += 1.0 / graph.degree(v)
            self._steps += 1

    def fused_needs(self) -> Optional[FusedNeeds]:
        return FusedNeeds(degree_counts=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        assert block.deg_counts is not None
        self._absorb_degree_counts(block.deg_counts)

    def estimate(self) -> float:
        if self._steps == 0:
            raise ValueError("no samples consumed; cannot form the estimate")
        return self._steps / self._inverse_sum


class StreamingVertexDensity(StreamingEstimator):
    """Eq. (7) label-density accumulator sharing one normalizer ``S``."""

    def __init__(
        self, graph, labeling: VertexLabeling, labels: Sequence[Label]
    ):
        self.graph = graph
        self.labeling = labeling
        self.labels = list(labels)
        self._weighted: Dict[Label, float] = {
            label: 0.0 for label in self.labels
        }
        self._normalizer = 0.0

    def _update_array(self, trace) -> None:
        unique, counts = np.unique(trace.step_targets, return_counts=True)
        self._absorb_visit_counts(unique, counts)

    def _absorb_visit_counts(
        self, vertices: np.ndarray, counts: np.ndarray
    ) -> None:
        """Per-vertex count-based eq. (7) update (fused/drained shared).

        Each distinct vertex contributes ``count / deg`` in one float
        operation — the association both paths use, keeping them
        bit-identical.
        """
        weights = counts.astype(np.float64) / _vectorized.degrees_of(
            self.graph
        )[vertices].astype(np.float64)
        self._normalizer += float(weights.sum())
        label_sets = [self.labeling.labels_of(int(v)) for v in vertices]
        for label in self.labels:
            indicator = np.fromiter(
                (label in labels_of_v for labels_of_v in label_sets),
                dtype=np.float64,
                count=vertices.size,
            )
            self._weighted[label] += float((indicator * weights).sum())

    def fused_needs(self) -> Optional[FusedNeeds]:
        return FusedNeeds(visit_counts=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        assert block.visit_counts is not None
        vertices = np.flatnonzero(block.visit_counts)
        self._absorb_visit_counts(vertices, block.visit_counts[vertices])

    def _update_list(self, trace: WalkTrace) -> None:
        graph, wanted = self.graph, set(self.labels)
        for _, v in trace.edges:
            inv_deg = 1.0 / graph.degree(v)
            self._normalizer += inv_deg
            for label in self.labeling.labels_of(v):
                if label in wanted:
                    self._weighted[label] += inv_deg

    def estimate(self) -> Dict[Label, float]:
        if self._normalizer == 0.0:
            raise ValueError("no samples consumed; cannot form the estimate")
        return {
            label: self._weighted[label] / self._normalizer
            for label in self.labels
        }


# ----------------------------------------------------------------------
# eq. (5)/(9): edge accumulators
# ----------------------------------------------------------------------
def _decode_edge_keys(block: FusedBlock):
    """Distinct edges of a block, in the drained path's order.

    Keys are ``u * key_base + v`` with ``key_base = num_vertices``;
    ``np.unique`` therefore yields the edges sorted by ``(u, v)`` —
    the same sequence ``_vectorized._unique_edges`` produces from the
    step arrays (its base differs, but any base above the maximum
    target sorts keys identically), so per-edge float accumulation
    happens in exactly the same order on both paths.
    """
    unique, counts = np.unique(block.edge_key_array(), return_counts=True)
    base = np.int64(block.key_base)
    return unique // base, unique % base, counts


class StreamingEdgeDensity(StreamingEstimator):
    """Eq. (5) accumulator: label fractions over the labeled edges.

    Pure integer counting, so it matches the batch estimator exactly.
    """

    def __init__(self, labeling: EdgeLabeling, labels: Sequence[Label]):
        self.labeling = labeling
        self.labels = list(labels)
        self._hits: Dict[Label, int] = {label: 0 for label in self.labels}
        self._relevant = 0

    def _consume(self, u: int, v: int, count: int) -> None:
        edge_labels = self.labeling.labels_of((u, v))
        if not edge_labels:
            return
        self._relevant += count
        for label in edge_labels:
            if label in self._hits:
                self._hits[label] += count

    def _update_array(self, trace) -> None:
        us, vs, counts = _vectorized._unique_edges(
            trace.step_sources, trace.step_targets
        )
        self._consume_edges(us, vs, counts)

    def _consume_edges(
        self, us: np.ndarray, vs: np.ndarray, counts: np.ndarray
    ) -> None:
        for u, v, count in zip(us.tolist(), vs.tolist(), counts.tolist()):
            self._consume(u, v, count)

    def fused_needs(self) -> Optional[FusedNeeds]:
        return FusedNeeds(edge_keys=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        self._consume_edges(*_decode_edge_keys(block))

    def _update_list(self, trace: WalkTrace) -> None:
        for u, v in trace.edges:
            self._consume(u, v, 1)

    def estimate(self) -> Dict[Label, float]:
        if self._relevant == 0:
            raise ValueError(
                "no sampled edge carries any label; cannot form the estimate"
            )
        return {
            label: self._hits[label] / self._relevant for label in self.labels
        }


class StreamingEdgeFunctional(StreamingEstimator):
    """Eq. (9) accumulator: ``(1/B*) sum f(u, v)`` over edges in ``E*``.

    ``f`` and ``membership`` run once per distinct edge of each
    array-backed increment (the batch estimator's trick, applied
    chunk-wise).
    """

    def __init__(
        self, f: EdgeFunction, membership: Optional[EdgePredicate] = None
    ):
        self.f = f
        self.membership = membership
        self._total = 0.0
        self._relevant = 0

    def _update_array(self, trace) -> None:
        us, vs, counts = _vectorized._unique_edges(
            trace.step_sources, trace.step_targets
        )
        self._consume_edges(us, vs, counts)

    def _consume_edges(
        self, us: np.ndarray, vs: np.ndarray, counts: np.ndarray
    ) -> None:
        for u, v, count in zip(us.tolist(), vs.tolist(), counts.tolist()):
            if self.membership is not None and not self.membership(u, v):
                continue
            self._total += self.f(u, v) * count
            self._relevant += count

    def fused_needs(self) -> Optional[FusedNeeds]:
        return FusedNeeds(edge_keys=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        self._consume_edges(*_decode_edge_keys(block))

    def _update_list(self, trace: WalkTrace) -> None:
        for u, v in trace.edges:
            if self.membership is not None and not self.membership(u, v):
                continue
            self._total += self.f(u, v)
            self._relevant += 1

    def estimate(self) -> float:
        if self._relevant == 0:
            raise ValueError(
                "no sampled edges fall in E*; cannot form the estimate"
            )
        return self._total / self._relevant


# ----------------------------------------------------------------------
# graph size (Katzir-style collision counting)
# ----------------------------------------------------------------------
class StreamingGraphSize(StreamingEstimator):
    """Size accumulator: ``Psi_1``, ``Psi_2`` and vertex collisions.

    Keeps per-vertex visit counts (O(distinct visited) state — far
    below the step count on a mixing walk), so collisions *across*
    increments are counted, exactly as the batch estimator sees them.
    """

    def __init__(self, graph):
        self.graph = graph
        self._inverse_sum = 0.0
        self._degree_sum = 0.0
        self._samples = 0
        self._visits: Dict[int, int] = {}

    def _update_array(self, trace) -> None:
        unique, counts = np.unique(trace.step_targets, return_counts=True)
        self._absorb_visit_counts(unique, counts)

    def _absorb_visit_counts(
        self, vertices: np.ndarray, counts: np.ndarray
    ) -> None:
        """Count-based Psi/collision update shared with the fused path."""
        degrees = _vectorized.degrees_of(self.graph)[vertices].astype(
            np.float64
        )
        weights = counts.astype(np.float64)
        self._inverse_sum += float((weights / degrees).sum())
        self._degree_sum += float((weights * degrees).sum())
        self._samples += int(counts.sum())
        for v, count in zip(vertices.tolist(), counts.tolist()):
            self._visits[v] = self._visits.get(v, 0) + count

    def fused_needs(self) -> Optional[FusedNeeds]:
        return FusedNeeds(visit_counts=True)

    def _absorb_block(self, block: FusedBlock) -> None:
        assert block.visit_counts is not None
        vertices = np.flatnonzero(block.visit_counts)
        self._absorb_visit_counts(vertices, block.visit_counts[vertices])

    def _update_list(self, trace: WalkTrace) -> None:
        graph = self.graph
        for v in trace.visited_vertices:
            degree = graph.degree(v)
            self._inverse_sum += 1.0 / degree
            self._degree_sum += degree
            self._samples += 1
            self._visits[v] = self._visits.get(v, 0) + 1

    def _statistics(self):
        if self._samples < 2:
            raise ValueError("need at least two samples to estimate size")
        collisions = sum(
            c * (c - 1) // 2 for c in self._visits.values()
        )
        if collisions == 0:
            raise ValueError(
                "no vertex collisions in the trace; increase the budget"
                " (need B on the order of sqrt(|V|))"
            )
        b = self._samples
        psi_1 = self._inverse_sum / b
        psi_2 = self._degree_sum / b
        pairs = b * (b - 1) / 2.0
        return psi_1, psi_2, collisions, pairs

    def num_vertices(self) -> float:
        psi_1, psi_2, collisions, pairs = self._statistics()
        return psi_1 * psi_2 * pairs / collisions

    def volume(self) -> float:
        _, psi_2, collisions, pairs = self._statistics()
        return psi_2 * pairs / collisions

    def num_edges(self) -> float:
        return self.volume() / 2.0

    def estimate(self) -> float:
        """``|V|`` — the headline size estimate."""
        return self.num_vertices()
