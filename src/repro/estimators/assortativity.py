"""Degree assortativity estimators (Section 4.2.2).

The paper's ``r_hat`` is, algebraically, the Pearson correlation of the
pair ``(outdeg(u), indeg(v))`` under the empirical law ``p_hat_ij`` of
sampled labeled edges — we compute it in that moment form rather than
materializing the full ``p_hat_ij`` matrix, which is exactly equivalent
and O(B) instead of O(W_in * W_out).

Two variants:

- :func:`assortativity_from_trace` — undirected degree-degree
  correlation on the symmetric graph ``G`` (what Section 6.1's
  experiment computes after "treating the graphs as undirected");
- :func:`directed_assortativity_from_trace` — the directed form with
  ``E* = E_d`` and labels ``(outdeg_{G_d}(u), indeg_{G_d}(v))``.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

from repro.estimators import _vectorized
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace


def _pearson_from_pairs(pairs: Iterable[Tuple[float, float]]) -> float:
    """Pearson correlation of an iterable of (x, y) observations."""
    n = 0
    sum_x = sum_y = sum_xx = sum_yy = sum_xy = 0.0
    for x, y in pairs:
        n += 1
        sum_x += x
        sum_y += y
        sum_xx += x * x
        sum_yy += y * y
        sum_xy += x * y
    if n == 0:
        raise ValueError("no edge samples in E*; cannot estimate r")
    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = sum_xx / n - mean_x * mean_x
    var_y = sum_yy / n - mean_y * mean_y
    if var_x <= 0 or var_y <= 0:
        # All sampled endpoints share one degree: correlation undefined;
        # the paper requires sigma_in, sigma_out > 0.  Report 0 so runs
        # over degree-regular subgraphs degrade gracefully.
        return 0.0
    return (sum_xy / n - mean_x * mean_y) / math.sqrt(var_x * var_y)


def assortativity_from_trace(graph: Graph, trace: WalkTrace) -> float:
    """Undirected degree assortativity from RW-sampled edges.

    Every sampled directed orientation contributes the degree pair of
    its endpoints; in steady state orientations are uniform, so this
    matches the symmetric true value computed over both orientations of
    every edge.
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.assortativity(graph, trace)
    return _pearson_from_pairs(
        (float(graph.degree(u)), float(graph.degree(v)))
        for u, v in trace.edges
    )


def directed_assortativity_from_trace(
    digraph: DiGraph, trace: WalkTrace
) -> float:
    """Directed degree assortativity with ``E* = E_d``.

    The RW walks the symmetric closure, so a sampled orientation
    ``(u, v)`` is relevant iff the arc exists in ``G_d``; its label is
    ``(outdeg(u), indeg(v))`` per Section 4.2.2.
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.directed_assortativity(digraph, trace)

    def labeled_pairs():
        for u, v in trace.edges:
            if digraph.has_edge(u, v):
                yield float(digraph.out_degree(u)), float(digraph.in_degree(v))

    return _pearson_from_pairs(labeled_pairs())
