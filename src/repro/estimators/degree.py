"""Degree distribution estimators (PMF and CCDF).

The experiments estimate in-degree, out-degree and symmetric-degree
distributions.  The *degree label* of a vertex (what we histogram) is
decoupled from the *walking degree* (what reweights observations):
a walker on the symmetric graph ``G`` visits ``v`` proportionally to
``deg_G(v)`` even when the quantity of interest is ``indeg_{G_d}(v)``.

All estimators return dense dicts over ``0 .. max_observed`` so CCDFs
and error curves line up across methods.

Array-backed traces (the csr backend's
:class:`~repro.sampling.vectorized.ArrayWalkTrace`) dispatch to the
numpy weighted-histogram implementation in
:mod:`repro.estimators._vectorized`; list-backed traces keep the
original tuple loop.  Both paths agree to ~1e-12.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.estimators import _vectorized
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace
from repro.util.stats import ccdf_from_pmf

DegreeOf = Callable[[int], int]


def _dense(pmf: Dict[int, float]) -> Dict[int, float]:
    """Zero-fill the pmf on ``0 .. max(support)``."""
    if not pmf:
        raise ValueError("empty pmf")
    top = max(pmf)
    return {k: pmf.get(k, 0.0) for k in range(top + 1)}


def degree_pmf_from_trace(
    graph: Graph,
    trace: WalkTrace,
    degree_of: Optional[DegreeOf] = None,
) -> Dict[int, float]:
    """Estimate ``theta_i`` for every degree ``i`` via eq. (7).

    ``degree_of`` maps a vertex to its degree *label* (defaults to the
    symmetric walking degree).  The reweighting always uses the
    symmetric degree — that is the visit bias, whatever the label.
    """
    if _vectorized.is_array_trace(trace):
        return _vectorized.degree_pmf(graph, trace, degree_of)
    if not trace.edges:
        raise ValueError("empty trace; cannot form the estimate")
    label = degree_of if degree_of is not None else graph.degree
    weighted: Dict[int, float] = {}
    normalizer = 0.0
    for _, v in trace.edges:
        inv_deg = 1.0 / graph.degree(v)
        normalizer += inv_deg
        key = label(v)
        weighted[key] = weighted.get(key, 0.0) + inv_deg
    return _dense({k: w / normalizer for k, w in weighted.items()})


def degree_ccdf_from_trace(
    graph: Graph,
    trace: WalkTrace,
    degree_of: Optional[DegreeOf] = None,
) -> Dict[int, float]:
    """Estimated CCDF ``gamma_i = sum_{k > i} theta_k`` (eq. 2's target)."""
    return ccdf_from_pmf(degree_pmf_from_trace(graph, trace, degree_of))


def degree_pmf_from_vertices(
    vertices: Sequence[int],
    degree_of: DegreeOf,
) -> Dict[int, float]:
    """Empirical degree pmf from *uniform* vertex samples.

    The straightforward estimator of Section 3's random vertex
    sampling: each valid sample contributes ``1/n`` to its degree bin.
    """
    if not vertices:
        raise ValueError("no vertex samples; cannot form the estimate")
    counts: Dict[int, float] = {}
    for v in vertices:
        key = degree_of(v)
        counts[key] = counts.get(key, 0.0) + 1.0
    n = len(vertices)
    return _dense({k: c / n for k, c in counts.items()})


def degree_ccdf_from_vertices(
    vertices: Sequence[int],
    degree_of: DegreeOf,
) -> Dict[int, float]:
    """Empirical CCDF from uniform vertex samples."""
    return ccdf_from_pmf(degree_pmf_from_vertices(vertices, degree_of))
