"""Named synthetic stand-ins for the paper's datasets (Table 1).

Each builder is deterministic for a given ``(scale, seed)`` and returns
a :class:`Dataset` bundling the directed graph (when the original was
directed), its symmetric walking graph, and group labels.  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.registry import (
    DATASET_BUILDERS,
    Dataset,
    flickr_like,
    gab,
    hepth_like,
    internet_rlt_like,
    livejournal_like,
    load,
    youtube_like,
)

__all__ = [
    "DATASET_BUILDERS",
    "Dataset",
    "flickr_like",
    "gab",
    "hepth_like",
    "internet_rlt_like",
    "livejournal_like",
    "load",
    "youtube_like",
]
