"""Builders for the scaled-down dataset stand-ins.

Scale 1.0 targets ~10^4-vertex graphs (minutes-per-figure on a laptop);
tests use scale ~0.1.  Structural targets, per original dataset:

- Flickr: heavy-tailed directed degrees, LCC ~ 95% of vertices, many
  small disconnected components, Zipf-popular groups (Section 6.5).
- LiveJournal: denser, LCC ~ 99.7%.
- YouTube: sparser (avg degree ~ 8.7), mildly disconnected.
- Internet RLT: traceroute-ish — preferential-attachment tree plus a
  few shortcut edges, average degree ~ 3.2.
- Hep-Th: small citation-like power-law graph (Table 4 only).
- GAB: the paper's own construction — two BA graphs with average
  degrees ~2 and ~10 joined by a single bridge edge (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.generators.ba import barabasi_albert
from repro.generators.composite import join_by_bridge
from repro.generators.configuration import (
    configuration_model,
    power_law_degree_sequence,
)
from repro.generators.social import SocialGraphSpec, social_network
from repro.graph.csr import CSRGraph, get_csr
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.util.backends import check_backend_name
from repro.graph.labels import VertexLabeling
from repro.graph.summary import GraphSummary, summarize
from repro.util.rng import ensure_rng


@dataclass
class Dataset:
    """A named graph plus the metadata experiments need."""

    name: str
    graph: Graph
    digraph: Optional[DiGraph]
    labels: VertexLabeling
    description: str
    #: CSR view of ``graph``; populated when loaded with
    #: ``backend="csr"`` (or on first ``sampling_graph("csr")`` call).
    csr: Optional[CSRGraph] = field(default=None, repr=False)

    def summary(self) -> GraphSummary:
        """Table 1 row for this dataset (symmetric-graph statistics)."""
        return summarize(self.graph, name=self.name)

    def sampling_graph(self, backend: str = "list"):
        """The graph representation samplers should walk.

        ``"csr"`` converts on demand through :func:`get_csr`, whose
        cache is tagged with the graph's mutation counter — repeated
        calls are free and a mutated graph is re-converted rather than
        served stale.
        """
        if check_backend_name(backend) == "list":
            return self.graph
        self.csr = get_csr(self.graph)
        return self.csr

    def in_degree_of(self, vertex: int) -> int:
        """In-degree label (directed datasets; falls back to degree)."""
        if self.digraph is not None:
            return self.digraph.in_degree(vertex)
        return self.graph.degree(vertex)

    def out_degree_of(self, vertex: int) -> int:
        """Out-degree label (directed datasets; falls back to degree)."""
        if self.digraph is not None:
            return self.digraph.out_degree(vertex)
        return self.graph.degree(vertex)


def _social_dataset(
    name: str,
    description: str,
    spec: SocialGraphSpec,
    seed: int,
    neighborhood_group_labels: bool = False,
) -> Dataset:
    digraph, labels = social_network(spec, rng=seed)
    symmetric = digraph.to_symmetric()
    if neighborhood_group_labels and spec.num_groups > 0:
        from repro.generators.social import neighborhood_groups

        # Topology-correlated groups (as in real social networks):
        # membership spreads over neighborhoods instead of being
        # sprinkled uniformly.
        labels = neighborhood_groups(
            symmetric,
            spec.num_groups,
            member_fraction=spec.member_fraction,
            zipf_exponent=spec.zipf_exponent,
            rng=seed + 1,
        )
    return Dataset(
        name=name,
        graph=symmetric,
        digraph=digraph,
        labels=labels,
        description=description,
    )


def flickr_like(scale: float = 1.0, seed: int = 7) -> Dataset:
    """Flickr stand-in: heavy tails, ~4% dust, Zipf groups."""
    n = max(600, int(12_000 * scale))
    spec = SocialGraphSpec(
        num_vertices=n,
        out_exponent=1.95,
        in_exponent=1.85,
        min_degree=2,
        dust_components=max(4, n // 200),
        dust_size=8,
        num_groups=max(20, min(200, n // 60)),
        member_fraction=0.21,
        zipf_exponent=1.15,
        num_communities=max(2, min(12, n // 900)),
        intercommunity_fraction=0.01,
        community_heterogeneity=2.0,
        assortative_swap_fraction=0.1,
    )
    return _social_dataset(
        "flickr-like",
        "Directed power-law social graph with small disconnected"
        " components and topology-correlated Zipf group labels"
        " (Flickr stand-in).",
        spec,
        seed,
        neighborhood_group_labels=True,
    )


def livejournal_like(scale: float = 1.0, seed: int = 11) -> Dataset:
    """LiveJournal stand-in: denser, almost fully connected."""
    n = max(800, int(15_000 * scale))
    spec = SocialGraphSpec(
        num_vertices=n,
        out_exponent=1.85,
        in_exponent=1.85,
        min_degree=2,
        dust_components=max(1, n // 2500),
        dust_size=6,
        num_groups=0,
        num_communities=max(2, min(10, n // 1200)),
        intercommunity_fraction=0.008,
        community_heterogeneity=1.5,
        assortative_swap_fraction=0.25,
    )
    return _social_dataset(
        "livejournal-like",
        "Dense directed power-law social graph, ~99% LCC"
        " (LiveJournal stand-in).",
        spec,
        seed,
    )


def youtube_like(scale: float = 1.0, seed: int = 13) -> Dataset:
    """YouTube stand-in: sparser, more dust."""
    n = max(600, int(10_000 * scale))
    spec = SocialGraphSpec(
        num_vertices=n,
        out_exponent=2.1,
        in_exponent=2.0,
        min_degree=1,
        dust_components=max(3, n // 400),
        dust_size=6,
        num_groups=0,
        assortative_swap_fraction=0.2,
        disassortative=True,
    )
    return _social_dataset(
        "youtube-like",
        "Sparse directed power-law social graph (YouTube stand-in).",
        spec,
        seed,
    )


def internet_rlt_like(scale: float = 1.0, seed: int = 17) -> Dataset:
    """Internet router-level stand-in: PA tree plus shortcuts.

    Traceroute-collected topologies are tree-heavy with average degree
    near 3; a preferential-attachment tree (BA with one edge per new
    vertex) plus ~60% extra random shortcut edges lands there.
    """
    n = max(400, int(4_000 * scale))
    rng = ensure_rng(seed)
    graph = barabasi_albert(n, 1, rng=rng)
    shortcuts = int(0.6 * n)
    added = 0
    attempts = 0
    while added < shortcuts and attempts < 50 * shortcuts:
        u = rng.randrange(n)
        v = rng.randrange(n)
        attempts += 1
        if u != v and graph.add_edge(u, v):
            added += 1
    from repro.generators.rewiring import assortative_rewire
    from repro.graph.components import connected_components

    # The paper's router-level graph is clearly assortative (r = 0.17).
    assortative_rewire(graph, int(0.6 * graph.num_edges), rng=rng)
    # Double-edge swaps can disconnect the graph; traceroute topologies
    # are connected by construction, so stitch any split components
    # back onto the LCC with single edges.
    components = connected_components(graph)
    for component in components[1:]:
        graph.add_edge(component[0], components[0][rng.randrange(len(components[0]))])
    return Dataset(
        name="internet-rlt-like",
        graph=graph,
        digraph=None,
        labels=VertexLabeling(),
        description="Preferential-attachment tree with random shortcut"
        " edges (router-level traceroute stand-in).",
    )


def hepth_like(scale: float = 1.0, seed: int = 19) -> Dataset:
    """Hep-Th citation stand-in: small loose power-law graph."""
    n = max(200, int(1_500 * scale))
    rng = ensure_rng(seed)
    degrees = power_law_degree_sequence(
        n, 2.4, min_degree=1, max_degree=max(10, n // 10), rng=rng
    )
    graph = configuration_model(degrees, rng=rng)
    return Dataset(
        name="hepth-like",
        graph=graph,
        digraph=None,
        labels=VertexLabeling(),
        description="Small loose power-law configuration-model graph"
        " (Hep-Th citation stand-in).",
    )


def gab(scale: float = 1.0, seed: int = 23) -> Dataset:
    """The paper's GAB graph: BA(avg deg ~2) + BA(avg deg ~10), one
    bridge edge between their minimum-degree vertices."""
    n = max(250, int(2_500 * scale))
    rng = ensure_rng(seed)
    sparse = barabasi_albert(n, 1, rng=rng)
    dense = barabasi_albert(n, 5, rng=rng)
    graph = join_by_bridge(sparse, dense)
    return Dataset(
        name="gab",
        graph=graph,
        digraph=None,
        labels=VertexLabeling(),
        description="Two Barabasi-Albert graphs (average degrees ~2 and"
        " ~10) joined by a single edge — the paper's loosely connected"
        " stress test.",
    )


DatasetBuilder = Callable[..., Dataset]

DATASET_BUILDERS: Dict[str, DatasetBuilder] = {
    "flickr-like": flickr_like,
    "livejournal-like": livejournal_like,
    "youtube-like": youtube_like,
    "internet-rlt-like": internet_rlt_like,
    "hepth-like": hepth_like,
    "gab": gab,
}


def load(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    backend: str = "list",
) -> Dataset:
    """Build a dataset by registry name.

    ``seed`` overrides the builder's fixed default, which otherwise
    makes every load of the same ``(name, scale)`` identical.
    ``backend="csr"`` eagerly attaches the CSR view (one conversion,
    shared by every sampler run against the dataset).
    """
    if name not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; available:"
            f" {sorted(DATASET_BUILDERS)}"
        )
    check_backend_name(backend)
    builder = DATASET_BUILDERS[name]
    dataset = (
        builder(scale=scale)
        if seed is None
        else builder(scale=scale, seed=seed)
    )
    if backend == "csr":
        dataset.sampling_graph("csr")
    return dataset
