"""Compressed-sparse-row (CSR) graph — the fast-path substrate.

The paper's pitch is that Frontier Sampling scales to graphs too large
to crawl exhaustively; the adjacency-*list* :class:`~repro.graph.graph.Graph`
is convenient for construction and small reproductions but every
operation on it is interpreted Python.  :class:`CSRGraph` stores the
same symmetric simple graph as two numpy arrays:

- ``indptr``  — int64, length ``n + 1``; vertex ``v``'s neighbor row is
  ``indices[indptr[v]:indptr[v + 1]]``.
- ``indices`` — int64, length ``2 |E|``; both orientations of every
  edge, so ``deg(v) == indptr[v + 1] - indptr[v]``.

Degree lookups are O(1) pointer arithmetic, the full degree sequence is
one vectorized ``diff``, and uniform neighbor draws index straight into
a row slice.  The batch-walker engine
(:mod:`repro.sampling.vectorized`) runs SRW, MHRW and m-dimensional FS
directly over these arrays, through a native kernel when one is
available.

``from_graph`` preserves the adjacency-list neighbor *order*, which is
what makes list-backend and csr-backend walks bit-for-bit comparable
under a shared random stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.graph.graph import Edge, Graph


class CSRGraph:
    """Symmetric simple graph in compressed-sparse-row form.

    Immutable by design: build it from a :class:`Graph`, an edge list,
    or raw ``(indptr, indices)`` arrays.  Mutation workflows stay on
    :class:`Graph`; convert once when the crawl/generation phase ends.
    """

    __slots__ = ("indptr", "indices", "_list_cache", "mmap_stem")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({int(indptr[-1])}) must equal"
                f" len(indices) ({indices.size})"
            )
        if indices.size % 2 != 0:
            raise ValueError(
                "indices length must be even (both orientations of"
                " every undirected edge)"
            )
        # The O(n + |E|) content scans are skippable for trusted input:
        # mmap'd loads of files this library wrote would otherwise page
        # the entire indices file in before the first walk step.
        if validate:
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if indices.size and (
                indices.min() < 0 or indices.max() >= indptr.size - 1
            ):
                raise ValueError("indices contain out-of-range vertex ids")
        self.indptr = indptr
        self.indices = indices
        #: Lazily cached plain-list views for the pure-Python fallback
        #: kernels (Python list indexing is faster than numpy scalar
        #: indexing in interpreted loops).
        self._list_cache: Optional[Tuple[List[int], List[int]]] = None
        #: Stem of the ``.npy`` pair this graph was mmap'd from, if any
        #: (set by :func:`repro.graph.io.load_csr_npy`); lets worker
        #: processes reopen the same read-only buffers instead of
        #: pickling the arrays.
        self.mmap_stem: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert an adjacency-list graph, preserving neighbor order."""
        n = graph.num_vertices
        adjacency = [graph.neighbors(v) for v in graph.vertices()]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(
                np.fromiter(
                    (len(row) for row in adjacency), dtype=np.int64, count=n
                ),
                out=indptr[1:],
            )
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        position = 0
        for row in adjacency:
            indices[position : position + len(row)] = row
            position += len(row)
        return cls(indptr, indices)

    @classmethod
    def from_edges(
        cls,
        edges: Union[np.ndarray, Iterable[Edge]],
        num_vertices: Optional[int] = None,
    ) -> "CSRGraph":
        """Build directly from an edge array — no adjacency sets.

        Single vectorized pass: parallel edges collapse and self-loops
        are dropped *before* the vertex count is inferred (mirroring
        the edge-list readers, which skip them; ``Graph.from_edges``
        instead raises on self-loops).
        Neighbor rows come out sorted ascending (canonical CSR order),
        which differs from :class:`Graph`'s insertion order — use
        :meth:`from_graph` when walk-for-walk comparability against a
        list-backed graph matters.
        """
        array = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if array.size == 0:
            array = array.reshape(0, 2)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError(
                f"edges must be an (E, 2) array, got shape {array.shape}"
            )
        if array.size and array.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        # Drop self-loops before inferring the vertex count, so the
        # result matches filtering them out ahead of construction (the
        # edge-list readers' behavior on either backend).
        array = array[array[:, 0] != array[:, 1]]
        inferred = int(array.max()) + 1 if array.size else 0
        n = inferred if num_vertices is None else num_vertices
        if n < inferred:
            raise ValueError(
                f"num_vertices={n} but edges mention vertex {inferred - 1}"
            )
        # Collapse parallel edges on the canonical (min, max) key.
        low = np.minimum(array[:, 0], array[:, 1])
        high = np.maximum(array[:, 0], array[:, 1])
        if low.size:
            unique = np.unique(low * np.int64(n) + high)
            low, high = unique // n, unique % n
        src = np.concatenate([low, high])
        dst = np.concatenate([high, low])
        order = np.lexsort((dst, src))
        counts = np.bincount(src, minlength=n) if n else np.zeros(0, np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst[order])

    def to_graph(self) -> Graph:
        """Expand back into an adjacency-list :class:`Graph`."""
        graph = Graph(self.num_vertices)
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_vertices):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < v:
                    graph.add_edge(u, int(v))
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    def vertices(self) -> range:
        return range(self.num_vertices)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree sequence as one vectorized diff (no Python loop)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor row of ``v`` (a read-only array view)."""
        self._check_vertex(v)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(v)
        return bool(np.any(self.neighbors(u) == v))

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as ``(min, max)`` pairs."""
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_vertices):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < v:
                    yield (u, int(v))

    def volume(self, vertices: Optional[Iterable[int]] = None) -> int:
        """Sum of degrees over ``vertices`` (all vertices by default)."""
        if vertices is None:
            return int(self.indices.size)
        ids = np.asarray(list(vertices), dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_vertices):
            raise IndexError("vertex id out of range")
        return int(np.sum(self.indptr[ids + 1] - self.indptr[ids]))

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            raise ValueError("average degree of the empty graph is undefined")
        return self.indices.size / self.num_vertices

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            raise ValueError("max degree of the empty graph is undefined")
        return int(self.degrees().max())

    def isolated_vertices(self) -> List[int]:
        """Vertices with no incident edge."""
        return np.flatnonzero(self.degrees() == 0).tolist()

    # ------------------------------------------------------------------
    # random primitives (numpy-Generator protocol)
    # ------------------------------------------------------------------
    def random_vertex(self, rng: np.random.Generator) -> int:
        """A vertex uniform over V."""
        if self.num_vertices == 0:
            raise ValueError("graph has no vertices")
        return int(rng.integers(0, self.num_vertices))

    def random_neighbor(self, v: int, rng: np.random.Generator) -> int:
        """A neighbor of ``v`` chosen uniformly (one RW step)."""
        degree = self.degree(v)
        if degree == 0:
            raise ValueError(f"vertex {v} has no neighbors to walk to")
        return int(self.indices[self.indptr[v] + rng.integers(0, degree)])

    def random_neighbors(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One uniform neighbor per vertex, drawn for the whole batch.

        ``rng.integers`` into each row slice, vectorized: this is the
        primitive the batch engine uses to advance many independent
        walkers in lockstep.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.indptr[vertices]
        degrees = self.indptr[vertices + 1] - starts
        if np.any(degrees == 0):
            bad = int(vertices[np.argmax(degrees == 0)])
            raise ValueError(f"vertex {bad} has no neighbors to walk to")
        offsets = rng.integers(0, degrees)
        return self.indices[starts + offsets]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def as_lists(self) -> Tuple[List[int], List[int]]:
        """Plain-list ``(indptr, indices)`` for interpreted hot loops."""
        if self._list_cache is None:
            self._list_cache = (self.indptr.tolist(), self.indices.tolist())
        return self._list_cache

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices},"
            f" num_edges={self.num_edges})"
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise IndexError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )


def get_csr(graph: Union[Graph, CSRGraph]) -> CSRGraph:
    """Return ``graph`` as a :class:`CSRGraph`, caching conversions.

    The cache lives on the :class:`Graph` instance and is tagged with
    its mutation counter, so converting the same (unmodified) graph
    repeatedly — e.g. once per Monte Carlo replication — costs one
    conversion total.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if not isinstance(graph, Graph):
        raise TypeError(f"expected Graph or CSRGraph, got {type(graph)!r}")
    cached = getattr(graph, "_csr_cache", None)
    version = graph.version
    if cached is not None and cached[0] == version:
        return cached[1]
    csr = CSRGraph.from_graph(graph)
    graph._csr_cache = (version, csr)
    return csr
