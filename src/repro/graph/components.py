"""Connected components and induced subgraphs.

The paper's datasets are disconnected (Table 1 reports LCC sizes), and
several experiments restrict the walk to the largest connected
component.  Components are found with an iterative BFS so very deep
graphs cannot overflow the recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

from repro.graph.graph import Graph


def connected_components(graph: Graph) -> List[List[int]]:
    """All connected components, each a sorted vertex list.

    Components are returned largest-first (ties broken by smallest
    contained vertex id) so ``components[0]`` is always the LCC.
    """
    seen = [False] * graph.num_vertices
    components: List[List[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        component.sort()
        components.append(component)
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has exactly one connected component.

    The empty graph is vacuously connected.
    """
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def induced_subgraph(
    graph: Graph, vertices: Iterable[int]
) -> Tuple[Graph, Dict[int, int]]:
    """Subgraph induced by ``vertices`` with dense relabeling.

    Returns ``(subgraph, old_to_new)`` where ``old_to_new`` maps
    original vertex ids to ids in the subgraph.  Edges with both
    endpoints inside the vertex set are kept.
    """
    vertex_list = sorted(set(vertices))
    old_to_new = {old: new for new, old in enumerate(vertex_list)}
    sub = Graph(len(vertex_list))
    for old in vertex_list:
        for nbr in graph.neighbors(old):
            if nbr in old_to_new and old < nbr:
                sub.add_edge(old_to_new[old], old_to_new[nbr])
    return sub, old_to_new


def largest_connected_component(
    graph: Graph,
) -> Tuple[Graph, Dict[int, int]]:
    """The LCC as an induced subgraph plus the old->new vertex map."""
    if graph.num_vertices == 0:
        raise ValueError("the empty graph has no components")
    components = connected_components(graph)
    return induced_subgraph(graph, components[0])


def component_sizes(graph: Graph) -> List[int]:
    """Component sizes, largest first."""
    return [len(c) for c in connected_components(graph)]
