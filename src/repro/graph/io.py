"""Graph I/O: SNAP-style edge lists and mmap-able binary CSR files.

Edge-list lines are ``u<whitespace>v``; ``#`` starts a comment.  Both
directed and undirected graphs round-trip through the same text format.

``backend="csr"`` loads an undirected edge list straight into a
:class:`~repro.graph.csr.CSRGraph`: one pass over the file into flat
numpy arrays, then a vectorized counting-sort build — no intermediate
per-vertex adjacency lists or sets, which is what makes loading graphs
with 10^7+ edges feasible.

For graphs bigger than RAM, :func:`save_csr_npy` persists a CSR graph
as two sibling binary files — ``<stem>.indptr.npy`` and
``<stem>.indices.npy``, plain ``np.save`` format, int64, C-order (the
layout documented in ``docs/architecture.md``) — and
:func:`load_csr_npy` reopens them with ``np.load(..., mmap_mode="r")``
so the kernel pages neighbor rows in on demand.  ``.npy`` rather than
``.npz`` because zip members cannot be mmap'd.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph, get_csr
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.util.backends import check_backend_name

PathLike = Union[str, Path]


def _parse_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_no}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: non-integer vertex id in {stripped!r}"
                ) from exc
            yield u, v


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    num_vertices: Optional[int] = None,
    backend: str = "list",
) -> Union[Graph, DiGraph, CSRGraph]:
    """Read an edge list file into a graph.

    Self-loops in the file are skipped (the library's graphs are
    simple); duplicate edges collapse.  ``backend="list"`` returns the
    adjacency-list :class:`Graph` / :class:`DiGraph`;
    ``backend="csr"`` (undirected only) builds a :class:`CSRGraph`
    directly — single pass, no intermediate adjacency sets.
    """
    check_backend_name(backend)
    if backend == "csr":
        if directed:
            raise ValueError(
                "backend='csr' supports undirected graphs only"
            )
        flat = np.fromiter(
            (endpoint for pair in _parse_lines(path) for endpoint in pair),
            dtype=np.int64,
        )
        return CSRGraph.from_edges(
            flat.reshape(-1, 2), num_vertices=num_vertices
        )
    edges = [(u, v) for u, v in _parse_lines(path) if u != v]
    if directed:
        return DiGraph.from_edges(edges, num_vertices=num_vertices)
    return Graph.from_edges(edges, num_vertices=num_vertices)


def _csr_paths(stem: PathLike) -> Tuple[Path, Path]:
    stem = Path(stem)
    return (
        stem.with_name(stem.name + ".indptr.npy"),
        stem.with_name(stem.name + ".indices.npy"),
    )


def save_csr_npy(
    graph: Union[Graph, CSRGraph], stem: PathLike
) -> Tuple[Path, Path]:
    """Persist ``graph`` as ``<stem>.indptr.npy`` + ``<stem>.indices.npy``.

    Plain ``np.save`` format, int64, C-order — the mmap-able CSR layout.
    An adjacency-list :class:`Graph` is converted first (neighbor order
    preserved, so walks over the reloaded graph match walks over the
    original).  Returns the two paths written.
    """
    csr = get_csr(graph)
    indptr_path, indices_path = _csr_paths(stem)
    np.save(indptr_path, np.ascontiguousarray(csr.indptr, dtype=np.int64))
    np.save(indices_path, np.ascontiguousarray(csr.indices, dtype=np.int64))
    return indptr_path, indices_path


def load_csr_npy(
    stem: PathLike, mmap: bool = True, validate: Optional[bool] = None
) -> CSRGraph:
    """Reopen a graph written by :func:`save_csr_npy`.

    With ``mmap=True`` (default) the arrays are memory-mapped read-only
    (``np.load(..., mmap_mode="r")``): the file is paged in lazily by
    the OS, so graphs larger than RAM can be walked — the batch kernels
    only ever touch the rows the walkers visit.  ``mmap=False`` reads
    both arrays into memory.

    ``validate`` controls the O(|E|) content scan of
    :class:`CSRGraph.__init__`.  The default (``None``) validates
    in-memory loads but skips the scan for mmap'd ones — running it
    would page the entire indices file in before the first walk step,
    defeating the point of mmap.  Pass ``validate=True`` when opening
    files from an untrusted source (a corrupt indices array would
    otherwise reach the native kernels unchecked), or ``False`` to
    skip the scan even in memory.
    """
    indptr_path, indices_path = _csr_paths(stem)
    mode = "r" if mmap else None
    indptr = np.load(indptr_path, mmap_mode=mode)
    indices = np.load(indices_path, mmap_mode=mode)
    if validate is None:
        validate = not mmap
    graph = CSRGraph(indptr, indices, validate=validate)
    if mmap:
        # Only an mmap'd graph is actually backed by these files; an
        # in-memory (mmap=False) load is an independent copy, and
        # recording the stem would let the sharing layer hand workers
        # files that may since have diverged from the arrays in hand.
        graph.mmap_stem = str(Path(stem).resolve())
    return graph


def spill_csr_npy(
    graph: Union[Graph, CSRGraph], directory: Optional[PathLike] = None
) -> Path:
    """Spill ``graph`` to disk as an mmap-able CSR pair; return the stem.

    Writes ``graph/graph.indptr.npy`` + ``graph/graph.indices.npy``
    under ``directory`` (a fresh private temp directory when ``None``)
    so worker processes can reopen the graph read-only via
    :func:`load_csr_npy` instead of pickling the arrays across the
    process boundary.  The caller owns cleanup of the returned stem's
    parent directory.
    """
    base = (
        Path(tempfile.mkdtemp(prefix="repro-csr-"))
        if directory is None
        else Path(directory)
    )
    stem = base / "graph"
    save_csr_npy(graph, stem)
    return stem


def shared_csr_stem(
    graph: Union[Graph, CSRGraph],
) -> Tuple[Path, Optional[Path]]:
    """``(stem, owned_tempdir)`` locating shareable CSR buffers for ``graph``.

    A graph already backed by mmap'd ``.npy`` files (its
    :attr:`~repro.graph.csr.CSRGraph.mmap_stem` is set) is shared in
    place — ``owned_tempdir`` is ``None`` and nothing is written.  Any
    other graph is spilled to a fresh temp directory, returned as
    ``owned_tempdir`` so the caller can remove it when the sharing
    session ends.
    """
    csr = get_csr(graph)
    if csr.mmap_stem is not None:
        return Path(csr.mmap_stem), None
    stem = spill_csr_npy(csr)
    return stem, stem.parent


def write_edge_list(
    graph: Union[Graph, DiGraph, CSRGraph], path: PathLike, header: str = ""
) -> None:
    """Write the graph's edges to ``path``, one per line.

    Undirected graphs are written with each edge once (``u < v``);
    directed graphs with every arc.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
