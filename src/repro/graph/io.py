"""Edge-list I/O in the format used by SNAP-style datasets.

Lines are ``u<whitespace>v``; ``#`` starts a comment.  Both directed
and undirected graphs round-trip through the same text format.

``backend="csr"`` loads an undirected edge list straight into a
:class:`~repro.graph.csr.CSRGraph`: one pass over the file into flat
numpy arrays, then a vectorized counting-sort build — no intermediate
per-vertex adjacency lists or sets, which is what makes loading graphs
with 10^7+ edges feasible.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.util.backends import check_backend_name

PathLike = Union[str, Path]


def _parse_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_no}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: non-integer vertex id in {stripped!r}"
                ) from exc
            yield u, v


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    num_vertices: Optional[int] = None,
    backend: str = "list",
) -> Union[Graph, DiGraph, CSRGraph]:
    """Read an edge list file into a graph.

    Self-loops in the file are skipped (the library's graphs are
    simple); duplicate edges collapse.  ``backend="list"`` returns the
    adjacency-list :class:`Graph` / :class:`DiGraph`;
    ``backend="csr"`` (undirected only) builds a :class:`CSRGraph`
    directly — single pass, no intermediate adjacency sets.
    """
    check_backend_name(backend)
    if backend == "csr":
        if directed:
            raise ValueError(
                "backend='csr' supports undirected graphs only"
            )
        flat = np.fromiter(
            (endpoint for pair in _parse_lines(path) for endpoint in pair),
            dtype=np.int64,
        )
        return CSRGraph.from_edges(
            flat.reshape(-1, 2), num_vertices=num_vertices
        )
    edges = [(u, v) for u, v in _parse_lines(path) if u != v]
    if directed:
        return DiGraph.from_edges(edges, num_vertices=num_vertices)
    return Graph.from_edges(edges, num_vertices=num_vertices)


def write_edge_list(
    graph: Union[Graph, DiGraph, CSRGraph], path: PathLike, header: str = ""
) -> None:
    """Write the graph's edges to ``path``, one per line.

    Undirected graphs are written with each edge once (``u < v``);
    directed graphs with every arc.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
