"""Symmetric (undirected) simple graph over integer vertices.

This is the structure the paper's random walks operate on: the
"symmetric counterpart" ``G = (V, E)`` of the crawled directed graph
(Section 2).  Vertices are dense integers ``0 .. n-1`` so that degree
lookups, uniform neighbor selection and degree-proportional seeding are
all array operations.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


class Graph:
    """Undirected simple graph stored as adjacency lists.

    Self-loops are rejected (a walker crossing a self-loop would be a
    no-op and the paper's graphs contain none); parallel edges collapse
    to one.  The class maintains, per vertex, both an adjacency *list*
    (for O(1) uniform neighbor draws) and an adjacency *set* (for O(1)
    membership tests), trading memory for the query mix the samplers
    need.
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self._adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._adj_sets: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        # Monotone mutation counter; lets derived representations
        # (e.g. the cached CSR conversion) detect staleness cheaply.
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: Optional[int] = None
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        If ``num_vertices`` is omitted the vertex count is one more than
        the largest endpoint mentioned.
        """
        edge_list = list(edges)
        if num_vertices is None:
            num_vertices = (
                max((max(u, v) for u, v in edge_list), default=-1) + 1
            )
        graph = cls(num_vertices)
        for u, v in edge_list:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self._adj.append([])
        self._adj_sets.append(set())
        self._version += 1
        return len(self._adj) - 1

    def add_vertices(self, count: int) -> None:
        """Append ``count`` isolated vertices."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for _ in range(count):
            self.add_vertex()

    def add_edge(self, u: int, v: int) -> bool:
        """Insert undirected edge ``{u, v}``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed (parallel edges collapse).  Raises on self-loops.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u})")
        if v in self._adj_sets[u]:
            return False
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._adj_sets[u].add(v)
        self._adj_sets[v].add(u)
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete undirected edge ``{u, v}``; returns ``True`` if it
        existed.  O(deg) — intended for rewiring passes, not hot loops.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj_sets[u]:
            return False
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._adj_sets[u].discard(v)
        self._adj_sets[v].discard(u)
        self._num_edges -= 1
        self._version += 1
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def version(self) -> int:
        """Mutation counter (bumps on any structural change)."""
        return self._version

    def vertices(self) -> range:
        return range(len(self._adj))

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def degrees(self) -> List[int]:
        """Degree sequence indexed by vertex id."""
        return [len(nbrs) for nbrs in self._adj]

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbors of ``v`` (do not mutate the returned list)."""
        self._check_vertex(v)
        return self._adj[v]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj_sets[u]

    def neighbor_set(self, v: int) -> Set[int]:
        """Neighbors of ``v`` as a set (do not mutate)."""
        self._check_vertex(v)
        return self._adj_sets[v]

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as ``(min, max)`` pairs."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def directed_edges(self) -> Iterator[Edge]:
        """Iterate both orientations of every edge (the paper's ``E``)."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                yield (u, v)

    def volume(self, vertices: Optional[Iterable[int]] = None) -> int:
        """Sum of degrees over ``vertices`` (all vertices by default).

        ``vol(V) == 2 |E|`` for the whole graph.
        """
        if vertices is None:
            return 2 * self._num_edges
        return sum(self.degree(v) for v in vertices)

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            raise ValueError("average degree of the empty graph is undefined")
        return self.volume() / self.num_vertices

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            raise ValueError("max degree of the empty graph is undefined")
        return max(self.degrees())

    def isolated_vertices(self) -> List[int]:
        """Vertices with no incident edge."""
        return [v for v, nbrs in enumerate(self._adj) if not nbrs]

    # ------------------------------------------------------------------
    # random primitives used by the samplers
    # ------------------------------------------------------------------
    def random_vertex(self, rng: random.Random) -> int:
        """A vertex uniform over V (random vertex sampling)."""
        if self.num_vertices == 0:
            raise ValueError("graph has no vertices")
        return rng.randrange(self.num_vertices)

    def random_neighbor(self, v: int, rng: random.Random) -> int:
        """A neighbor of ``v`` chosen uniformly (one RW step)."""
        nbrs = self._adj[v]
        if not nbrs:
            raise ValueError(f"vertex {v} has no neighbors to walk to")
        return nbrs[rng.randrange(len(nbrs))]

    def random_edge(self, rng: random.Random) -> Edge:
        """A *directed* edge ``(u, v)`` uniform over the 2|E| orientations.

        Sampling an orientation uniformly is exactly how a stationary
        random walk samples edges, and is what random edge sampling in
        the paper means for estimator purposes.
        """
        if self._num_edges == 0:
            raise ValueError("graph has no edges")
        # Draw u proportional to degree, then a uniform neighbor.
        # This equals uniform over directed edges without materializing
        # the edge list: P(u) = deg(u)/2|E|, P(v|u) = 1/deg(u).
        u = self._degree_proportional_vertex(rng)
        v = self.random_neighbor(u, rng)
        return (u, v)

    def _degree_proportional_vertex(self, rng: random.Random) -> int:
        target = rng.randrange(2 * self._num_edges)
        # Linear scan fallback; samplers that need this repeatedly use
        # an AliasTable built once from self.degrees().
        acc = 0
        for v, nbrs in enumerate(self._adj):
            acc += len(nbrs)
            if target < acc:
                return v
        raise AssertionError("unreachable: degree scan exhausted")

    def copy(self) -> "Graph":
        """Deep copy."""
        clone = Graph(self.num_vertices)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise IndexError(
                f"vertex {v} out of range [0, {len(self._adj)})"
            )
