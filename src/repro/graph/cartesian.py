"""Explicit m-th Cartesian power ``G^m`` of a graph.

Lemma 5.1 states that Frontier Sampling is a single random walk on
``G^m``: states are m-tuples of vertices, and two states are adjacent
iff they differ in exactly one coordinate and that coordinate pair is
an edge of ``G``.  Building ``G^m`` explicitly is only feasible for
tiny graphs (|V|^m states), which is precisely what the verification
tests and the Table 4 transient analysis need.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.graph import Graph

State = Tuple[int, ...]


def encode_state(state: State, num_vertices: int) -> int:
    """Encode an m-tuple of vertices as a base-``num_vertices`` integer."""
    code = 0
    for v in state:
        if not 0 <= v < num_vertices:
            raise ValueError(
                f"vertex {v} out of range [0, {num_vertices})"
            )
        code = code * num_vertices + v
    return code


def decode_state(code: int, num_vertices: int, m: int) -> State:
    """Inverse of :func:`encode_state`."""
    if code < 0 or code >= num_vertices**m:
        raise ValueError(
            f"code {code} out of range [0, {num_vertices}^{m})"
        )
    digits: List[int] = []
    for _ in range(m):
        digits.append(code % num_vertices)
        code //= num_vertices
    return tuple(reversed(digits))


def cartesian_power(graph: Graph, m: int, max_states: int = 200_000) -> Graph:
    """Build ``G^m`` explicitly as a :class:`Graph`.

    Vertex ``encode_state((v1, ..., vm), |V|)`` of the result represents
    the FS frontier state ``(v1, ..., vm)``.  The construction satisfies
    the paper's accounting: ``|E^m| = m * |V|^(m-1) * |E|`` and the
    degree of a state equals the sum of its coordinate degrees.

    ``max_states`` guards against accidentally exponential builds.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    n = graph.num_vertices
    num_states = n**m
    if num_states > max_states:
        raise ValueError(
            f"G^{m} would have {num_states} states, above the cap of"
            f" {max_states}; raise max_states explicitly if intended"
        )
    power = Graph(num_states)
    # Enumerate states by iterating codes and decoding; for each state,
    # connect every one-coordinate move with a larger encoding (each
    # undirected edge added once).
    for code in range(num_states):
        state = decode_state(code, n, m)
        for i, v in enumerate(state):
            for nbr in graph.neighbors(v):
                neighbor_state = state[:i] + (nbr,) + state[i + 1 :]
                neighbor_code = encode_state(neighbor_state, n)
                if neighbor_code > code:
                    power.add_edge(code, neighbor_code)
    return power


def state_degree(graph: Graph, state: State) -> int:
    """Degree of ``state`` in ``G^m`` = sum of coordinate degrees in G."""
    return sum(graph.degree(v) for v in state)
