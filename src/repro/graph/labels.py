"""Vertex and edge label stores (Section 2 of the paper).

A label can be anything hashable — a degree, a group id, a hometown.
Each vertex/edge carries a *set* of labels; unlabeled items simply have
an empty set.  The estimators only ever ask two questions: "does this
vertex/edge carry label ``l``?" and "does it carry any label at all?",
so the store is a thin mapping with those operations made explicit.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Label = Hashable
Edge = Tuple[int, int]


class VertexLabeling:
    """Mapping from vertex id to its set of labels."""

    def __init__(self):
        self._labels: Dict[int, Set[Label]] = {}

    def add(self, vertex: int, label: Label) -> None:
        """Attach ``label`` to ``vertex``."""
        self._labels.setdefault(vertex, set()).add(label)

    def add_many(self, vertex: int, labels: Iterable[Label]) -> None:
        for label in labels:
            self.add(vertex, label)

    def labels_of(self, vertex: int) -> Set[Label]:
        """Labels of ``vertex`` (empty set if unlabeled)."""
        return self._labels.get(vertex, set())

    def has_label(self, vertex: int, label: Label) -> bool:
        return label in self._labels.get(vertex, ())

    def is_labeled(self, vertex: int) -> bool:
        return bool(self._labels.get(vertex))

    def labeled_vertices(self) -> Iterator[int]:
        """Vertices carrying at least one label."""
        return (v for v, labels in self._labels.items() if labels)

    def all_labels(self) -> Set[Label]:
        """Union of all label sets."""
        out: Set[Label] = set()
        for labels in self._labels.values():
            out |= labels
        return out

    def count_with_label(self, label: Label) -> int:
        """Number of vertices carrying ``label``."""
        return sum(1 for labels in self._labels.values() if label in labels)

    def __len__(self) -> int:
        return sum(1 for labels in self._labels.values() if labels)


class EdgeLabeling:
    """Mapping from a *directed* edge ``(u, v)`` to its label set.

    Directed keys let us label only the orientations that exist in the
    original directed graph ``G_d`` — exactly what the assortativity
    estimator requires (its ``E*`` equals ``E_d``).
    """

    def __init__(self):
        self._labels: Dict[Edge, Set[Label]] = {}

    def add(self, edge: Edge, label: Label) -> None:
        self._labels.setdefault(edge, set()).add(label)

    def add_many(self, edge: Edge, labels: Iterable[Label]) -> None:
        for label in labels:
            self.add(edge, label)

    def labels_of(self, edge: Edge) -> Set[Label]:
        return self._labels.get(edge, set())

    def has_label(self, edge: Edge, label: Label) -> bool:
        return label in self._labels.get(edge, ())

    def is_labeled(self, edge: Edge) -> bool:
        return bool(self._labels.get(edge))

    def labeled_edges(self) -> Iterator[Edge]:
        return (e for e, labels in self._labels.items() if labels)

    def all_labels(self) -> Set[Label]:
        out: Set[Label] = set()
        for labels in self._labels.values():
            out |= labels
        return out

    def count_with_label(self, label: Label) -> int:
        return sum(1 for labels in self._labels.values() if label in labels)

    def __len__(self) -> int:
        return sum(1 for labels in self._labels.values() if labels)
