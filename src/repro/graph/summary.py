"""Graph summary statistics — the columns of the paper's Table 1.

Table 1 reports, per dataset: number of vertices, size of the largest
connected component, number of edges, average degree, and ``wmax`` (the
largest vertex degree divided by the average degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.graph.components import connected_components
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """One dataset's row of Table 1."""

    name: str
    num_vertices: int
    lcc_size: int
    num_edges: int
    average_degree: float
    wmax: float
    num_components: int

    def as_row(self) -> str:
        """Render the summary as a fixed-width text row."""
        return (
            f"{self.name:<16} {self.num_vertices:>10,} {self.lcc_size:>10,}"
            f" {self.num_edges:>12,} {self.average_degree:>8.1f}"
            f" {self.wmax:>8.0f} {self.num_components:>6}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Graph':<16} {'Vertices':>10} {'LCC':>10} {'Edges':>12}"
            f" {'AvgDeg':>8} {'wmax':>8} {'Comps':>6}"
        )


def summarize(graph: Union[Graph, DiGraph], name: str = "graph") -> GraphSummary:
    """Compute the Table 1 summary of ``graph``.

    Directed graphs are summarized through their symmetric counterpart
    (degree, LCC and wmax are symmetric-graph notions in the paper),
    but the edge count reported is the directed one when a ``DiGraph``
    is given — matching how Table 1 counts Flickr's directed edges.
    """
    if isinstance(graph, DiGraph):
        symmetric = graph.to_symmetric()
        num_edges = graph.num_edges
    else:
        symmetric = graph
        num_edges = graph.num_edges
    if symmetric.num_vertices == 0:
        raise ValueError("cannot summarize the empty graph")
    components = connected_components(symmetric)
    avg = symmetric.average_degree()
    wmax = symmetric.max_degree() / avg if avg > 0 else float("nan")
    return GraphSummary(
        name=name,
        num_vertices=symmetric.num_vertices,
        lcc_size=len(components[0]),
        num_edges=num_edges,
        average_degree=avg,
        wmax=wmax,
        num_components=len(components),
    )
