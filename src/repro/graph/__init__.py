"""Graph substrate: adjacency-list graphs, components, labels, I/O.

This package is the foundation every sampler walks on.  It provides:

- :class:`~repro.graph.graph.Graph` — a symmetric (undirected) simple
  graph with O(1) degree lookup and O(1) uniform neighbor selection,
  the structure a random walker crawls.
- :class:`~repro.graph.digraph.DiGraph` — a directed graph with
  separate in/out adjacency, convertible to its symmetric counterpart
  ``G`` exactly as Section 2 of the paper prescribes.
- Connected-component machinery (the paper's graphs are disconnected;
  the LCC restriction experiments need induced subgraphs).
- Explicit construction of the m-th Cartesian power ``G^m`` used to
  verify Lemma 5.1 / Theorem 5.2 on small graphs.
- Vertex/edge label stores, edge-list I/O, and the Table 1 summary.
"""

from repro.graph.cartesian import cartesian_power, encode_state, decode_state
from repro.graph.components import (
    connected_components,
    induced_subgraph,
    is_connected,
    largest_connected_component,
)
from repro.graph.csr import CSRGraph, get_csr
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.io import (
    load_csr_npy,
    read_edge_list,
    save_csr_npy,
    shared_csr_stem,
    spill_csr_npy,
    write_edge_list,
)
from repro.graph.labels import EdgeLabeling, VertexLabeling
from repro.graph.summary import GraphSummary, summarize

__all__ = [
    "CSRGraph",
    "DiGraph",
    "EdgeLabeling",
    "Graph",
    "GraphSummary",
    "VertexLabeling",
    "get_csr",
    "cartesian_power",
    "connected_components",
    "decode_state",
    "encode_state",
    "induced_subgraph",
    "is_connected",
    "largest_connected_component",
    "load_csr_npy",
    "read_edge_list",
    "save_csr_npy",
    "shared_csr_stem",
    "spill_csr_npy",
    "summarize",
    "write_edge_list",
]
