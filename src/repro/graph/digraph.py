"""Directed graph with the paper's symmetrization semantics.

The networks the paper crawls are directed (``G_d``): a Flickr user
subscribing to another is an ordered pair.  The walker, however, can
retrieve both incoming and outgoing edges of a queried vertex, so it
effectively walks the symmetric closure ``G``.  Estimators such as the
degree-assortativity coefficient still need the *original* direction
and the original in/out-degrees, so :class:`DiGraph` keeps both views.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.graph import Graph

Edge = Tuple[int, int]


class DiGraph:
    """Directed simple graph over dense integer vertices."""

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._out_sets: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: Optional[int] = None
    ) -> "DiGraph":
        """Build from ordered pairs; vertex count inferred if omitted."""
        edge_list = list(edges)
        if num_vertices is None:
            num_vertices = (
                max((max(u, v) for u, v in edge_list), default=-1) + 1
            )
        graph = cls(num_vertices)
        for u, v in edge_list:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        self._out.append([])
        self._in.append([])
        self._out_sets.append(set())
        return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Insert directed edge ``(u, v)``; returns ``True`` if new."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u})")
        if v in self._out_sets[u]:
            return False
        self._out[u].append(v)
        self._in[v].append(u)
        self._out_sets[u].add(v)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete directed edge ``(u, v)``; returns ``True`` if it
        existed.  O(deg) — intended for rewiring passes, not hot loops.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out_sets[u]:
            return False
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._out_sets[u].discard(v)
        self._num_edges -= 1
        return True

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._out))

    def out_degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._in[v])

    def out_degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self._out]

    def in_degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self._in]

    def out_neighbors(self, v: int) -> List[int]:
        self._check_vertex(v)
        return self._out[v]

    def in_neighbors(self, v: int) -> List[int]:
        self._check_vertex(v)
        return self._in[v]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out_sets[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate directed edges in vertex order."""
        for u, nbrs in enumerate(self._out):
            for v in nbrs:
                yield (u, v)

    def to_symmetric(self) -> Graph:
        """The paper's ``G``: union of both orientations of every edge.

        A pair connected in *either* direction becomes one undirected
        edge; reciprocal directed pairs collapse.
        """
        graph = Graph(self.num_vertices)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    def __repr__(self) -> str:
        return (
            f"DiGraph(num_vertices={self.num_vertices},"
            f" num_edges={self.num_edges})"
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._out):
            raise IndexError(
                f"vertex {v} out of range [0, {len(self._out)})"
            )
