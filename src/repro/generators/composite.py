"""Composite constructions: disjoint unions, bridges, component dust.

``join_by_bridge`` is the paper's ``GAB`` construction (Section 6.1):
two Barabási–Albert graphs with very different average degrees, joined
by a single edge between their smallest-degree vertices.  The bridge
makes the graph *loosely connected* — the pathological case FS is
designed to survive.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def disjoint_union(graphs: Sequence[Graph]) -> Tuple[Graph, List[int]]:
    """Disjoint union; returns ``(union, offsets)``.

    ``offsets[i]`` is the id shift applied to graph ``i``'s vertices, so
    original vertex ``v`` of graph ``i`` becomes ``offsets[i] + v``.
    """
    if not graphs:
        raise ValueError("disjoint_union of no graphs")
    total = sum(g.num_vertices for g in graphs)
    union = Graph(total)
    offsets: List[int] = []
    shift = 0
    for g in graphs:
        offsets.append(shift)
        for u, v in g.edges():
            union.add_edge(u + shift, v + shift)
        shift += g.num_vertices
    return union, offsets


def join_by_bridge(a: Graph, b: Graph) -> Graph:
    """Join two graphs by one edge between their minimum-degree vertices.

    This is the paper's ``GAB``: ties are resolved arbitrarily (we take
    the smallest vertex id among the minimum-degree vertices).  Isolated
    vertices are skipped as bridge endpoints — the bridge must attach to
    the walkable part of each graph.
    """
    union, offsets = disjoint_union([a, b])

    def min_degree_vertex(graph: Graph) -> int:
        best_vertex, best_degree = -1, None
        for v in graph.vertices():
            d = graph.degree(v)
            if d == 0:
                continue
            if best_degree is None or d < best_degree:
                best_vertex, best_degree = v, d
        if best_degree is None:
            raise ValueError("graph has no edges; cannot place a bridge")
        return best_vertex

    endpoint_a = min_degree_vertex(a) + offsets[0]
    endpoint_b = min_degree_vertex(b) + offsets[1]
    union.add_edge(endpoint_a, endpoint_b)
    return union


def with_component_dust(
    core: Graph,
    num_components: int,
    component_size: int,
    rng: RngLike = None,
) -> Graph:
    """Append many small connected components ("dust") to ``core``.

    Each dust component is a small connected random graph (a random
    spanning tree plus a few extra edges), mimicking the small
    disconnected components of crawled social graphs — the structures
    that trap SingleRW/MultipleRW walkers in the paper's Figure 6.
    """
    if num_components < 0:
        raise ValueError(f"num_components must be >= 0, got {num_components}")
    if num_components > 0 and component_size < 2:
        raise ValueError(
            f"component_size must be >= 2, got {component_size}"
        )
    generator = ensure_rng(rng)
    graphs = [core]
    for _ in range(num_components):
        dust = Graph(component_size)
        # Random attachment tree keeps it connected.
        for v in range(1, component_size):
            dust.add_edge(v, generator.randrange(v))
        # A couple of extra edges so the dust is not exactly a tree.
        extra = max(1, component_size // 4)
        attempts = 0
        while extra > 0 and attempts < 10 * component_size:
            u = generator.randrange(component_size)
            v = generator.randrange(component_size)
            attempts += 1
            if u != v and dust.add_edge(u, v):
                extra -= 1
        graphs.append(dust)
    union, _ = disjoint_union(graphs)
    return union
