"""Erdős–Rényi random graphs: G(n, p) and G(n, m)."""

from __future__ import annotations

import math

from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def erdos_renyi_gnp(num_vertices: int, p: float, rng: RngLike = None) -> Graph:
    """G(n, p): each of the C(n, 2) possible edges appears independently.

    Uses the geometric skipping trick so the cost is proportional to the
    number of realized edges rather than n^2 when ``p`` is small.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    generator = ensure_rng(rng)
    graph = Graph(num_vertices)
    if p == 0.0 or num_vertices < 2:
        return graph
    if p == 1.0:
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                graph.add_edge(u, v)
        return graph

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < num_vertices:
        r = generator.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < num_vertices:
            w -= v
            v += 1
        if v < num_vertices:
            graph.add_edge(v, w)
    return graph


def erdos_renyi_gnm(num_vertices: int, num_edges: int, rng: RngLike = None) -> Graph:
    """G(n, m): exactly ``num_edges`` distinct edges, uniform over sets."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges < 0 or num_edges > max_edges:
        raise ValueError(
            f"num_edges must be in [0, {max_edges}] for n={num_vertices},"
            f" got {num_edges}"
        )
    generator = ensure_rng(rng)
    graph = Graph(num_vertices)
    added = 0
    while added < num_edges:
        u = generator.randrange(num_vertices)
        v = generator.randrange(num_vertices)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph
