"""Watts–Strogatz small-world graphs [Watts & Strogatz 1998].

Used in the test suite and ablations as a high-clustering contrast to
the configuration-model graphs (the paper estimates the global
clustering coefficient, Section 6.6).
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def watts_strogatz(
    num_vertices: int, k: int, rewire_prob: float, rng: RngLike = None
) -> Graph:
    """Ring lattice with ``k`` nearest neighbors, each edge rewired
    with probability ``rewire_prob``.

    ``k`` must be even and smaller than ``num_vertices``.  Rewiring
    keeps the source endpoint and redirects the target uniformly,
    skipping moves that would create self-loops or duplicates.
    """
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if k >= num_vertices:
        raise ValueError(f"k must be < num_vertices, got k={k}, n={num_vertices}")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError(f"rewire_prob must be in [0, 1], got {rewire_prob}")
    generator = ensure_rng(rng)
    graph = Graph(num_vertices)
    for v in range(num_vertices):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(v, (v + offset) % num_vertices)

    if rewire_prob == 0.0:
        return graph

    # Rebuild with rewiring decisions, mirroring the classic algorithm.
    rewired = Graph(num_vertices)
    for v in range(num_vertices):
        for offset in range(1, k // 2 + 1):
            target = (v + offset) % num_vertices
            if generator.random() < rewire_prob:
                for _ in range(4 * num_vertices):
                    candidate = generator.randrange(num_vertices)
                    if candidate != v and not rewired.has_edge(v, candidate):
                        target = candidate
                        break
            if v != target and not rewired.has_edge(v, target):
                rewired.add_edge(v, target)
    return rewired
