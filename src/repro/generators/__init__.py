"""Synthetic graph generators.

These produce the workloads the paper's evaluation runs on: the exact
``GAB`` construction (two Barabási–Albert graphs joined by one edge,
Section 6.1), and scaled-down structural stand-ins for the crawled
Flickr / LiveJournal / YouTube / Internet datasets (power-law
configuration models with a dominant connected core plus small
disconnected components, and Zipf-popular group labels).
"""

from repro.generators.ba import barabasi_albert
from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.generators.composite import (
    disjoint_union,
    join_by_bridge,
    with_component_dust,
)
from repro.generators.configuration import (
    configuration_model,
    directed_configuration_model,
    power_law_degree_sequence,
)
from repro.generators.er import erdos_renyi_gnm, erdos_renyi_gnp
from repro.generators.smallworld import watts_strogatz
from repro.generators.social import SocialGraphSpec, social_network, zipf_groups

__all__ = [
    "SocialGraphSpec",
    "barabasi_albert",
    "complete_graph",
    "configuration_model",
    "cycle_graph",
    "directed_configuration_model",
    "disjoint_union",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "grid_graph",
    "join_by_bridge",
    "path_graph",
    "power_law_degree_sequence",
    "social_network",
    "star_graph",
    "watts_strogatz",
    "with_component_dust",
    "zipf_groups",
]
