"""Social-network stand-ins: heavy-tailed directed graphs with groups.

The paper's Flickr / LiveJournal / YouTube crawls are not
redistributable, so experiments run on graphs generated here to match
the structural features the evaluation actually exercises:

- power-law in- and out-degree distributions (directed configuration
  model core),
- one dominant connected component plus many small disconnected
  components ("dust"), matching Table 1's ``LCC < |V|`` rows,
- vertex group labels with Zipf-distributed group popularity
  (Section 6.5: 21% of Flickr users belong to at least one group).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.generators.configuration import (
    directed_configuration_model,
    power_law_degree_sequence,
)
from repro.graph.digraph import DiGraph
from repro.graph.labels import VertexLabeling
from repro.util.alias import AliasTable
from repro.util.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SocialGraphSpec:
    """Parameters of a synthetic social graph.

    ``dust_components`` small components of ``dust_size`` vertices are
    appended after the configuration-model core, so the fraction of
    vertices outside the core is ``dust_components * dust_size /
    num_vertices``.  Groups are assigned to ``member_fraction`` of the
    vertices; each member joins ``1 + Geometric(extra_group_prob)``
    groups drawn from a Zipf popularity law.
    """

    num_vertices: int = 10_000
    out_exponent: float = 2.2
    in_exponent: float = 2.0
    min_degree: int = 1
    max_degree: Optional[int] = None
    dust_components: int = 0
    dust_size: int = 8
    num_groups: int = 0
    member_fraction: float = 0.21
    zipf_exponent: float = 1.2
    extra_group_prob: float = 0.4
    #: Split the core into this many loosely interconnected communities.
    #: Real social graphs are not expanders: a walker entering a
    #: community tends to stay a while (the "trapping" the paper's
    #: Section 4.3 describes).  1 = a single configuration-model core.
    num_communities: int = 1
    #: Fraction of core arcs added as random cross-community arcs.
    intercommunity_fraction: float = 0.02
    #: Degree heterogeneity across communities: community ``i`` of ``C``
    #: uses ``min_degree * (1 + h * i / (C - 1))`` (rounded).  Non-zero
    #: values recreate the paper's GA/GB situation — regions with
    #: different average degree, where uniformly seeded independent
    #: walkers are misallocated by the factor ``alpha = d_A / d``
    #: (Section 5.1).
    community_heterogeneity: float = 0.0
    #: Degree-preserving arc swaps applied *within* each community, as
    #: a fraction of its arcs, to install the (dis)assortativity the
    #: paper's crawled graphs exhibit (Table 2's ``r`` column) without
    #: adding cross-community shortcuts.
    assortative_swap_fraction: float = 0.0
    disassortative: bool = False

    def __post_init__(self):
        if self.num_vertices < 10:
            raise ValueError(
                f"num_vertices must be >= 10, got {self.num_vertices}"
            )
        dust_total = self.dust_components * self.dust_size
        if dust_total >= self.num_vertices:
            raise ValueError(
                f"dust ({dust_total} vertices) must be smaller than the"
                f" graph ({self.num_vertices})"
            )
        if not 0.0 <= self.member_fraction <= 1.0:
            raise ValueError(
                "member_fraction must be in [0, 1], got"
                f" {self.member_fraction}"
            )
        if self.num_communities < 1:
            raise ValueError(
                f"num_communities must be >= 1, got {self.num_communities}"
            )
        if self.intercommunity_fraction < 0:
            raise ValueError(
                "intercommunity_fraction must be >= 0, got"
                f" {self.intercommunity_fraction}"
            )


def _split_sizes(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal positive sizes."""
    if parts > total:
        raise ValueError(
            f"cannot split {total} vertices into {parts} communities"
        )
    base = total // parts
    sizes = [base] * parts
    for i in range(total - base * parts):
        sizes[i] += 1
    return sizes


def social_network(
    spec: SocialGraphSpec, rng: RngLike = None
) -> Tuple[DiGraph, VertexLabeling]:
    """Generate the directed graph and its group labeling."""
    generator = ensure_rng(rng)
    dust_total = spec.dust_components * spec.dust_size
    core_size = spec.num_vertices - dust_total

    graph = DiGraph(spec.num_vertices)
    # Partition the core into communities of near-equal size; each is
    # its own directed configuration model, then sparse random arcs
    # connect communities.
    community_sizes = _split_sizes(core_size, spec.num_communities)
    offset = 0
    core_arcs = 0
    for index, community_size in enumerate(community_sizes):
        if spec.num_communities > 1 and spec.community_heterogeneity > 0:
            stretch = 1.0 + (
                spec.community_heterogeneity
                * index
                / (spec.num_communities - 1)
            )
            min_degree = max(1, int(round(spec.min_degree * stretch)))
        else:
            min_degree = spec.min_degree
        max_degree = spec.max_degree
        if max_degree is None:
            # Cap the tail below the community size; sqrt-ish cutoffs
            # keep the erased-configuration-model distortion negligible.
            max_degree = max(min_degree, int(community_size**0.75))
        out_degrees = power_law_degree_sequence(
            community_size,
            spec.out_exponent,
            min_degree=min_degree,
            max_degree=max_degree,
            rng=generator,
        )
        in_degrees = power_law_degree_sequence(
            community_size,
            spec.in_exponent,
            min_degree=min_degree,
            max_degree=max_degree,
            rng=generator,
        )
        community = directed_configuration_model(
            out_degrees, in_degrees, rng=generator
        )
        if spec.assortative_swap_fraction > 0:
            from repro.generators.rewiring import assortative_arc_swaps

            assortative_arc_swaps(
                community,
                int(spec.assortative_swap_fraction * community.num_edges),
                rng=generator,
                disassortative=spec.disassortative,
            )
        for u, v in community.edges():
            graph.add_edge(u + offset, v + offset)
            core_arcs += 1
        offset += community_size

    if spec.num_communities > 1 and spec.intercommunity_fraction > 0:
        bridges = max(
            spec.num_communities - 1,
            int(spec.intercommunity_fraction * core_arcs),
        )
        added = attempts = 0
        boundaries = []
        start = 0
        for community_size in community_sizes:
            boundaries.append((start, start + community_size))
            start += community_size
        while added < bridges and attempts < 100 * bridges:
            attempts += 1
            source_c = generator.randrange(spec.num_communities)
            target_c = generator.randrange(spec.num_communities)
            if source_c == target_c:
                continue
            u = generator.randrange(*boundaries[source_c])
            v = generator.randrange(*boundaries[target_c])
            if graph.add_edge(u, v):
                added += 1

    # Dust: small directed components, each a directed cycle plus a few
    # chords, appended after the core's vertex ids.
    base = core_size
    for _ in range(spec.dust_components):
        size = spec.dust_size
        for i in range(size):
            graph.add_edge(base + i, base + (i + 1) % size)
        chords = max(1, size // 3)
        attempts = 0
        while chords > 0 and attempts < 10 * size:
            u = base + generator.randrange(size)
            v = base + generator.randrange(size)
            attempts += 1
            if u != v and graph.add_edge(u, v):
                chords -= 1
        base += size

    labeling = zipf_groups(
        spec.num_vertices,
        spec.num_groups,
        member_fraction=spec.member_fraction,
        zipf_exponent=spec.zipf_exponent,
        extra_group_prob=spec.extra_group_prob,
        rng=generator,
    )
    return graph, labeling


def neighborhood_groups(
    graph,
    num_groups: int,
    member_fraction: float = 0.21,
    zipf_exponent: float = 1.2,
    rng: RngLike = None,
) -> VertexLabeling:
    """Assign groups by spreading from random seeds over neighborhoods.

    Real social-network groups are topology-correlated: members of one
    group cluster in the same region of the graph.  Each group ``g``
    gets a Zipf-proportional member budget; membership spreads from a
    random seed vertex by BFS until the budget is exhausted.  This is
    what makes group densities hard for a trappable walker — a walker
    stuck in one region sees wildly wrong densities for groups
    concentrated elsewhere (the Figure 14 effect).

    ``graph`` is the *symmetric* graph (BFS needs undirected reach).
    """
    from collections import deque

    if num_groups < 0:
        raise ValueError(f"num_groups must be >= 0, got {num_groups}")
    if not 0.0 <= member_fraction <= 1.0:
        raise ValueError(
            f"member_fraction must be in [0, 1], got {member_fraction}"
        )
    labeling = VertexLabeling()
    if num_groups == 0 or member_fraction == 0.0:
        return labeling
    generator = ensure_rng(rng)
    n = graph.num_vertices
    total_memberships = int(member_fraction * n)
    weights = [(g + 1) ** (-zipf_exponent) for g in range(num_groups)]
    weight_sum = sum(weights)
    for group, weight in enumerate(weights):
        budget = max(1, int(round(total_memberships * weight / weight_sum)))
        seed = generator.randrange(n)
        seen = {seed}
        queue = deque([seed])
        members = 0
        while queue and members < budget:
            vertex = queue.popleft()
            labeling.add(vertex, group)
            members += 1
            neighbors = list(graph.neighbors(vertex))
            generator.shuffle(neighbors)
            for neighbor in neighbors:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        # If the seed's component ran dry (disconnected graph), restart
        # the spread from a fresh random seed.
        attempts = 0
        while members < budget and attempts < 20:
            attempts += 1
            seed = generator.randrange(n)
            if seed in seen:
                continue
            queue = deque([seed])
            seen.add(seed)
            while queue and members < budget:
                vertex = queue.popleft()
                labeling.add(vertex, group)
                members += 1
                neighbors = list(graph.neighbors(vertex))
                generator.shuffle(neighbors)
                for neighbor in neighbors:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
    return labeling


def zipf_groups(
    num_vertices: int,
    num_groups: int,
    member_fraction: float = 0.21,
    zipf_exponent: float = 1.2,
    extra_group_prob: float = 0.4,
    rng: RngLike = None,
) -> VertexLabeling:
    """Assign group labels ``0 .. num_groups-1`` with Zipf popularity.

    Each vertex independently becomes a "member" with probability
    ``member_fraction``; members join ``1 + Geometric(extra_group_prob)``
    groups (with replacement collapsed), each drawn with probability
    proportional to ``(g + 1) ** -zipf_exponent``.
    """
    if num_groups < 0:
        raise ValueError(f"num_groups must be >= 0, got {num_groups}")
    if not 0.0 <= extra_group_prob < 1.0:
        raise ValueError(
            f"extra_group_prob must be in [0, 1), got {extra_group_prob}"
        )
    labeling = VertexLabeling()
    if num_groups == 0 or member_fraction == 0.0:
        return labeling
    generator = ensure_rng(rng)
    popularity = AliasTable(
        [(g + 1) ** (-zipf_exponent) for g in range(num_groups)]
    )
    for vertex in range(num_vertices):
        if generator.random() >= member_fraction:
            continue
        memberships = 1
        while generator.random() < extra_group_prob:
            memberships += 1
        for _ in range(memberships):
            labeling.add(vertex, popularity.sample(generator))
    return labeling
