"""Degree-preserving rewiring toward a target degree correlation.

The paper's social graphs have non-trivial assortativity (Table 2:
Flickr r=0.007, LiveJournal r=0.07, Internet RLT r=0.17, YouTube
r=-0.03).  Plain configuration models are uncorrelated (r ~ 0), which
makes relative error metrics on ``r`` degenerate.  These rewiring
passes install correlation without touching the degree sequences —
the Xulvi-Brunet–Sokolov scheme and its directed analogue.

Each step picks two random edges and re-pairs their endpoints so that
high-degree attaches to high-degree (assortative) or to low-degree
(disassortative); re-pairings that would create self-loops or parallel
edges are skipped.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def assortative_rewire(
    graph: Graph,
    steps: int,
    rng: RngLike = None,
    disassortative: bool = False,
) -> int:
    """Rewire an undirected graph toward (dis)assortativity in place.

    Performs up to ``steps`` double-edge swaps; each swap removes two
    edges ``{a, b}``, ``{c, d}`` and reconnects the four endpoints
    sorted by degree — highest with second-highest (assortative) or
    highest with lowest (disassortative).  Degree sequence is
    invariant.  Returns the number of swaps actually applied.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if graph.num_edges < 2:
        return 0
    generator = ensure_rng(rng)
    edges = list(graph.edges())
    applied = 0
    for _ in range(steps):
        i = generator.randrange(len(edges))
        j = generator.randrange(len(edges))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        endpoints = [a, b, c, d]
        if len(set(endpoints)) < 4:
            continue
        endpoints.sort(key=graph.degree, reverse=True)
        if disassortative:
            pairs = [
                (endpoints[0], endpoints[3]),
                (endpoints[1], endpoints[2]),
            ]
        else:
            pairs = [
                (endpoints[0], endpoints[1]),
                (endpoints[2], endpoints[3]),
            ]
        new_first, new_second = pairs
        if {tuple(sorted(new_first)), tuple(sorted(new_second))} == {
            tuple(sorted((a, b))),
            tuple(sorted((c, d))),
        }:
            continue
        if graph.has_edge(*new_first) or graph.has_edge(*new_second):
            continue
        graph.remove_edge(a, b)
        graph.remove_edge(c, d)
        graph.add_edge(*new_first)
        graph.add_edge(*new_second)
        edges[i] = new_first
        edges[j] = new_second
        applied += 1
    return applied


def assortative_arc_swaps(
    digraph: DiGraph,
    steps: int,
    rng: RngLike = None,
    disassortative: bool = False,
) -> int:
    """Directed analogue: swap arc *targets* to correlate the source's
    out-degree with the target's in-degree.

    A step picks arcs ``(a, b)`` and ``(c, d)`` and considers the swap
    to ``(a, d)``, ``(c, b)``; it is applied when it moves the product
    sum ``outdeg(src) * indeg(dst)`` in the requested direction.  Both
    the out-degree and in-degree sequences are invariant.  Returns the
    number of swaps applied.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if digraph.num_edges < 2:
        return 0
    generator = ensure_rng(rng)
    arcs = list(digraph.edges())
    applied = 0
    for _ in range(steps):
        i = generator.randrange(len(arcs))
        j = generator.randrange(len(arcs))
        if i == j:
            continue
        a, b = arcs[i]
        c, d = arcs[j]
        if a == d or c == b or b == d or a == c:
            continue
        current = (
            digraph.out_degree(a) * digraph.in_degree(b)
            + digraph.out_degree(c) * digraph.in_degree(d)
        )
        swapped = (
            digraph.out_degree(a) * digraph.in_degree(d)
            + digraph.out_degree(c) * digraph.in_degree(b)
        )
        improves = swapped < current if disassortative else swapped > current
        if not improves:
            continue
        if digraph.has_edge(a, d) or digraph.has_edge(c, b):
            continue
        digraph.remove_edge(a, b)
        digraph.remove_edge(c, d)
        digraph.add_edge(a, d)
        digraph.add_edge(c, b)
        arcs[i] = (a, d)
        arcs[j] = (c, b)
        applied += 1
    return applied
