"""Deterministic classic graphs, mostly used as test fixtures."""

from __future__ import annotations

from repro.graph.graph import Graph


def path_graph(num_vertices: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    graph = Graph(num_vertices)
    for v in range(num_vertices - 1):
        graph.add_edge(v, v + 1)
    return graph


def cycle_graph(num_vertices: int) -> Graph:
    """Cycle on ``num_vertices`` vertices (requires n >= 3)."""
    if num_vertices < 3:
        raise ValueError(f"a cycle needs >= 3 vertices, got {num_vertices}")
    graph = path_graph(num_vertices)
    graph.add_edge(num_vertices - 1, 0)
    return graph


def star_graph(num_leaves: int) -> Graph:
    """Star: center 0 connected to leaves ``1 .. num_leaves``."""
    if num_leaves < 1:
        raise ValueError(f"a star needs >= 1 leaf, got {num_leaves}")
    graph = Graph(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(num_vertices: int) -> Graph:
    """Clique on ``num_vertices`` vertices."""
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            graph.add_edge(u, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` 2-D lattice; vertex ``(r, c)`` has id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs positive dimensions, got {rows}x{cols}")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph
