"""Configuration-model graphs and power-law degree sequences.

The crawled social graphs in the paper have heavy-tailed degree
distributions.  Their stand-ins are built from explicit degree
sequences (discrete power laws with exponential cutoff options) wired
up with the configuration model; self-loops and parallel edges are
dropped, which perturbs the realized sequence only slightly at the
sizes used here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def power_law_degree_sequence(
    num_vertices: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: RngLike = None,
) -> List[int]:
    """Sample i.i.d. degrees from a discrete power law ``P(k) ~ k^-a``.

    Degrees live on ``[min_degree, max_degree]`` (default cutoff is
    ``sqrt``-ish: ``num_vertices - 1``).  Sampling uses the inverse-CDF
    over the truncated support, computed once.
    """
    if num_vertices < 1:
        raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    if min_degree < 1:
        raise ValueError(f"min_degree must be >= 1, got {min_degree}")
    if max_degree is None:
        max_degree = num_vertices - 1
    if max_degree < min_degree:
        raise ValueError(
            f"max_degree {max_degree} below min_degree {min_degree}"
        )
    generator = ensure_rng(rng)
    support = list(range(min_degree, max_degree + 1))
    weights = [k ** (-exponent) for k in support]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    degrees = []
    for _ in range(num_vertices):
        u = generator.random()
        # Binary search the CDF.
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        degrees.append(support[lo])
    return degrees


def _even_sum(degrees: List[int]) -> List[int]:
    """Bump one degree so the sequence sums to an even number."""
    if sum(degrees) % 2 == 1:
        degrees = list(degrees)
        degrees[0] += 1
    return degrees


def configuration_model(
    degrees: Sequence[int], rng: RngLike = None
) -> Graph:
    """Wire an undirected graph with (approximately) the given degrees.

    Stubs are paired uniformly at random; self-loops and duplicate
    edges are discarded (the "erased" configuration model), so realized
    degrees can be slightly below the requested ones.
    """
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    degree_list = _even_sum(list(degrees))
    generator = ensure_rng(rng)
    stubs: List[int] = []
    for vertex, degree in enumerate(degree_list):
        stubs.extend([vertex] * degree)
    generator.shuffle(stubs)
    graph = Graph(len(degree_list))
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph


def directed_configuration_model(
    out_degrees: Sequence[int],
    in_degrees: Sequence[int],
    rng: RngLike = None,
) -> DiGraph:
    """Wire a directed graph matching out/in degree sequences.

    The two sequences are padded (by trimming the longer total) so the
    stub counts match; self-loops and duplicate arcs are erased.
    """
    if len(out_degrees) != len(in_degrees):
        raise ValueError(
            "out_degrees and in_degrees must have the same length"
        )
    if any(d < 0 for d in out_degrees) or any(d < 0 for d in in_degrees):
        raise ValueError("degrees must be non-negative")
    generator = ensure_rng(rng)
    out_stubs: List[int] = []
    in_stubs: List[int] = []
    for vertex, degree in enumerate(out_degrees):
        out_stubs.extend([vertex] * degree)
    for vertex, degree in enumerate(in_degrees):
        in_stubs.extend([vertex] * degree)
    # Trim the longer side uniformly so totals match.
    generator.shuffle(out_stubs)
    generator.shuffle(in_stubs)
    length = min(len(out_stubs), len(in_stubs))
    out_stubs = out_stubs[:length]
    in_stubs = in_stubs[:length]
    graph = DiGraph(len(out_degrees))
    for u, v in zip(out_stubs, in_stubs):
        if u != v:
            graph.add_edge(u, v)
    return graph
