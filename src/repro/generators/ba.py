"""Barabási–Albert preferential attachment [Barabási & Albert 1999].

The paper's ``GAB`` experiment (Sections 6.1–6.2) joins two BA graphs
with average degrees 2 and 10; average degree in BA is about ``2k``
where ``k`` is the number of edges each arriving vertex brings.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.util.rng import RngLike, ensure_rng


def barabasi_albert(num_vertices: int, edges_per_vertex: int, rng: RngLike = None) -> Graph:
    """Grow a BA graph: each new vertex attaches ``edges_per_vertex``
    edges to existing vertices chosen proportionally to degree.

    The seed graph is a star on ``edges_per_vertex + 1`` vertices, so
    the result is always connected and simple.  Preferential attachment
    is implemented with the standard repeated-endpoints list, giving
    O(|E|) expected construction time.
    """
    k = edges_per_vertex
    if k < 1:
        raise ValueError(f"edges_per_vertex must be >= 1, got {k}")
    if num_vertices < k + 1:
        raise ValueError(
            f"need at least edges_per_vertex + 1 = {k + 1} vertices,"
            f" got {num_vertices}"
        )
    generator = ensure_rng(rng)
    graph = Graph(num_vertices)

    # Seed: star centered at vertex 0 over vertices 0..k.
    endpoints = []  # each endpoint appears once per incident edge
    for v in range(1, k + 1):
        graph.add_edge(0, v)
        endpoints.append(0)
        endpoints.append(v)

    for new_vertex in range(k + 1, num_vertices):
        targets = set()
        # Rejection-sample k distinct existing vertices, degree-biased.
        while len(targets) < k:
            targets.add(endpoints[generator.randrange(len(endpoints))])
        for target in targets:
            graph.add_edge(new_vertex, target)
            endpoints.append(new_vertex)
            endpoints.append(target)
    return graph
