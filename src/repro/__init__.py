"""repro — Frontier Sampling and graph-sampling estimation.

A from-scratch reproduction of *"Estimating and Sampling Graphs with
Multidimensional Random Walks"* (Ribeiro & Towsley, IMC 2010).

Quickstart::

    from repro import FrontierSampler, barabasi_albert
    from repro.estimators import degree_ccdf_from_trace

    graph = barabasi_albert(10_000, 3, rng=42)
    trace = FrontierSampler(dimension=64).sample(graph, budget=2_000, rng=1)
    ccdf = degree_ccdf_from_trace(graph, trace)

Subpackages:

- ``repro.graph`` — graph substrate (adjacency lists, components,
  labels, Cartesian powers, I/O);
- ``repro.generators`` — synthetic workloads (BA, ER, configuration
  models, the paper's GAB construction, social-network stand-ins);
- ``repro.sampling`` — FS and all baselines;
- ``repro.estimators`` — density / assortativity / clustering
  estimators from sampled edges;
- ``repro.metrics`` — ground truth and NMSE/CNMSE error metrics;
- ``repro.markov`` — exact chain-level verification of the theory;
- ``repro.analysis`` — closed-form vertex-vs-edge sampling model;
- ``repro.datasets`` — named dataset stand-ins (Table 1);
- ``repro.experiments`` — drivers regenerating every table and figure.
"""

from repro.datasets import load as load_dataset
from repro.generators import (
    barabasi_albert,
    configuration_model,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    join_by_bridge,
    watts_strogatz,
)
from repro.graph import DiGraph, Graph, largest_connected_component
from repro.sampling import (
    DistributedFrontierSampler,
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    RandomEdgeSampler,
    RandomVertexSampler,
    ShardedFrontierSampler,
    ShardedSessionPool,
    SingleRandomWalk,
)

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "DistributedFrontierSampler",
    "FrontierSampler",
    "Graph",
    "MetropolisHastingsWalk",
    "MultipleRandomWalk",
    "RandomEdgeSampler",
    "RandomVertexSampler",
    "ShardedFrontierSampler",
    "ShardedSessionPool",
    "SingleRandomWalk",
    "barabasi_albert",
    "configuration_model",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "join_by_bridge",
    "largest_connected_component",
    "load_dataset",
    "watts_strogatz",
    "__version__",
]
