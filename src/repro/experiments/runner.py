"""Replicated-run primitives (thin wrappers over the experiment engine).

Experiments are Monte Carlo averages over independent runs.  Each run
gets a child RNG derived from the experiment's root seed, so any run
can be reproduced in isolation and adding runs never perturbs earlier
ones.

.. deprecated:: PR 5
    Hand-rolled closure replication is the legacy shape of the
    evaluation layer.  New experiment code should declare an
    :class:`~repro.experiments.engine.ExperimentPlan` and execute it
    with :func:`~repro.experiments.engine.run_plan`, which adds
    resumable one-walk-per-replicate budget sweeps, streaming
    accumulation and multi-process fan-out on top of the same child
    streams.  ``replicate`` and ``replicate_incremental`` remain as
    thin wrappers over the engine's bare primitives
    (:func:`~repro.experiments.engine.map_replicates` /
    :func:`~repro.experiments.engine.map_incremental`) for ad-hoc
    Monte Carlo loops.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.experiments.engine import map_incremental, map_replicates
from repro.sampling.base import Backend

__all__ = ["replicate", "replicate_incremental", "replicate_traces"]

T = TypeVar("T")
S = TypeVar("S")


def replicate(
    run: Callable[[random.Random], T],
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[T]:
    """Execute ``run`` ``runs`` times with independent child RNGs.

    ``backend`` (optional) temporarily sets the process-default
    sampling backend for the duration of the replication.

    Thin wrapper over :func:`repro.experiments.engine.map_replicates`;
    prefer :func:`~repro.experiments.engine.run_plan` for anything
    shaped like a figure/table experiment (it shares these exact child
    streams and adds session reuse plus ``procs`` fan-out).
    """
    return map_replicates(run, runs, root_seed=root_seed, backend=backend)


def replicate_incremental(
    start: Callable[[random.Random], S],
    measure: Callable[[S, float], T],
    budgets: Sequence[float],
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[List[T]]:
    """Replicated *anytime* runs: one resumed session per replication.

    For each of ``runs`` independent child RNGs, ``start(rng)`` opens a
    :class:`~repro.sampling.session.SamplerSession` (or anything with
    ``advance_budget``), which is then advanced through the ascending
    ``budgets`` checkpoints; ``measure(session, budget)`` snapshots
    whatever the experiment records at each one.  This is how
    MSE-versus-budget curves (Section 4.4) are produced from a single
    walk per replicate instead of re-walking every budget point from
    scratch.

    Returns ``result[run][i]`` = the measurement at ``budgets[i]``.

    Thin wrapper over :func:`repro.experiments.engine.map_incremental`;
    prefer :func:`~repro.experiments.engine.run_plan`, which drains
    increments into streaming accumulators and can fan replicates
    across processes.
    """
    return map_incremental(
        start, measure, budgets, runs, root_seed=root_seed, backend=backend
    )


def replicate_traces(
    sampler,
    graph,
    budget: float,
    runs: int,
    root_seed: int = 0,
    procs: int = 1,
    executor: Optional[str] = None,
) -> List:
    """Replicated one-shot traces, optionally fanned out across workers.

    ``procs <= 1`` runs the replication in-process; ``procs > 1``
    dispatches the runs to a worker pool
    (:class:`~repro.sampling.sharded.ShardedSessionPool`) — spawn
    processes sharing the graph through mmap'd read-only CSR buffers,
    or, with ``executor="thread"``/``"auto"``, threads over the
    in-process graph.  All paths run each replicate as
    ``sampler.sample(graph, budget, child_rng(root_seed, index))`` on
    the csr backend with identical stream derivation, so the returned
    traces are bit-identical regardless of ``procs`` and ``executor``
    — parallelism is a deployment knob, never a statistics change.
    """
    from repro.sampling.sharded import ShardedSessionPool

    with ShardedSessionPool(graph, procs=procs, executor=executor) as pool:
        return pool.run(sampler, budget, runs, root_seed=root_seed)
