"""Replicated-run engine.

Experiments are Monte Carlo averages over independent runs.  Each run
gets a child RNG derived from the experiment's root seed, so any run
can be reproduced in isolation and adding runs never perturbs earlier
ones.
"""

from __future__ import annotations

import random
from typing import Callable, List, TypeVar

from repro.util.rng import child_rng

T = TypeVar("T")


def replicate(
    run: Callable[[random.Random], T],
    runs: int,
    root_seed: int = 0,
) -> List[T]:
    """Execute ``run`` ``runs`` times with independent child RNGs."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    return [run(child_rng(root_seed, index)) for index in range(runs)]
