"""Replicated-run engine.

Experiments are Monte Carlo averages over independent runs.  Each run
gets a child RNG derived from the experiment's root seed, so any run
can be reproduced in isolation and adding runs never perturbs earlier
ones.

Runs can be pinned to a sampling backend (``backend="csr"`` routes
every sampler constructed without an explicit backend through the
vectorized CSR engine); the default backend is restored when the
replication finishes, even on error.  On the csr backend the fast path
is end to end: the walk produces an
:class:`~repro.sampling.vectorized.ArrayWalkTrace` and every estimator
in :mod:`repro.estimators` reweights over its int64 step arrays
(via :mod:`repro.estimators._vectorized`) instead of looping Python
tuples — run code does not need to do anything besides pass the trace
along.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.sampling.base import Backend, use_backend
from repro.util.rng import child_rng

__all__ = ["replicate", "replicate_incremental", "replicate_traces"]

T = TypeVar("T")
S = TypeVar("S")


def replicate(
    run: Callable[[random.Random], T],
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[T]:
    """Execute ``run`` ``runs`` times with independent child RNGs.

    ``backend`` (optional) temporarily sets the process-default
    sampling backend for the duration of the replication.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if backend is None:
        return [run(child_rng(root_seed, index)) for index in range(runs)]
    with use_backend(backend):
        return [run(child_rng(root_seed, index)) for index in range(runs)]


def replicate_incremental(
    start: Callable[[random.Random], S],
    measure: Callable[[S, float], T],
    budgets: Sequence[float],
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[List[T]]:
    """Replicated *anytime* runs: one resumed session per replication.

    For each of ``runs`` independent child RNGs, ``start(rng)`` opens a
    :class:`~repro.sampling.session.SamplerSession` (or anything with
    ``advance_budget``), which is then advanced through the ascending
    ``budgets`` checkpoints; ``measure(session, budget)`` snapshots
    whatever the experiment records at each one.  This is how
    MSE-versus-budget curves (Section 4.4) are produced from a single
    walk per replicate instead of re-walking every budget point from
    scratch.

    Returns ``result[run][i]`` = the measurement at ``budgets[i]``.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    checkpoints = [float(b) for b in budgets]
    if not checkpoints:
        raise ValueError("budgets must be non-empty")
    if any(b > a for b, a in zip(checkpoints, checkpoints[1:])):
        raise ValueError(f"budgets must be non-decreasing, got {budgets}")
    context = use_backend(backend) if backend is not None else nullcontext()
    results: List[List[T]] = []
    with context:
        for index in range(runs):
            session = start(child_rng(root_seed, index))
            row: List[T] = []
            for budget in checkpoints:
                session.advance_budget(budget)
                row.append(measure(session, budget))
            results.append(row)
    return results


def replicate_traces(
    sampler,
    graph,
    budget: float,
    runs: int,
    root_seed: int = 0,
    procs: int = 1,
) -> List:
    """Replicated one-shot traces, optionally fanned out across processes.

    ``procs <= 1`` runs the replication in-process; ``procs > 1``
    dispatches the runs to a spawn-safe worker pool
    (:class:`~repro.sampling.sharded.ShardedSessionPool`) sharing the
    graph through mmap'd read-only CSR buffers.  Both paths run each
    replicate as ``sampler.sample(graph, budget, child_rng(root_seed,
    index))`` on the csr backend with identical stream derivation, so
    the returned traces are bit-identical regardless of ``procs`` —
    parallelism is a deployment knob, never a statistics change.
    """
    from repro.sampling.sharded import ShardedSessionPool

    with ShardedSessionPool(graph, procs=procs) as pool:
        return pool.run(sampler, budget, runs, root_seed=root_seed)
