"""Suite report pipeline: ``report.json`` / ``report.md`` / ``report.csv``.

:func:`build_report` turns a :class:`~repro.experiments.suite.SuiteResult`
into one machine-readable document; :func:`write_report` serializes it
three ways:

- ``report.json`` — the full per-scenario x method x budget x
  estimator error statistics, canonically ordered (``sort_keys``) and
  free of timestamps or host facts, so a fixed-seed run is
  *bit-identical* across machines and ``--procs`` values.  This is
  the artifact ``tools/check_suite_drift.py`` diffs against the
  committed baseline.
- ``report.md`` — ranked method-vs-scenario NRMSE tables in the style
  of the paper's Tables 2-4: one table per estimator at the final
  budget, methods ordered by mean error across scenarios, the winner
  of each scenario cell marked.
- ``report.csv`` — one flat row per statistic for spreadsheets and
  ad-hoc plotting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.experiments.suite import SuiteResult, _budget_key

__all__ = [
    "build_report",
    "flatten_report",
    "render_csv",
    "render_markdown",
    "write_report",
]

#: Bump when the report layout changes incompatibly; the drift checker
#: refuses to compare across schema versions.
REPORT_SCHEMA = 1


def build_report(result: SuiteResult) -> Dict[str, Any]:
    """The suite's machine-readable report document."""
    return {
        "schema": REPORT_SCHEMA,
        "suite": result.spec.name,
        "description": result.spec.description,
        "seed": result.spec.seed,
        "scenarios": {
            outcome.scenario.id: outcome.result
            for outcome in result.outcomes
        },
    }


def flatten_report(report: Dict[str, Any]) -> Dict[str, float]:
    """``{scenario/method/B<budget>/<estimator>.<stat>: value}`` over
    every statistic in the report — the comparison domain of the drift
    gate.  Signed statistics (bias) are flattened as magnitudes, so a
    sign flip of equal size is no "improvement"."""
    flat: Dict[str, float] = {}
    for scenario_id, scenario in sorted(report["scenarios"].items()):
        for method, per_budget in sorted(scenario["methods"].items()):
            for budget_key, per_estimator in sorted(per_budget.items()):
                for name, stats in sorted(per_estimator.items()):
                    for stat, value in sorted(stats.items()):
                        key = (
                            f"{scenario_id}/{method}/B{budget_key}"
                            f"/{name}.{stat}"
                        )
                        flat[key] = abs(float(value))
    return flat


def _final_budget_key(scenario: Dict[str, Any]) -> str:
    return _budget_key(scenario["budgets"][-1])


def _estimator_names(report: Dict[str, Any]) -> List[str]:
    names: List[str] = []
    for scenario in report["scenarios"].values():
        for name in scenario["estimators"]:
            if name not in names:
                names.append(name)
    return names


def _methods_for(report: Dict[str, Any]) -> List[str]:
    methods: List[str] = []
    for scenario in report["scenarios"].values():
        for method in scenario["methods"]:
            if method not in methods:
                methods.append(method)
    return sorted(methods)


def render_markdown(report: Dict[str, Any]) -> str:
    """Ranked method-vs-scenario tables, one per estimator."""
    lines = [f"# Suite report: {report['suite']}", ""]
    if report.get("description"):
        lines += [report["description"], ""]
    scenarios = report["scenarios"]
    lines += [
        f"- root seed: {report['seed']}",
        f"- scenarios: {len(scenarios)}",
        "",
        "## Scenarios",
        "",
        "| scenario | family | n | m | avg deg | replicates |"
        " budgets | methods |",
        "|---|---|---:|---:|---:|---:|---|---|",
    ]
    for scenario_id, scenario in sorted(scenarios.items()):
        graph = scenario["graph"]
        budgets = ", ".join(_budget_key(b) for b in scenario["budgets"])
        methods = ", ".join(sorted(scenario["methods"]))
        lines.append(
            f"| {scenario_id} | {graph['family']}"
            f" | {graph['num_vertices']} | {graph['num_edges']}"
            f" | {graph['average_degree']:.2f}"
            f" | {scenario['replicates']} | {budgets} | {methods} |"
        )
    lines.append("")

    for name in _estimator_names(report):
        methods = _methods_for(report)
        # Mean NRMSE per method across the scenarios that scored it at
        # their final budget: the ranking column of the paper's tables.
        per_method: Dict[str, List[float]] = {m: [] for m in methods}
        cells: Dict[str, Dict[str, float]] = {}
        for scenario_id, scenario in sorted(scenarios.items()):
            if name not in scenario["estimators"]:
                continue
            budget_key = _final_budget_key(scenario)
            row: Dict[str, float] = {}
            for method, per_budget in scenario["methods"].items():
                value = per_budget[budget_key][name]["nrmse"]
                row[method] = value
                per_method[method].append(value)
            cells[scenario_id] = row
        if not cells:
            continue
        ranked = sorted(
            (m for m in methods if per_method[m]),
            key=lambda m: sum(per_method[m]) / len(per_method[m]),
        )
        lines += [
            f"## {name} — NRMSE at final budget (methods ranked by"
            " mean across scenarios; per-scenario winner in bold)",
            "",
            "| scenario | " + " | ".join(ranked) + " |",
            "|---|" + "---:|" * len(ranked),
        ]
        for scenario_id, row in sorted(cells.items()):
            best = min(row, key=row.get)
            formatted = [
                (
                    f"**{row[m]:.4f}**"
                    if m == best
                    else f"{row[m]:.4f}"
                )
                if m in row
                else "-"
                for m in ranked
            ]
            lines.append(
                f"| {scenario_id} | " + " | ".join(formatted) + " |"
            )
        means = [
            f"{sum(per_method[m]) / len(per_method[m]):.4f}"
            for m in ranked
        ]
        lines.append("| **mean** | " + " | ".join(means) + " |")
        lines.append("")
    return "\n".join(lines) + "\n"


def render_csv(report: Dict[str, Any]) -> str:
    """One row per statistic: the full grid, spreadsheet-ready."""
    lines = [
        "suite,scenario,family,size,method,budget,estimator,stat,value"
    ]
    suite = report["suite"]
    for scenario_id, scenario in sorted(report["scenarios"].items()):
        graph = scenario["graph"]
        for method, per_budget in sorted(scenario["methods"].items()):
            for budget_key, per_estimator in sorted(per_budget.items()):
                for name, stats in sorted(per_estimator.items()):
                    for stat, value in sorted(stats.items()):
                        lines.append(
                            f"{suite},{scenario_id},{graph['family']},"
                            f"{graph['size']},{method},{budget_key},"
                            f"{name},{stat},{value!r}"
                        )
    return "\n".join(lines) + "\n"


def write_report(result: SuiteResult, out_dir) -> Dict[str, Path]:
    """Serialize the suite's report artifacts into ``out_dir``.

    Returns ``{"json": ..., "md": ..., "csv": ...}`` paths.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    report = build_report(result)
    paths = {
        "json": out / "report.json",
        "md": out / "report.md",
        "csv": out / "report.csv",
    }
    paths["json"].write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    paths["md"].write_text(render_markdown(report), encoding="utf-8")
    paths["csv"].write_text(render_csv(report), encoding="utf-8")
    return paths
