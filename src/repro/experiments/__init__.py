"""Experiment harness and the per-figure/table reproduction drivers.

Every evaluation artifact of the paper has a driver here:

- ``figures.fig1`` … ``figures.fig14`` (Figure 2 is an illustration of
  the proof, not an experiment) and ``tables.table1`` … ``tables.table4``.
- Each driver returns a structured result object with a ``render()``
  method producing the same rows/series the paper prints, so the
  benchmark harness and the CLI share one code path.

All drivers execute through the replication engine
(:mod:`repro.experiments.engine`): one resumable session per
replicate, streaming accumulation at every budget checkpoint, and
optional multi-process fan-out via each driver's ``procs`` parameter
(bit-identical results for every ``procs`` value at a fixed seed).
Whole workload suites are declared as YAML and compiled onto the same
engine by :mod:`repro.experiments.suite`, with the report pipeline in
:mod:`repro.experiments.report` (``repro suite run`` on the CLI).

The drivers accept ``scale`` (dataset size multiplier) and ``runs``
(replications) so the full evaluation stays laptop-sized; EXPERIMENTS.md
records the paper-vs-measured comparison produced at the default scale.
"""

from repro.experiments.degree_errors import (
    BudgetSweepResult,
    DegreeErrorResult,
    degree_error_budget_sweep,
    degree_error_experiment,
)
from repro.experiments.engine import (
    ExperimentPlan,
    PlanResult,
    TraceCollector,
    default_budget_schedule,
    run_plan,
)
from repro.experiments.runner import (
    replicate,
    replicate_incremental,
    replicate_traces,
)
from repro.experiments.samplepaths import SamplePathResult, sample_paths
from repro.experiments.suite import (
    Scenario,
    SuiteResult,
    SuiteSpec,
    SuiteSpecError,
    load_suite,
    run_suite,
)

__all__ = [
    "BudgetSweepResult",
    "DegreeErrorResult",
    "ExperimentPlan",
    "PlanResult",
    "SamplePathResult",
    "Scenario",
    "SuiteResult",
    "SuiteSpec",
    "SuiteSpecError",
    "TraceCollector",
    "default_budget_schedule",
    "degree_error_budget_sweep",
    "degree_error_experiment",
    "load_suite",
    "replicate",
    "replicate_incremental",
    "replicate_traces",
    "run_plan",
    "run_suite",
    "sample_paths",
]
