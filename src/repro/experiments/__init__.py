"""Experiment harness and the per-figure/table reproduction drivers.

Every evaluation artifact of the paper has a driver here:

- ``figures.fig1`` … ``figures.fig14`` (Figure 2 is an illustration of
  the proof, not an experiment) and ``tables.table1`` … ``tables.table4``.
- Each driver returns a structured result object with a ``render()``
  method producing the same rows/series the paper prints, so the
  benchmark harness and the CLI share one code path.

The drivers accept ``scale`` (dataset size multiplier) and ``runs``
(replications) so the full evaluation stays laptop-sized; EXPERIMENTS.md
records the paper-vs-measured comparison produced at the default scale.
"""

from repro.experiments.degree_errors import (
    DegreeErrorResult,
    degree_error_experiment,
)
from repro.experiments.runner import replicate, replicate_traces
from repro.experiments.samplepaths import SamplePathResult, sample_paths

__all__ = [
    "DegreeErrorResult",
    "SamplePathResult",
    "degree_error_experiment",
    "replicate",
    "replicate_traces",
    "sample_paths",
]
