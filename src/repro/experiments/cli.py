"""Command-line entry point: regenerate any table or figure.

    repro-experiments --list
    repro-experiments fig5 --scale 0.2 --runs 40
    repro-experiments table2 --runs 50
    repro-experiments all --scale 0.1 --runs 20
    repro-experiments fig5 --backend csr   # vectorized CSR fast path
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import ablations, figures, tables
from repro.sampling.base import use_backend

#: experiment id -> (driver, accepts_runs)
_EXPERIMENTS: Dict[str, Callable] = {
    "ablation-dimension": ablations.dimension_sweep,
    "ablation-selection": ablations.walker_selection_ablation,
    "ablation-metropolis": ablations.metropolis_vs_rw,
    "ablation-burnin": ablations.burn_in_ablation,
    "ablation-distributed": ablations.fs_vs_distributed,
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig1": figures.fig1,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
}

#: drivers that do not take a ``runs`` argument (descriptive artifacts)
_NO_RUNS = {"table1", "fig3", "fig6", "fig7", "fig9"}
#: drivers that do not take a ``scale`` argument
_NO_SCALE = {"table4"}  # table4 sizes its own miniature graphs


def _run_one(name: str, scale: float, runs: int) -> str:
    driver = _EXPERIMENTS[name]
    kwargs = {}
    if name not in _NO_SCALE:
        kwargs["scale"] = scale
    if name not in _NO_RUNS:
        if name == "table4":
            kwargs["mc_runs"] = max(1000, runs * 100)
        else:
            kwargs["runs"] = runs
    result = driver(**kwargs)
    return result.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on"
        " synthetic stand-in datasets.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig1..fig14, table1..table4) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size multiplier (default 1.0 ~= 10^4 vertices)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=100,
        help="Monte Carlo replications (default 100)",
    )
    parser.add_argument(
        "--backend",
        choices=("list", "csr"),
        default="list",
        help="sampling backend: 'list' (interpreted, paper-literal"
        " draw protocol) or 'csr' (vectorized fast path; default list)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    if not args.experiment:
        parser.error("provide an experiment id or --list")

    names = (
        list(_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    with use_backend(args.backend):
        for name in names:
            if name not in _EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; use --list",
                    file=sys.stderr,
                )
                return 2
            started = time.time()
            print(_run_one(name, args.scale, args.runs))
            print(f"  [{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
