"""Command-line entry point: regenerate any table or figure, or run a
checkpointable sampling session.

    repro-experiments --list
    repro-experiments fig5 --scale 0.2 --runs 40
    repro-experiments table2 --runs 50
    repro-experiments all --scale 0.1 --runs 20
    repro-experiments fig5 --backend csr   # vectorized CSR fast path

The ``sample`` subcommand drives one incremental
:class:`~repro.sampling.session.SamplerSession` with streaming
estimates, and can checkpoint/resume it across invocations:

    repro-experiments sample --ba 20000 3 --sampler fs --dimension 64 \\
        --budget 5000 --backend csr --checkpoint run.ckpt
    repro-experiments sample --ba 20000 3 --budget 20000 \\
        --resume run.ckpt --checkpoint run.ckpt

The ``suite`` subcommand compiles a YAML scenario suite
(:mod:`repro.experiments.suite`) to experiment plans, runs the grid,
and writes ``report.json`` / ``report.md`` / ``report.csv``:

    repro suite run suites/smoke.yaml --procs 2 --out /tmp/smoke
    repro suite run suites/smoke.yaml --procs 2 --out /tmp/smoke --resume
    repro suite validate suites/paper.yaml

(``repro`` and ``repro-experiments`` are the same entry point.)
"""

from __future__ import annotations

import argparse
import pickle
import sys
import time
from typing import Callable, Dict

from repro.experiments import ablations, figures, tables
from repro.sampling.base import use_backend

#: experiment id -> (driver, accepts_runs)
_EXPERIMENTS: Dict[str, Callable] = {
    "ablation-dimension": ablations.dimension_sweep,
    "ablation-selection": ablations.walker_selection_ablation,
    "ablation-metropolis": ablations.metropolis_vs_rw,
    "ablation-burnin": ablations.burn_in_ablation,
    "ablation-distributed": ablations.fs_vs_distributed,
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig1": figures.fig1,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
}

#: drivers that do not take a ``runs`` argument (descriptive artifacts)
_NO_RUNS = {"table1", "fig3", "fig6", "fig7", "fig9"}
#: drivers that do not take a ``scale`` argument
_NO_SCALE = {"table4"}  # table4 sizes its own miniature graphs
#: descriptive drivers with nothing to replicate, hence no ``--procs``
_NO_PROCS = {"table1", "fig3", "fig7"}


def _run_one(
    name: str, scale: float, runs: int, procs=None, executor=None
) -> str:
    driver = _EXPERIMENTS[name]
    kwargs = {}
    if name not in _NO_SCALE:
        kwargs["scale"] = scale
    if name not in _NO_RUNS:
        if name == "table4":
            kwargs["mc_runs"] = max(1000, runs * 100)
        else:
            kwargs["runs"] = runs
    if procs is not None and name not in _NO_PROCS:
        kwargs["procs"] = procs
        if executor is not None:
            kwargs["executor"] = executor
    result = driver(**kwargs)
    return result.render()


def _build_sampler(args):
    from repro.sampling import (
        DistributedFrontierSampler,
        FrontierSampler,
        MetropolisHastingsWalk,
        MultipleRandomWalk,
        ShardedFrontierSampler,
        SingleRandomWalk,
    )

    if args.procs is not None and args.procs > 1:
        if args.sampler != "fs":
            raise SystemExit(
                "--procs > 1 shards the frontier across processes and"
                " therefore requires --sampler fs"
            )
        return ShardedFrontierSampler(
            args.dimension, procs=args.procs, executor=args.executor
        )
    if args.sampler == "fs":
        return FrontierSampler(args.dimension, backend=args.backend)
    if args.sampler == "srw":
        return SingleRandomWalk(backend=args.backend)
    if args.sampler == "mrw":
        return MetropolisHastingsWalk(backend=args.backend)
    if args.sampler == "multiplerw":
        return MultipleRandomWalk(args.dimension, backend=args.backend)
    if args.sampler == "dfs":
        if args.backend == "csr":
            raise SystemExit("sampler 'dfs' runs on the list backend only")
        return DistributedFrontierSampler(args.dimension)
    raise SystemExit(f"unknown sampler {args.sampler!r}")


def _load_graph(args):
    from repro.generators.ba import barabasi_albert
    from repro.graph.io import read_edge_list

    if args.graph is not None:
        return read_edge_list(args.graph)
    n, m = args.ba
    return barabasi_albert(n, m, rng=args.graph_seed)


def _sample_main(argv) -> int:
    """``repro-experiments sample``: one resumable sampling session."""
    from repro.estimators.streaming import (
        StreamingAverageDegree,
        StreamingDegreePMF,
        StreamingGraphSize,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments sample",
        description="Run (or resume) one incremental sampling session"
        " with streaming estimates, checkpointing walker state to disk.",
    )
    parser.add_argument(
        "--graph", help="edge-list file to sample (u v per line)"
    )
    parser.add_argument(
        "--ba",
        nargs=2,
        type=int,
        default=(10_000, 3),
        metavar=("N", "M"),
        help="generate a Barabasi-Albert stand-in graph (default 10000 3)",
    )
    parser.add_argument(
        "--graph-seed",
        type=int,
        default=42,
        help="seed for the generated graph (default 42)",
    )
    parser.add_argument(
        "--sampler",
        choices=("fs", "srw", "mrw", "multiplerw", "dfs"),
        default="fs",
        help="sampling method (default fs; ignored with --resume)",
    )
    parser.add_argument(
        "--dimension",
        type=int,
        default=64,
        help="walkers for fs/multiplerw/dfs (default 64)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        required=True,
        help="total budget (vertex-query units) to reach, including"
        " anything already spent by a resumed session",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="RNG seed (default 0)"
    )
    parser.add_argument(
        "--backend",
        choices=("list", "csr"),
        default="list",
        help="sampling backend (default list; ignored with --resume)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="shard the FS frontier across this many worker processes"
        " (fs only; workers share the graph via mmap'd CSR buffers;"
        " default 1 = single-process; with --resume, re-pins the"
        " checkpointed session's worker count — the merged trace is"
        " shard-count-invariant, so this never changes results)",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "thread", "spawn"),
        default=None,
        help="how --procs > 1 fans out: 'spawn' (default) uses worker"
        " processes over mmap'd CSR buffers, 'thread' a thread pool"
        " over the in-process graph (native kernels release the GIL),"
        " 'auto' picks threads exactly when they can scale; traces"
        " are bit-identical either way (with --resume, re-pins the"
        " checkpointed session's executor)",
    )
    parser.add_argument(
        "--chunk",
        type=float,
        default=10_000,
        help="budget units to advance between streaming-estimate"
        " updates (default 10000)",
    )
    parser.add_argument(
        "--checkpoint",
        help="write walker + estimator state to this file when done",
    )
    parser.add_argument(
        "--resume",
        help="resume a session from this checkpoint file instead of"
        " starting fresh",
    )
    args = parser.parse_args(argv)
    if args.chunk <= 0:
        parser.error("--chunk must be > 0")
    if args.procs is not None and args.procs < 1:
        parser.error("--procs must be >= 1")
    if (
        args.executor is not None
        and not args.resume
        and (args.procs is None or args.procs < 2)
    ):
        parser.error("--executor requires --procs >= 2 (or --resume)")

    graph = _load_graph(args)
    print(
        f"graph: {graph.num_vertices:,} vertices,"
        f" {graph.num_edges:,} edges"
    )

    if args.resume:
        from repro.sampling.sharded import (
            ShardedFrontierSession,
            resolve_executor,
        )

        with open(args.resume, "rb") as handle:
            payload = pickle.load(handle)
        session = payload["session"]
        session.attach(graph)
        if args.procs is not None:
            # Shard count is a deployment knob, not a statistics knob:
            # the merged trace is shard-count-invariant, so re-pinning
            # it on resume (e.g. on a machine with different cores) is
            # always safe.
            if isinstance(session, ShardedFrontierSession):
                session.procs = args.procs
            elif args.procs > 1:
                raise SystemExit(
                    f"--procs {args.procs} requires a sharded FS"
                    " checkpoint; this one holds a"
                    f" {session.method} session"
                )
        if args.executor is not None:
            # Same invariance: the executor moves the work, never the
            # draws, so re-pinning it on resume is always safe.
            if isinstance(session, ShardedFrontierSession):
                session.executor = resolve_executor(args.executor)
            else:
                raise SystemExit(
                    "--executor requires a sharded FS checkpoint; this"
                    f" one holds a {session.method} session"
                )
        accumulators = payload["accumulators"]
        for accumulator in accumulators.values():
            accumulator.attach(graph)
        print(
            f"resumed {session.method} session from {args.resume}:"
            f" {session.steps_taken:,} steps taken,"
            f" {session.spent():,.0f} budget spent"
        )
    else:
        sampler = _build_sampler(args)
        session = sampler.start(graph, rng=args.seed)
        accumulators = {
            "degree_pmf": StreamingDegreePMF(graph),
            "average_degree": StreamingAverageDegree(graph),
            "size": StreamingGraphSize(graph),
        }
        print(f"started {session.method} session (seed {args.seed})")

    try:
        while session.spent() < args.budget:
            before = session.spent()
            session.advance_budget(min(args.budget, before + args.chunk))
            increment = session.take_trace()
            for accumulator in accumulators.values():
                accumulator.update(increment)
            if session.spent() == before:
                break  # budget change too small to buy another step
            try:
                average = accumulators["average_degree"].estimate()
                estimate = f"avg degree ~ {average:.3f}"
            except ValueError:
                estimate = "no samples yet"
            print(
                f"  spent {session.spent():>12,.0f}"
                f"  steps {session.steps_taken:>10,}  {estimate}"
            )

        print(
            f"session done: {session.steps_taken:,} steps,"
            f" {session.spent():,.0f} of {args.budget:,.0f} budget spent"
        )
        try:
            size = accumulators["size"]
            print(
                f"estimates: |V| ~ {size.num_vertices():,.0f}"
                f" (true {graph.num_vertices:,}),"
                f" |E| ~ {size.num_edges():,.0f} (true {graph.num_edges:,})"
            )
        except ValueError as error:
            print(f"size estimate unavailable: {error}")

        if args.checkpoint:
            with open(args.checkpoint, "wb") as handle:
                pickle.dump(
                    {"session": session, "accumulators": accumulators},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            print(f"checkpoint written to {args.checkpoint}")
    finally:
        closer = getattr(session, "close", None)
        if closer is not None:  # sharded sessions own a pool + temp spill
            closer()
    return 0


def _suite_main(argv) -> int:
    """``repro suite``: run or validate a YAML scenario suite."""
    from repro.experiments.report import write_report
    from repro.experiments.suite import (
        SuiteSpecError,
        load_suite,
        run_suite,
    )

    parser = argparse.ArgumentParser(
        prog="repro suite",
        description="Compile a YAML scenario suite to experiment plans"
        " and run the whole grid (or just validate the spec).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run_parser = commands.add_parser(
        "run", help="execute every scenario and write the suite report"
    )
    run_parser.add_argument("spec", help="suite spec YAML file")
    run_parser.add_argument(
        "--procs",
        type=int,
        default=1,
        help="worker processes per scenario (engine fan-out; results"
        " are bit-identical for every value >= 1; default 1)",
    )
    run_parser.add_argument(
        "--executor",
        choices=("auto", "thread", "spawn"),
        default=None,
        help="how --procs > 1 fans out: 'spawn' processes (default),"
        " 'thread' a thread pool over the in-process graph, or 'auto'"
        " (threads exactly when they can scale); results are"
        " bit-identical either way",
    )
    run_parser.add_argument(
        "--out",
        required=True,
        help="output directory for report.json/report.md/report.csv"
        " and the per-scenario checkpoints",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios whose checkpoint under <out>/scenarios/"
        " matches the current spec (stale checkpoints re-run)",
    )
    validate_parser = commands.add_parser(
        "validate", help="parse + validate the spec and list scenarios"
    )
    validate_parser.add_argument("spec", help="suite spec YAML file")
    args = parser.parse_args(argv)

    try:
        spec = load_suite(args.spec)
    except SuiteSpecError as error:
        print(f"invalid suite spec: {error}", file=sys.stderr)
        return 2

    if args.command == "validate":
        print(f"suite {spec.name!r}: {len(spec.scenarios)} scenarios ok")
        for scenario in spec.scenarios:
            print(
                f"  {scenario.id}: {scenario.family} n={scenario.size}"
                f" methods={','.join(sorted(scenario.samplers))}"
                f" budgets={[int(b) for b in scenario.budgets]}"
                f" replicates={scenario.replicates} seed={scenario.seed}"
            )
        return 0

    if args.procs < 1:
        parser.error("--procs must be >= 1")
    started = time.time()
    executor_note = (
        f" executor={args.executor}" if args.executor is not None else ""
    )
    print(
        f"suite {spec.name!r}: {len(spec.scenarios)} scenarios,"
        f" procs={args.procs}{executor_note}"
    )
    result = run_suite(
        spec,
        procs=args.procs,
        executor=args.executor,
        out_dir=args.out,
        resume=args.resume,
        log=print,
    )
    paths = write_report(result, args.out)
    resumed = result.resumed_ids()
    if resumed:
        print(f"  resumed {len(resumed)} scenario(s): {', '.join(resumed)}")
    print(
        f"suite {spec.name!r} done in {time.time() - started:.1f}s:"
        f" {paths['json']}  {paths['md']}  {paths['csv']}"
    )
    return 0


#: Subcommands are dispatched before the experiment parser; keep their
#: names out of the experiment registry or they would be unreachable.
assert "sample" not in _EXPERIMENTS and "suite" not in _EXPERIMENTS


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sample":
        return _sample_main(argv[1:])
    if argv and argv[0] == "suite":
        return _suite_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on"
        " synthetic stand-in datasets.",
        epilog="The 'sample' subcommand runs one checkpointable"
        " sampling session instead (repro-experiments sample --help);"
        " the 'suite' subcommand runs a YAML-declared scenario suite"
        " (repro-experiments suite --help)",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig1..fig14, table1..table4) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size multiplier (default 1.0 ~= 10^4 vertices)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=100,
        help="Monte Carlo replications (default 100)",
    )
    parser.add_argument(
        "--backend",
        choices=("list", "csr"),
        default="list",
        help="sampling backend: 'list' (interpreted, paper-literal"
        " draw protocol) or 'csr' (vectorized fast path; default list)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="fan each experiment's replicates across this many worker"
        " processes (spawn; graph shared via mmap'd CSR buffers)."
        " Results are bit-identical for every --procs value at a fixed"
        " seed; pooled sessions run on the csr draw protocol, so"
        " compare against --backend csr runs, not list-backend runs",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "thread", "spawn"),
        default=None,
        help="how --procs fans out: 'spawn' worker processes (default),"
        " 'thread' a thread pool over the in-process graph (no spill,"
        " no pickling; needs the native kernels to scale), or 'auto'"
        " (threads exactly when they can scale); results are"
        " bit-identical for every choice",
    )
    args = parser.parse_args(argv)
    if args.procs is not None and args.procs < 1:
        parser.error("--procs must be >= 1")
    if args.executor is not None and args.procs is None:
        parser.error("--executor requires --procs")

    if args.list:
        for name in _EXPERIMENTS:
            print(name)
        print("sample  (subcommand: repro-experiments sample --help)")
        print("suite   (subcommand: repro-experiments suite --help)")
        return 0
    if not args.experiment:
        parser.error("provide an experiment id or --list")

    names = (
        list(_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    with use_backend(args.backend):
        for name in names:
            if name not in _EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; use --list",
                    file=sys.stderr,
                )
                return 2
            started = time.time()
            print(
                _run_one(
                    name, args.scale, args.runs, args.procs, args.executor
                )
            )
            print(f"  [{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
