"""Drivers for Figures 1 and 3–14 of the paper.

Figure 2 is a proof illustration (the m=2 Markov chain), not an
experiment; its content is verified exactly by the Lemma 5.1 tests in
``tests/test_markov_frontier_chain.py``.

Every driver takes ``scale`` (dataset size multiplier) and ``runs``
and returns a result object with ``render()``.  Defaults reproduce the
paper's qualitative shapes in minutes; benchmarks call the same
drivers at smaller scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro.analysis.vertex_vs_edge import analytic_nmse_curves
from repro.datasets.registry import Dataset, flickr_like, gab, livejournal_like
from repro.estimators.streaming import StreamingVertexDensity
from repro.experiments.degree_errors import (
    BudgetSweepResult,
    DegreeErrorResult,
    degree_error_budget_sweep,
    degree_error_experiment,
)
from repro.experiments.engine import (
    ExperimentPlan,
    default_budget_schedule,
    run_plan,
)
from repro.experiments.render import format_float, render_table
from repro.experiments.samplepaths import SamplePathResult, sample_paths
from repro.graph.components import largest_connected_component
from repro.metrics.errors import nmse
from repro.metrics.exact import (
    true_degree_ccdf,
    true_degree_pmf,
    true_group_densities,
)
from repro.sampling.base import Backend, Sampler
from repro.sampling.frontier import FrontierSampler
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk

DegreeOf = Callable[[int], int]

#: ``budgets`` accepted by the budget-style figures (4, 8, 12):
#: ``None`` reproduces the paper's single-budget error figure, an int
#: asks for that many :func:`default_budget_schedule` checkpoints, a
#: sequence pins the checkpoints explicitly.  Either sweep form walks
#: each replicate ONCE (one resumed session to the final budget).
BudgetsArg = Union[None, int, Sequence[float]]


def _budget_schedule(budgets: BudgetsArg, final_budget: float):
    if budgets is None:
        return None
    if isinstance(budgets, int):
        return default_budget_schedule(final_budget, budgets)
    return list(budgets)


def _lcc_with_labels(
    dataset: Dataset, degree_of: DegreeOf
) -> tuple:
    """LCC of a dataset plus the degree label remapped to LCC ids."""
    lcc, old_to_new = largest_connected_component(dataset.graph)
    new_to_old = {new: old for old, new in old_to_new.items()}

    def lcc_degree_of(v: int) -> int:
        return degree_of(new_to_old[v])

    return lcc, lcc_degree_of


# ----------------------------------------------------------------------
# Figure 1 — SingleRW vs MultipleRW(10), in-degree CNMSE, B = |V|/10
# ----------------------------------------------------------------------
def fig1(
    scale: float = 1.0,
    runs: int = 100,
    root_seed: int = 101,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """SingleRW beats uniformly seeded MultipleRW — the motivating
    surprise of Section 4.4."""
    dataset = flickr_like(scale)
    # The paper's B=|V|/10 is ~170k absolute queries on the real Flickr;
    # our stand-in is ~100x smaller, so budget fractions are inflated to
    # keep per-walker walk depths meaningful (see EXPERIMENTS.md).
    budget = dataset.graph.num_vertices / 2.5
    samplers: Dict[str, Sampler] = {
        "SingleRW": SingleRandomWalk(),
        "MultipleRW(m=10)": MultipleRandomWalk(10),
    }
    return degree_error_experiment(
        dataset.graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="Figure 1 — in-degree CNMSE on flickr-like, B=|V|/2.5",
        backend=backend,
        procs=procs,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Figures 3 and 7 — descriptive CCDF plots
# ----------------------------------------------------------------------
@dataclass
class CcdfFigure:
    title: str
    ccdf: Dict[int, float]

    def render(self, max_points: int = 24) -> str:
        support = [k for k, v in sorted(self.ccdf.items()) if v > 0]
        if len(support) > max_points:
            step = len(support) / max_points
            support = sorted(
                {support[int(i * step)] for i in range(max_points)}
                | {support[-1]}
            )
        rows = [
            [str(k), format_float(self.ccdf[k], 6)] for k in support
        ]
        return render_table(self.title, ["degree", "CCDF"], rows)


def _descriptive_dataset(title: str, dataset_factory):
    """Resolve a descriptive figure's dataset through the engine.

    Figures 3/7 (and Table 1) replicate nothing — their artifact is an
    exact statistic — so their plan carries an empty sampler grid: the
    engine invokes the dataset factory (the plan's graph slot holds
    the whole :class:`~repro.datasets.registry.Dataset`, since the
    exact statistic needs its degree labels too) and contributes the
    uniform entry point, nothing more.
    """
    plan = ExperimentPlan(title=title, graph=dataset_factory, samplers={})
    return run_plan(plan, replicates=0).graph


def fig3(scale: float = 1.0) -> CcdfFigure:
    """Exact in-degree CCDF of the Flickr stand-in (log-log in the
    paper; here a degree/CCDF table over log-spaced support)."""
    title = "Figure 3 — flickr-like in-degree CCDF"
    dataset = _descriptive_dataset(title, lambda: flickr_like(scale))
    return CcdfFigure(
        title=title,
        ccdf=true_degree_ccdf(dataset.graph, dataset.in_degree_of),
    )


def fig7(scale: float = 1.0) -> CcdfFigure:
    """Exact out-degree CCDF of the LiveJournal stand-in."""
    title = "Figure 7 — livejournal-like out-degree CCDF"
    dataset = _descriptive_dataset(title, lambda: livejournal_like(scale))
    return CcdfFigure(
        title=title,
        ccdf=true_degree_ccdf(dataset.graph, dataset.out_degree_of),
    )


# ----------------------------------------------------------------------
# Figures 4, 5 — FS vs SingleRW vs MultipleRW on Flickr (LCC / full)
# ----------------------------------------------------------------------
def _fs_single_multiple(dimension: int) -> Dict[str, Sampler]:
    return {
        f"FS(m={dimension})": FrontierSampler(dimension),
        "SingleRW": SingleRandomWalk(),
        f"MultipleRW(m={dimension})": MultipleRandomWalk(dimension),
    }


def fig4(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 104,
    budgets: BudgetsArg = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Union[DegreeErrorResult, BudgetSweepResult]:
    """FS wins even with no disconnected components (Flickr LCC).

    ``budgets`` turns the figure into an error-versus-budget sweep
    (Section 4.4 style) computed from ONE resumed session per
    replicate — the engine walks each replicate to the final budget
    once instead of re-sampling every budget point.
    """
    dataset = flickr_like(scale)
    lcc, degree_of = _lcc_with_labels(dataset, dataset.in_degree_of)
    budget = lcc.num_vertices / 2.5
    schedule = _budget_schedule(budgets, budget)
    if schedule is not None:
        return degree_error_budget_sweep(
            lcc,
            _fs_single_multiple(dimension),
            schedule,
            runs,
            root_seed=root_seed,
            degree_of=degree_of,
            metric="ccdf",
            title="Figure 4 — in-degree CNMSE on flickr-like LCC"
            " (budget sweep)",
            backend=backend,
            procs=procs,
            executor=executor,
        )
    return degree_error_experiment(
        lcc,
        _fs_single_multiple(dimension),
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=degree_of,
        metric="ccdf",
        title="Figure 4 — in-degree CNMSE on flickr-like LCC",
        backend=backend,
        procs=procs,
        executor=executor,
    )


def fig5(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 105,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """Full Flickr stand-in: the FS gap widens once disconnected
    components can trap SingleRW/MultipleRW walkers."""
    dataset = flickr_like(scale)
    budget = dataset.graph.num_vertices / 2.5
    return degree_error_experiment(
        dataset.graph,
        _fs_single_multiple(dimension),
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="Figure 5 — in-degree CNMSE on full flickr-like",
        backend=backend,
        procs=procs,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Figures 6 and 9 — sample paths
# ----------------------------------------------------------------------
def fig6(
    scale: float = 1.0,
    dimension: int = 100,
    num_paths: int = 4,
    root_seed: int = 106,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SamplePathResult:
    """Trajectories of theta_hat_1 (fraction of in-degree-1 vertices)
    on the full Flickr stand-in."""
    dataset = flickr_like(scale)
    pmf = true_degree_pmf(dataset.graph, dataset.in_degree_of)
    target = 1
    total_steps = max(1000, dataset.graph.num_vertices)
    return sample_paths(
        dataset.graph,
        target_degree=target,
        true_value=pmf.get(target, 0.0),
        dimension=dimension,
        total_steps=total_steps,
        num_paths=num_paths,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        title="Figure 6 — sample paths of theta_hat_1 on flickr-like",
        backend=backend,
        procs=procs,
        executor=executor,
    )


def fig9(
    scale: float = 1.0,
    dimension: int = 100,
    num_paths: int = 4,
    root_seed: int = 109,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SamplePathResult:
    """Trajectories of theta_hat_10 on the GAB bridge graph."""
    dataset = gab(scale)
    pmf = true_degree_pmf(dataset.graph)
    target = 10
    total_steps = max(1000, dataset.graph.num_vertices * 2)
    return sample_paths(
        dataset.graph,
        target_degree=target,
        true_value=pmf.get(target, 0.0),
        dimension=dimension,
        total_steps=total_steps,
        num_paths=num_paths,
        root_seed=root_seed,
        title="Figure 9 — sample paths of theta_hat_10 on GAB",
        backend=backend,
        procs=procs,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Figures 8, 10, 11 — more CNMSE comparisons
# ----------------------------------------------------------------------
def fig8(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 108,
    budgets: BudgetsArg = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Union[DegreeErrorResult, BudgetSweepResult]:
    """Out-degree CNMSE on the LiveJournal stand-in.

    ``budgets`` turns the figure into a single-walk-per-replicate
    error-versus-budget sweep (see :func:`fig4`).
    """
    dataset = livejournal_like(scale)
    budget = dataset.graph.num_vertices / 10
    schedule = _budget_schedule(budgets, budget)
    if schedule is not None:
        return degree_error_budget_sweep(
            dataset.graph,
            _fs_single_multiple(dimension),
            schedule,
            runs,
            root_seed=root_seed,
            degree_of=dataset.out_degree_of,
            metric="ccdf",
            title="Figure 8 — out-degree CNMSE on livejournal-like"
            " (budget sweep)",
            backend=backend,
            procs=procs,
            executor=executor,
        )
    return degree_error_experiment(
        dataset.graph,
        _fs_single_multiple(dimension),
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.out_degree_of,
        metric="ccdf",
        title="Figure 8 — out-degree CNMSE on livejournal-like",
        backend=backend,
        procs=procs,
        executor=executor,
    )


def fig10(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 110,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """Degree CNMSE on GAB — the loosely connected stress test."""
    dataset = gab(scale)
    budget = dataset.graph.num_vertices / 10
    return degree_error_experiment(
        dataset.graph,
        _fs_single_multiple(dimension),
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        metric="ccdf",
        title="Figure 10 — degree CNMSE on GAB",
        backend=backend,
        procs=procs,
        executor=executor,
    )


def fig11(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 111,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """SingleRW/MultipleRW seeded *in steady state* vs uniformly seeded
    FS: the baselines catch up, showing their earlier losses came from
    the uniform start (Section 6.3)."""
    dataset = flickr_like(scale)
    budget = dataset.graph.num_vertices / 2.5
    samplers: Dict[str, Sampler] = {
        f"FS(m={dimension})": FrontierSampler(dimension),
        "SingleRW(stationary)": SingleRandomWalk(seeding="stationary"),
        f"MultipleRW(stationary,m={dimension})": MultipleRandomWalk(
            dimension, seeding="stationary"
        ),
    }
    return degree_error_experiment(
        dataset.graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="Figure 11 — in-degree CNMSE, baselines seeded in steady"
        " state (flickr-like)",
        backend=backend,
        procs=procs,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Figures 12, 13 — FS vs independent vertex/edge sampling
# ----------------------------------------------------------------------
def _fig12_analytic_overlays(
    result: DegreeErrorResult, graph, budget: float, degree_of: DegreeOf
) -> None:
    """Attach the eq. (3)/(4) analytic overlays, at the same
    *effective* sample counts the simulated methods obtained."""
    vertex_curve, _ = analytic_nmse_curves(graph, budget, degree_of=degree_of)
    _, edge_half = analytic_nmse_curves(
        graph, budget / 2.0, degree_of=degree_of
    )
    result.curves["analytic RV (eq.4)"] = vertex_curve
    result.curves["analytic RE (eq.3)"] = edge_half


def fig12(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 112,
    include_analytic: bool = True,
    budgets: BudgetsArg = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Union[DegreeErrorResult, BudgetSweepResult]:
    """NMSE of in-degree density: random edge vs random vertex vs FS at
    100% hit ratio.  Edge sampling should win above the average degree
    (the Section 3 crossover) and FS should track edge sampling.

    ``budgets`` turns the figure into a single-walk-per-replicate
    error-versus-budget sweep (see :func:`fig4`); the analytic
    overlays are recomputed at each budget checkpoint.
    """
    dataset = flickr_like(scale)
    budget = dataset.graph.num_vertices / 10
    samplers: Dict[str, Sampler] = {
        "RandomEdge": RandomEdgeSampler(hit_ratio=1.0, cost_per_edge=2.0),
        "RandomVertex": RandomVertexSampler(hit_ratio=1.0),
        f"FS(m={dimension})": FrontierSampler(dimension),
    }
    schedule = _budget_schedule(budgets, budget)
    if schedule is not None:
        sweep = degree_error_budget_sweep(
            dataset.graph,
            samplers,
            schedule,
            runs,
            root_seed=root_seed,
            degree_of=dataset.in_degree_of,
            metric="pmf",
            title="Figure 12 — in-degree NMSE, 100% hit ratio"
            " (flickr-like, budget sweep)",
            backend=backend,
            procs=procs,
            executor=executor,
        )
        if include_analytic:
            for checkpoint, point_result in sweep.results.items():
                _fig12_analytic_overlays(
                    point_result,
                    dataset.graph,
                    checkpoint,
                    dataset.in_degree_of,
                )
        return sweep
    result = degree_error_experiment(
        dataset.graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="pmf",
        title="Figure 12 — in-degree NMSE, 100% hit ratio (flickr-like)",
        backend=backend,
        procs=procs,
        executor=executor,
    )
    if include_analytic:
        _fig12_analytic_overlays(
            result, dataset.graph, budget, dataset.in_degree_of
        )
    return result


def fig13(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    root_seed: int = 113,
    vertex_hit_ratio: float = 0.1,
    edge_hit_ratio: float = 0.025,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """Sparse id space: random vertex pays a 10% hit ratio, random edge
    an even lower one, while FS pays the vertex cost only for its m
    seeds — FS is the most robust to low hit ratios (Section 6.4).

    The paper used a 1% edge hit ratio on a 5.2M-vertex graph; at our
    ~100x smaller scale that would leave edge sampling with almost no
    valid samples, so the default is 2.5% (documented in
    EXPERIMENTS.md).
    """
    dataset = livejournal_like(scale)
    budget = dataset.graph.num_vertices / 5
    samplers: Dict[str, Sampler] = {
        f"RandomVertex({int(vertex_hit_ratio * 100)}% hit)": (
            RandomVertexSampler(hit_ratio=vertex_hit_ratio)
        ),
        f"RandomEdge({edge_hit_ratio * 100:g}% hit)": RandomEdgeSampler(
            hit_ratio=edge_hit_ratio, cost_per_edge=2.0
        ),
        f"FS(m={dimension})": FrontierSampler(
            dimension, seed_cost=1.0 / vertex_hit_ratio
        ),
    }
    return degree_error_experiment(
        dataset.graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="Figure 13 — in-degree CNMSE under sparse id space"
        " (livejournal-like)",
        backend=backend,
        procs=procs,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Figure 14 — special-interest group densities
# ----------------------------------------------------------------------
@dataclass
class GroupDensityResult:
    title: str
    budget: float
    runs: int
    group_truth: Dict[int, float]
    curves: Dict[str, Dict[int, float]]

    def render(self, max_rows: int = 30) -> str:
        methods = sorted(self.curves)
        groups = sorted(
            self.group_truth, key=lambda g: -self.group_truth[g]
        )[:max_rows]
        rows = []
        for rank, group in enumerate(groups, start=1):
            cells = [str(rank), format_float(self.group_truth[group], 5)]
            cells.extend(
                format_float(self.curves[m].get(group, float("nan")), 3)
                for m in methods
            )
            rows.append(cells)
        return render_table(
            f"{self.title} (B={self.budget:.0f}, {self.runs} runs)",
            ["rank", "theta_l"] + [f"{m} NMSE" for m in methods],
            rows,
        )

    def mean_error(self, method: str) -> float:
        curve = self.curves[method]
        if not curve:
            raise ValueError(f"no groups scored for {method!r}")
        return sum(curve.values()) / len(curve)


def fig14(
    scale: float = 1.0,
    runs: int = 100,
    dimension: int = 100,
    top_groups: int = 10,
    root_seed: int = 114,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> GroupDensityResult:
    """NMSE of the density of the most popular groups (Section 6.5).

    The budget is |V|/2.5 (vs the paper's |V|/100) because the graph is
    ~100x smaller: group densities need theta * B >> 1 sampled members
    per group to be estimable at all, and the paper's absolute budget
    (17k queries) dwarfs ours at |V|/100.

    Runs as an engine plan: one
    :class:`~repro.estimators.streaming.StreamingVertexDensity`
    accumulator per replicate, replicates fanned across ``procs``
    worker processes when asked.
    """
    dataset = flickr_like(scale)
    graph = dataset.graph
    labels = dataset.labels
    all_groups = sorted(
        labels.all_labels(),
        key=lambda g: -labels.count_with_label(g),
    )[:top_groups]
    truth = true_group_densities(graph, labels, all_groups)
    scored_groups = [g for g in all_groups if truth[g] > 0]
    budget = graph.num_vertices / 2.5
    samplers: Dict[str, Sampler] = {
        f"FS(m={dimension})": FrontierSampler(dimension),
        "SingleRW": SingleRandomWalk(),
        f"MultipleRW(m={dimension})": MultipleRandomWalk(dimension),
    }

    def accumulator(method: str) -> StreamingVertexDensity:
        return StreamingVertexDensity(graph, labels, scored_groups)

    def snapshot(method: str, acc: StreamingVertexDensity, checkpoint: float):
        return acc.estimate()

    plan = ExperimentPlan(
        title="Figure 14 — NMSE of top group densities (flickr-like)",
        graph=graph,
        samplers=samplers,
        budgets=[budget],
        accumulator=accumulator,
        snapshot=snapshot,
        root_seed=root_seed,
        backend=backend,
    )
    outcome = run_plan(plan, runs, procs=procs, executor=executor)
    curves: Dict[str, Dict[int, float]] = {
        method: {
            group: nmse(
                [estimate[group] for estimate in outcome.measurements(method)],
                truth[group],
            )
            for group in scored_groups
        }
        for method in outcome.methods
    }
    return GroupDensityResult(
        title="Figure 14 — NMSE of top group densities (flickr-like)",
        budget=budget,
        runs=runs,
        group_truth={g: truth[g] for g in scored_groups},
        curves=curves,
    )
