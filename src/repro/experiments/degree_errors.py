"""The CNMSE/NMSE-versus-degree workhorse behind Figures 1, 4, 5, 8,
10, 11, 12 and 13.

One call runs every sampler for ``runs`` independent replications,
estimates the degree distribution (PMF or CCDF) from each trace, and
aggregates per-degree errors against the exact distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.estimators.degree import (
    degree_ccdf_from_trace,
    degree_ccdf_from_vertices,
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.estimators.streaming import StreamingDegreePMF
from repro.experiments.engine import ExperimentPlan, run_plan
from repro.graph.graph import Graph
from repro.metrics.errors import nmse_curve
from repro.metrics.exact import true_degree_ccdf, true_degree_pmf
from repro.sampling.base import Backend, Sampler, VertexTrace

DegreeOf = Callable[[int], int]


@dataclass
class DegreeErrorResult:
    """Error curves for one experiment: method name -> degree -> error."""

    title: str
    metric: str  # "ccdf" (CNMSE) or "pmf" (NMSE)
    budget: float
    runs: int
    truth: Dict[int, float]
    curves: Dict[str, Dict[int, float]] = field(default_factory=dict)
    average_degree: float = 0.0

    def degrees(self, max_points: int = 24) -> List[int]:
        """Log-spaced degree checkpoints within the truth's support."""
        support = [k for k, v in sorted(self.truth.items()) if v > 0]
        if len(support) <= max_points:
            return support
        picked: List[int] = []
        step = len(support) / max_points
        position = 0.0
        while int(position) < len(support):
            degree = support[int(position)]
            if not picked or degree != picked[-1]:
                picked.append(degree)
            position += step
        if picked[-1] != support[-1]:
            picked.append(support[-1])
        return picked

    def render(self, max_points: int = 24) -> str:
        """ASCII table: one row per degree, one error column per method."""
        methods = sorted(self.curves)
        label = "CNMSE" if self.metric == "ccdf" else "NMSE"
        lines = [
            f"{self.title}",
            f"  metric={label}  budget={self.budget:.0f}  runs={self.runs}"
            f"  avg_degree={self.average_degree:.2f}",
            "  " + f"{'degree':>8} " + " ".join(f"{m:>14}" for m in methods),
        ]
        for degree in self.degrees(max_points):
            cells = []
            for method in methods:
                value = self.curves[method].get(degree)
                cells.append(f"{value:>14.4f}" if value is not None else " " * 14)
            lines.append("  " + f"{degree:>8} " + " ".join(cells))
        return "\n".join(lines)

    def mean_error(self, method: str) -> float:
        """Average error over the support — a scalar summary used by
        assertions of the form "FS beats MultipleRW overall"."""
        curve = self.curves[method]
        if not curve:
            raise ValueError(f"no error curve for {method!r}")
        return sum(curve.values()) / len(curve)

    def tail_mean_error(self, method: str, above_degree: float) -> float:
        """Average error restricted to degrees above a threshold."""
        curve = {k: v for k, v in self.curves[method].items() if k > above_degree}
        if not curve:
            raise ValueError(
                f"no degrees above {above_degree} for {method!r}"
            )
        return sum(curve.values()) / len(curve)


def _estimate(
    graph: Graph,
    trace,
    metric: str,
    degree_of: Optional[DegreeOf],
) -> Mapping[int, float]:
    """Dispatch on trace type and metric to the right batch estimator.

    The engine path below streams increments into
    :class:`StreamingDegreePMF` instead; this batch dispatch is kept
    as the reference implementation the parity tests check against.
    """
    if isinstance(trace, VertexTrace):
        label = degree_of if degree_of is not None else graph.degree
        if metric == "ccdf":
            return degree_ccdf_from_vertices(trace.vertices, label)
        return degree_pmf_from_vertices(trace.vertices, label)
    if metric == "ccdf":
        return degree_ccdf_from_trace(graph, trace, degree_of)
    return degree_pmf_from_trace(graph, trace, degree_of)


def degree_error_plan(
    graph: Graph,
    samplers: Mapping[str, Sampler],
    budgets: Sequence[float],
    root_seed: int = 0,
    degree_of: Optional[DegreeOf] = None,
    metric: str = "ccdf",
    title: str = "degree error plan",
    backend: Optional[Backend] = None,
) -> ExperimentPlan:
    """The degree-error computation as an :class:`ExperimentPlan`.

    One :class:`StreamingDegreePMF` accumulator per replicate, drained
    at every budget checkpoint; the snapshot is the CCDF (CNMSE
    figures) or PMF (NMSE figures) estimate, with an empty/degenerate
    trace estimating zero mass everywhere — the estimator had its
    chance and produced nothing, which is an error, not a skip.
    """
    if metric not in ("ccdf", "pmf"):
        raise ValueError(f"metric must be 'ccdf' or 'pmf', got {metric!r}")

    def accumulator(method: str) -> StreamingDegreePMF:
        return StreamingDegreePMF(graph, degree_of)

    def snapshot(method: str, acc: StreamingDegreePMF, budget: float):
        try:
            return acc.ccdf() if metric == "ccdf" else acc.estimate()
        except ValueError:
            return {}  # empty trace estimates zero mass

    return ExperimentPlan(
        title=title,
        graph=graph,
        samplers=samplers,
        budgets=list(budgets),
        accumulator=accumulator,
        snapshot=snapshot,
        root_seed=root_seed,
        backend=backend,
    )


def degree_error_experiment(
    graph: Graph,
    samplers: Mapping[str, Sampler],
    budget: float,
    runs: int,
    root_seed: int = 0,
    degree_of: Optional[DegreeOf] = None,
    metric: str = "ccdf",
    title: str = "degree error experiment",
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> DegreeErrorResult:
    """Run all samplers and aggregate per-degree error curves.

    ``metric="ccdf"`` reproduces the paper's CNMSE plots (eq. 2);
    ``metric="pmf"`` the NMSE plots (eq. 1, Figure 12).  Runs that
    produce an empty or degenerate trace are counted as estimating
    zero everywhere — the estimator had its chance and produced
    nothing, which is an error, not a skip.

    ``backend`` (optional) pins the sampling backend for every run;
    ``backend="csr"`` makes the whole pipeline array-native — the
    batch walkers emit :class:`~repro.sampling.vectorized.ArrayWalkTrace`
    and the degree estimators reweight over its arrays without ever
    materializing Python tuples.  ``None`` keeps the process default
    (which the CLI's ``--backend`` flag already controls).

    ``procs`` fans the replicates of each pool-capable sampler across
    that many worker processes over shared CSR buffers (see
    :func:`~repro.experiments.engine.run_plan`); results are
    bit-identical for every ``procs`` value at a fixed seed.
    """
    truth = (
        true_degree_ccdf(graph, degree_of)
        if metric == "ccdf"
        else true_degree_pmf(graph, degree_of)
    )
    result = DegreeErrorResult(
        title=title,
        metric=metric,
        budget=budget,
        runs=runs,
        truth=dict(truth),
        average_degree=graph.average_degree(),
    )
    plan = degree_error_plan(
        graph,
        samplers,
        [float(budget)],
        root_seed=root_seed,
        degree_of=degree_of,
        metric=metric,
        title=title,
        backend=backend,
    )
    outcome = run_plan(plan, runs, procs=procs, executor=executor)
    for method in outcome.methods:
        result.curves[method] = nmse_curve(
            outcome.measurements(method), truth
        )
    return result


# ----------------------------------------------------------------------
# MSE-versus-budget curves from resumed sessions (Section 4.4)
# ----------------------------------------------------------------------
@dataclass
class BudgetSweepResult:
    """Per-budget error results plus the error-versus-budget summary."""

    title: str
    metric: str  # "ccdf" (CNMSE) or "pmf" (NMSE)
    budgets: List[float]
    runs: int
    results: Dict[float, DegreeErrorResult] = field(default_factory=dict)
    #: Total walk steps each method's sessions took across all
    #: replicates — the single-walk receipt: under the engine this is
    #: ``runs * steps(budgets[-1])``, not ``runs * sum_i steps(b_i)``.
    steps_walked: Dict[str, int] = field(default_factory=dict)

    def at(self, budget: float) -> DegreeErrorResult:
        """The full per-degree error result at one budget checkpoint."""
        return self.results[float(budget)]

    def mean_error_curve(self, method: str) -> Dict[float, float]:
        """Budget -> mean error over the degree support, one method."""
        return {
            budget: self.results[budget].mean_error(method)
            for budget in self.budgets
        }

    def render(self) -> str:
        """ASCII table: one row per budget, one column per method."""
        methods = sorted(self.results[self.budgets[0]].curves)
        label = "CNMSE" if self.metric == "ccdf" else "NMSE"
        lines = [
            self.title,
            f"  mean {label} over the degree support, {self.runs} runs,"
            " one resumed session per replicate",
            "  " + f"{'budget':>10} " + " ".join(f"{m:>14}" for m in methods),
        ]
        for budget in self.budgets:
            cells = " ".join(
                f"{self.results[budget].mean_error(m):>14.4f}"
                for m in methods
            )
            lines.append("  " + f"{budget:>10.0f} " + cells)
        return "\n".join(lines)


def degree_error_budget_sweep(
    graph: Graph,
    samplers: Mapping[str, Sampler],
    budgets: Sequence[float],
    runs: int,
    root_seed: int = 0,
    degree_of: Optional[DegreeOf] = None,
    metric: str = "ccdf",
    title: str = "degree error budget sweep",
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> BudgetSweepResult:
    """Error curves at every budget in one anytime pass per replicate.

    The Section 4.4 MSE-versus-budget experiment: instead of re-walking
    the graph from scratch at each budget point, every replicate opens
    one :class:`~repro.sampling.session.SamplerSession`, advances it to
    each ascending budget checkpoint, and snapshots the estimate from a
    :class:`~repro.estimators.streaming.StreamingDegreePMF` accumulator
    fed the trace increments — identical statistics at the largest
    budget for a fraction of the walking.  ``procs`` fans the
    replicates across worker processes (procs-invariant results; see
    :func:`~repro.experiments.engine.run_plan`);
    ``result.steps_walked`` records the single-walk receipt.
    """
    checkpoints = [float(b) for b in budgets]
    if not checkpoints or any(
        b > a for b, a in zip(checkpoints, checkpoints[1:])
    ):
        raise ValueError(
            f"budgets must be a non-empty ascending sequence, got {budgets}"
        )
    truth = (
        true_degree_ccdf(graph, degree_of)
        if metric == "ccdf"
        else true_degree_pmf(graph, degree_of)
    )
    sweep = BudgetSweepResult(
        title=title, metric=metric, budgets=checkpoints, runs=runs
    )
    for budget in checkpoints:
        sweep.results[budget] = DegreeErrorResult(
            title=f"{title} (B={budget:g})",
            metric=metric,
            budget=budget,
            runs=runs,
            truth=dict(truth),
            average_degree=graph.average_degree(),
        )
    plan = degree_error_plan(
        graph,
        samplers,
        checkpoints,
        root_seed=root_seed,
        degree_of=degree_of,
        metric=metric,
        title=title,
        backend=backend,
    )
    outcome = run_plan(plan, runs, procs=procs, executor=executor)
    for method, run in outcome.methods.items():
        for budget in checkpoints:
            sweep.results[budget].curves[method] = nmse_curve(
                run.measurements(budget), truth
            )
        sweep.steps_walked[method] = run.total_steps()
    return sweep
