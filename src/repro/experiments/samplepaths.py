"""Sample-path experiments — Figures 6 and 9.

These figures plot the *evolution* of one density estimate
``theta_hat_l(n)`` as a function of the number of walk steps ``n``,
for a handful of independent runs, with FS and MultipleRW pinned to
the same initial vertices.  They make visible *why* the error curves
differ: walkers trapped in small components keep SingleRW/MultipleRW
estimates away from the truth while every FS path converges quickly.

Each path is one engine replicate (:func:`~repro.experiments.engine.
run_plan` with a ``"steps"`` schedule): a picklable
:class:`PinnedSeedStarter` derives the path's shared uniform seeds
from the path-index child stream and pins every method's walkers to
them, exactly as the paper describes — so paths can fan out across
worker processes with ``procs`` and stay bit-identical to the
in-process run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.engine import ExperimentPlan, run_plan
from repro.graph.graph import Graph
from repro.sampling.base import Backend, Edge, uniform_seeds
from repro.sampling.frontier import FrontierSampler
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk
from repro.util.rng import child_rng

DegreeOf = Callable[[int], int]


@dataclass
class SamplePathResult:
    """Estimate trajectories: method -> list of paths -> checkpoint values."""

    title: str
    target_degree: int
    true_value: float
    checkpoints: List[int]
    paths: Dict[str, List[List[float]]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            self.title,
            f"  theta_{self.target_degree} = {self.true_value:.4f}"
            f"  ({len(next(iter(self.paths.values())))} paths per method)",
        ]
        for method in sorted(self.paths):
            lines.append(f"  {method}:")
            header = "    " + f"{'steps':>9} " + " ".join(
                f"{'path ' + str(i): >9}" for i in range(len(self.paths[method]))
            )
            lines.append(header)
            for c_index, n in enumerate(self.checkpoints):
                cells = " ".join(
                    f"{path[c_index]:>9.4f}" for path in self.paths[method]
                )
                lines.append("    " + f"{n:>9} " + cells)
        return "\n".join(lines)

    def final_values(self, method: str) -> List[float]:
        """Estimate at the last checkpoint, per path."""
        return [path[-1] for path in self.paths[method]]


def _prefix_estimates(
    graph: Graph,
    edges: Sequence[Edge],
    target_degree: int,
    degree_of: DegreeOf,
    checkpoints: Sequence[int],
) -> List[float]:
    """theta_hat(target) after each checkpoint prefix of ``edges``."""
    values: List[float] = []
    weighted = 0.0
    normalizer = 0.0
    position = 0
    for n in checkpoints:
        while position < min(n, len(edges)):
            _, v = edges[position]
            inv_deg = 1.0 / graph.degree(v)
            normalizer += inv_deg
            if degree_of(v) == target_degree:
                weighted += inv_deg
            position += 1
        values.append(weighted / normalizer if normalizer > 0 else 0.0)
    return values


def _interleave(per_walker: List[List[Edge]]) -> List[Edge]:
    """Round-robin merge so step ``n`` reflects simultaneous progress.

    MultipleRW's walkers advance in parallel in the thought experiment;
    a flat walker-after-walker ordering would misrepresent "the
    estimate after n total steps".
    """
    merged: List[Edge] = []
    depth = 0
    while True:
        emitted = False
        for edges in per_walker:
            if depth < len(edges):
                merged.append(edges[depth])
                emitted = True
        if not emitted:
            return merged
        depth += 1


def default_checkpoints(total_steps: int, count: int = 12) -> List[int]:
    """Log-spaced step checkpoints ``1 .. total_steps``."""
    if total_steps < 1:
        raise ValueError(f"total_steps must be >= 1, got {total_steps}")
    points = sorted(
        {
            max(1, int(round(total_steps ** (i / (count - 1)))))
            for i in range(count)
        }
    )
    if points[-1] != total_steps:
        points.append(total_steps)
    return points


@dataclass(frozen=True)
class PinnedSeedStarter:
    """Picklable engine starter pinning a path's shared seeds.

    Per path (= engine replicate ``index``), the ``dimension`` uniform
    seeds are drawn from ``child_rng(seed_root, index)`` — one stream
    shared by every method, so FS, SingleRW (first seed only) and
    MultipleRW start from identical vertices as the paper requires —
    and the walk itself runs on the method's own
    ``child_rng(method_seed, index)`` stream.  Module-level and
    frozen, so ``procs`` fan-out can ship it to spawn workers.
    """

    kind: str  # "frontier" | "single" | "multiple"
    dimension: int
    seed_root: int

    def __call__(self, sampler, graph, root_seed: int, index: int):
        seeds = uniform_seeds(
            graph, self.dimension, child_rng(self.seed_root, index)
        )
        rng = child_rng(root_seed, index)
        if self.kind == "single":
            return sampler.start(graph, rng, initial_vertices=[seeds[0]])
        return sampler.start(graph, rng, initial_vertices=seeds)


def sample_paths(
    graph: Graph,
    target_degree: int,
    true_value: float,
    dimension: int,
    total_steps: int,
    num_paths: int = 4,
    root_seed: int = 0,
    degree_of: Optional[DegreeOf] = None,
    checkpoints: Optional[Sequence[int]] = None,
    title: str = "sample paths",
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SamplePathResult:
    """Figures 6/9: trajectories of ``theta_hat(target_degree)``.

    Per path, FS and MultipleRW start from the *same* ``dimension``
    uniform seeds (as the paper does); SingleRW starts from the first
    of them.  FS and SingleRW take ``total_steps`` steps; MultipleRW's
    ``dimension`` walkers take ``total_steps // dimension`` each, and
    their round-robin interleaving is scored so step ``n`` reflects
    simultaneous progress.  One engine replicate per path; ``procs``
    fans paths across worker processes bit-identically.
    """
    label = degree_of if degree_of is not None else graph.degree
    marks = list(checkpoints) if checkpoints else default_checkpoints(total_steps)
    samplers = {
        "FS": FrontierSampler(dimension),
        "SingleRW": SingleRandomWalk(),
        "MultipleRW": MultipleRandomWalk(dimension),
    }
    plan = ExperimentPlan(
        title=title,
        graph=graph,
        samplers=samplers,
        # Step-count schedule: MultipleRW's session counts steps per
        # walker, so its single checkpoint is the per-walker depth.
        budgets={
            "FS": [total_steps],
            "SingleRW": [total_steps],
            "MultipleRW": [total_steps // dimension],
        },
        schedule="steps",
        method_seed={
            "FS": root_seed + 1000,
            "SingleRW": root_seed + 2000,
            "MultipleRW": root_seed + 3000,
        },
        starter={
            "FS": PinnedSeedStarter("frontier", dimension, root_seed),
            "SingleRW": PinnedSeedStarter("single", dimension, root_seed),
            "MultipleRW": PinnedSeedStarter("multiple", dimension, root_seed),
        },
        backend=backend,
    )
    outcome = run_plan(plan, num_paths, procs=procs, executor=executor)
    result = SamplePathResult(
        title=title,
        target_degree=target_degree,
        true_value=true_value,
        checkpoints=marks,
    )
    result.paths["FS"] = [
        _prefix_estimates(graph, trace.edges, target_degree, label, marks)
        for trace in outcome.measurements("FS")
    ]
    result.paths["SingleRW"] = [
        _prefix_estimates(graph, trace.edges, target_degree, label, marks)
        for trace in outcome.measurements("SingleRW")
    ]
    result.paths["MultipleRW"] = [
        _prefix_estimates(
            graph,
            _interleave(trace.per_walker),
            target_degree,
            label,
            marks,
        )
        for trace in outcome.measurements("MultipleRW")
    ]
    return result
