"""Sample-path experiments — Figures 6 and 9.

These figures plot the *evolution* of one density estimate
``theta_hat_l(n)`` as a function of the number of walk steps ``n``,
for a handful of independent runs, with FS and MultipleRW pinned to
the same initial vertices.  They make visible *why* the error curves
differ: walkers trapped in small components keep SingleRW/MultipleRW
estimates away from the truth while every FS path converges quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.sampling.base import Edge, uniform_seeds
from repro.sampling.frontier import FrontierSampler
from repro.sampling.single import random_walk
from repro.util.rng import child_rng

DegreeOf = Callable[[int], int]


@dataclass
class SamplePathResult:
    """Estimate trajectories: method -> list of paths -> checkpoint values."""

    title: str
    target_degree: int
    true_value: float
    checkpoints: List[int]
    paths: Dict[str, List[List[float]]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            self.title,
            f"  theta_{self.target_degree} = {self.true_value:.4f}"
            f"  ({len(next(iter(self.paths.values())))} paths per method)",
        ]
        for method in sorted(self.paths):
            lines.append(f"  {method}:")
            header = "    " + f"{'steps':>9} " + " ".join(
                f"{'path ' + str(i): >9}" for i in range(len(self.paths[method]))
            )
            lines.append(header)
            for c_index, n in enumerate(self.checkpoints):
                cells = " ".join(
                    f"{path[c_index]:>9.4f}" for path in self.paths[method]
                )
                lines.append("    " + f"{n:>9} " + cells)
        return "\n".join(lines)

    def final_values(self, method: str) -> List[float]:
        """Estimate at the last checkpoint, per path."""
        return [path[-1] for path in self.paths[method]]


def _prefix_estimates(
    graph: Graph,
    edges: Sequence[Edge],
    target_degree: int,
    degree_of: DegreeOf,
    checkpoints: Sequence[int],
) -> List[float]:
    """theta_hat(target) after each checkpoint prefix of ``edges``."""
    values: List[float] = []
    weighted = 0.0
    normalizer = 0.0
    position = 0
    for n in checkpoints:
        while position < min(n, len(edges)):
            _, v = edges[position]
            inv_deg = 1.0 / graph.degree(v)
            normalizer += inv_deg
            if degree_of(v) == target_degree:
                weighted += inv_deg
            position += 1
        values.append(weighted / normalizer if normalizer > 0 else 0.0)
    return values


def _interleave(per_walker: List[List[Edge]]) -> List[Edge]:
    """Round-robin merge so step ``n`` reflects simultaneous progress.

    MultipleRW's walkers advance in parallel in the thought experiment;
    a flat walker-after-walker ordering would misrepresent "the
    estimate after n total steps".
    """
    merged: List[Edge] = []
    depth = 0
    while True:
        emitted = False
        for edges in per_walker:
            if depth < len(edges):
                merged.append(edges[depth])
                emitted = True
        if not emitted:
            return merged
        depth += 1


def default_checkpoints(total_steps: int, count: int = 12) -> List[int]:
    """Log-spaced step checkpoints ``1 .. total_steps``."""
    if total_steps < 1:
        raise ValueError(f"total_steps must be >= 1, got {total_steps}")
    points = sorted(
        {
            max(1, int(round(total_steps ** (i / (count - 1)))))
            for i in range(count)
        }
    )
    if points[-1] != total_steps:
        points.append(total_steps)
    return points


def sample_paths(
    graph: Graph,
    target_degree: int,
    true_value: float,
    dimension: int,
    total_steps: int,
    num_paths: int = 4,
    root_seed: int = 0,
    degree_of: Optional[DegreeOf] = None,
    checkpoints: Optional[Sequence[int]] = None,
    title: str = "sample paths",
) -> SamplePathResult:
    """Figures 6/9: trajectories of ``theta_hat(target_degree)``.

    Per path, FS and MultipleRW start from the *same* ``dimension``
    uniform seeds (as the paper does); SingleRW starts from the first
    of them.  Every method takes ``total_steps`` steps.
    """
    label = degree_of if degree_of is not None else graph.degree
    marks = list(checkpoints) if checkpoints else default_checkpoints(total_steps)
    result = SamplePathResult(
        title=title,
        target_degree=target_degree,
        true_value=true_value,
        checkpoints=marks,
    )
    fs_paths: List[List[float]] = []
    single_paths: List[List[float]] = []
    multiple_paths: List[List[float]] = []
    sampler = FrontierSampler(dimension)
    for path_index in range(num_paths):
        seed_rng = child_rng(root_seed, path_index)
        seeds = uniform_seeds(graph, dimension, seed_rng)

        fs_trace = sampler.sample_from(
            graph, seeds, total_steps, child_rng(root_seed + 1000, path_index)
        )
        fs_paths.append(
            _prefix_estimates(graph, fs_trace.edges, target_degree, label, marks)
        )

        single_edges = random_walk(
            graph, seeds[0], total_steps, child_rng(root_seed + 2000, path_index)
        )
        single_paths.append(
            _prefix_estimates(graph, single_edges, target_degree, label, marks)
        )

        rng = child_rng(root_seed + 3000, path_index)
        per_walker = [
            random_walk(graph, seed, total_steps // dimension, rng)
            for seed in seeds
        ]
        multiple_paths.append(
            _prefix_estimates(
                graph, _interleave(per_walker), target_degree, label, marks
            )
        )
    result.paths["FS"] = fs_paths
    result.paths["SingleRW"] = single_paths
    result.paths["MultipleRW"] = multiple_paths
    return result
