"""YAML-declared scenario suites compiled to :class:`ExperimentPlan`\\ s.

The paper's contribution is an *evaluation*: run every sampler over a
grid of graphs, budgets and estimators, and rank the methods by error.
A suite spec declares that grid as data::

    suite: smoke
    seed: 9001
    replicates: 2
    budgets: [300, 600]
    estimators: [degree_ccdf, average_degree, num_vertices]
    samplers:
      fs:   {kind: fs, dimension: 16}
      srw:  {kind: srw}
      mhrw: {kind: mhrw}
    graphs:
      - family: ba
        sizes: [600]
        kwargs: {edges_per_vertex: 3}
        seed: 42

:func:`load_suite` parses and validates the YAML (every validation
error is a :class:`SuiteSpecError` naming the offending YAML path),
expanding the ``graphs`` entries' size sweeps into one
:class:`Scenario` per (family, size) cell.  Each scenario compiles to
an :class:`~repro.experiments.engine.ExperimentPlan` and is executed
by :func:`run_suite` through the same
:func:`~repro.experiments.engine.run_plan` core every figure and
table runs on — so suite results inherit the engine's guarantee that
``procs`` is a deployment knob, never a statistics change, and a
suite report is bit-identical at ``procs=1`` and ``procs=2``.

Determinism is structural:

- every scenario derives its replication root seed as
  ``derive_scenario_seed(suite_seed, scenario_id)`` (SHA-256 based),
  so adding, removing or reordering scenarios never perturbs the
  streams of the others;
- explicit per-entry ``root_seed`` overrides are allowed but checked:
  two scenarios deriving the same seed is a spec error, not a silent
  correlation between "independent" cells.

Per-scenario results are checkpointed to ``<out>/scenarios/<id>.json``
keyed by a spec fingerprint; ``run_suite(..., resume=True)`` skips any
scenario whose checkpoint matches its current spec, which makes long
suites resumable cell by cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.estimators.streaming import (
    StreamingAverageDegree,
    StreamingDegreePMF,
    StreamingGraphSize,
)
from repro.experiments.engine import ExperimentPlan, run_plan
from repro.sampling.fused import merge_needs
from repro.generators.ba import barabasi_albert
from repro.generators.er import erdos_renyi_gnm
from repro.generators.smallworld import watts_strogatz
from repro.graph.components import largest_connected_component
from repro.metrics.errors import nmse, nmse_curve, relative_bias
from repro.metrics.exact import true_degree_ccdf, true_degree_pmf

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "SuiteResult",
    "SuiteSpec",
    "SuiteSpecError",
    "derive_scenario_seed",
    "load_suite",
    "parse_suite",
    "run_suite",
]


class SuiteSpecError(ValueError):
    """A suite spec failed validation.

    ``path`` names the offending location in the YAML document
    (``graphs[1].family``, ``samplers.fs.kind``, ...) so the fix is a
    text search away.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


# ----------------------------------------------------------------------
# registries: graph families, sampler kinds, estimators
# ----------------------------------------------------------------------
def _family_ba(size: int, kwargs: Mapping[str, Any], seed: int):
    return barabasi_albert(
        size, int(kwargs.get("edges_per_vertex", 3)), rng=seed
    )


def _family_er(size: int, kwargs: Mapping[str, Any], seed: int):
    num_edges = max(
        size - 1, round(size * float(kwargs.get("avg_degree", 6.0)) / 2)
    )
    graph = erdos_renyi_gnm(size, num_edges, rng=seed)
    if kwargs.get("lcc", True):
        # Walkers cannot launch from isolated vertices; like the
        # figure drivers, ER scenarios walk the LCC unless the spec
        # opts out (FS tolerates dust, SRW/MHRW seeds do not).
        graph, _ = largest_connected_component(graph)
    return graph


def _family_ws(size: int, kwargs: Mapping[str, Any], seed: int):
    return watts_strogatz(
        size,
        int(kwargs.get("neighbors", 6)),
        float(kwargs.get("rewire_prob", 0.1)),
        rng=seed,
    )


#: family -> (builder, allowed kwargs)
_FAMILIES: Dict[str, Tuple[Callable, frozenset]] = {
    "ba": (_family_ba, frozenset({"edges_per_vertex"})),
    "er": (_family_er, frozenset({"avg_degree", "lcc"})),
    "ws": (_family_ws, frozenset({"neighbors", "rewire_prob"})),
}


def _sampler_fs(kwargs: Mapping[str, Any]):
    from repro.sampling import FrontierSampler

    return FrontierSampler(
        int(kwargs.get("dimension", 16)),
        seeding=kwargs.get("seeding", "uniform"),
        seed_cost=float(kwargs.get("seed_cost", 1.0)),
        walker_selection=kwargs.get("walker_selection", "degree"),
    )


def _sampler_srw(kwargs: Mapping[str, Any]):
    from repro.sampling import SingleRandomWalk

    return SingleRandomWalk(
        seeding=kwargs.get("seeding", "uniform"),
        seed_cost=float(kwargs.get("seed_cost", 1.0)),
    )


def _sampler_mhrw(kwargs: Mapping[str, Any]):
    from repro.sampling import MetropolisHastingsWalk

    return MetropolisHastingsWalk(
        seeding=kwargs.get("seeding", "uniform"),
        seed_cost=float(kwargs.get("seed_cost", 1.0)),
    )


def _sampler_multiplerw(kwargs: Mapping[str, Any]):
    from repro.sampling import MultipleRandomWalk

    return MultipleRandomWalk(
        int(kwargs.get("dimension", 16)),
        seeding=kwargs.get("seeding", "uniform"),
        seed_cost=float(kwargs.get("seed_cost", 1.0)),
    )


def _sampler_dfs(kwargs: Mapping[str, Any]):
    from repro.sampling import DistributedFrontierSampler

    return DistributedFrontierSampler(
        int(kwargs.get("dimension", 16)),
        seeding=kwargs.get("seeding", "uniform"),
        seed_cost=float(kwargs.get("seed_cost", 1.0)),
    )


#: kind -> (factory, allowed kwargs beyond "kind")
_SAMPLER_KINDS: Dict[str, Tuple[Callable, frozenset]] = {
    "fs": (
        _sampler_fs,
        frozenset({"dimension", "seeding", "seed_cost", "walker_selection"}),
    ),
    "srw": (_sampler_srw, frozenset({"seeding", "seed_cost"})),
    "mhrw": (_sampler_mhrw, frozenset({"seeding", "seed_cost"})),
    "multiplerw": (
        _sampler_multiplerw,
        frozenset({"dimension", "seeding", "seed_cost"}),
    ),
    "dfs": (_sampler_dfs, frozenset({"dimension", "seeding", "seed_cost"})),
}


@dataclass(frozen=True)
class _Estimator:
    """One named estimand: accumulator factory, value hook, truth."""

    name: str
    kind: str  # "scalar" or "curve"
    build: Callable[[Any], Any]
    value: Callable[[Any], Any]
    truth: Callable[[Any], Any]


def _safe_scalar(compute: Callable[[], float]) -> float:
    """An accumulator that produced nothing estimated zero — that is
    an estimate, and it is scored as one (the figure drivers'
    convention for empty traces)."""
    try:
        return float(compute())
    except ValueError:
        return 0.0


def _safe_curve(compute: Callable[[], Dict[int, float]]) -> Dict[int, float]:
    try:
        return compute()
    except ValueError:
        return {}


_ESTIMATORS: Dict[str, _Estimator] = {
    estimator.name: estimator
    for estimator in (
        _Estimator(
            "degree_pmf",
            "curve",
            lambda graph: StreamingDegreePMF(graph),
            lambda acc: _safe_curve(acc.estimate),
            lambda graph: dict(true_degree_pmf(graph)),
        ),
        _Estimator(
            "degree_ccdf",
            "curve",
            lambda graph: StreamingDegreePMF(graph),
            lambda acc: _safe_curve(acc.ccdf),
            lambda graph: dict(true_degree_ccdf(graph)),
        ),
        _Estimator(
            "average_degree",
            "scalar",
            lambda graph: StreamingAverageDegree(graph),
            lambda acc: _safe_scalar(acc.estimate),
            lambda graph: graph.average_degree(),
        ),
        _Estimator(
            "num_vertices",
            "scalar",
            lambda graph: StreamingGraphSize(graph),
            lambda acc: _safe_scalar(acc.num_vertices),
            lambda graph: float(graph.num_vertices),
        ),
        _Estimator(
            "num_edges",
            "scalar",
            lambda graph: StreamingGraphSize(graph),
            lambda acc: _safe_scalar(acc.num_edges),
            lambda graph: float(graph.num_edges),
        ),
    )
}


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def derive_scenario_seed(suite_seed: int, scenario_id: str) -> int:
    """The scenario's replication root seed: a 31-bit SHA-256 digest
    of ``(suite_seed, scenario_id)``.

    Hash-derived (not sequential) so adding, removing or reordering
    scenarios never perturbs the replicate streams of the others —
    the suite-level analogue of ``child_rng``'s independence
    guarantee.
    """
    digest = hashlib.sha256(
        f"{int(suite_seed)}\x1f{scenario_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ----------------------------------------------------------------------
# the spec model
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """One fully-resolved grid cell: a graph, a sampler grid, a
    budget schedule, an estimator set, and a derived root seed."""

    id: str
    family: str
    size: int
    graph_kwargs: Dict[str, Any]
    graph_seed: int
    samplers: Dict[str, Dict[str, Any]]  # name -> {"kind": ..., **kwargs}
    estimators: List[str]
    budgets: List[float]
    replicates: int
    seed: int

    def build_graph(self):
        builder, _ = _FAMILIES[self.family]
        return builder(self.size, self.graph_kwargs, self.graph_seed)

    def build_samplers(self) -> Dict[str, Any]:
        built = {}
        for name, config in self.samplers.items():
            factory, _ = _SAMPLER_KINDS[config["kind"]]
            built[name] = factory(
                {k: v for k, v in config.items() if k != "kind"}
            )
        return built

    def build_plan(self, graph) -> ExperimentPlan:
        """The scenario as an engine plan: one accumulator bundle per
        replicate, snapshotting every estimator at every budget."""
        estimators = [_ESTIMATORS[name] for name in self.estimators]

        def accumulator(method: str) -> _EstimatorBundle:
            return _EstimatorBundle(graph, estimators)

        def snapshot(method: str, bundle: _EstimatorBundle, budget: float):
            return bundle.values()

        return ExperimentPlan(
            title=self.id,
            graph=graph,
            samplers=self.build_samplers(),
            budgets=list(self.budgets),
            accumulator=accumulator,
            snapshot=snapshot,
            root_seed=self.seed,
        )

    def spec_dict(self) -> Dict[str, Any]:
        """The scenario as canonical JSON-ready data (fingerprints,
        reports)."""
        return {
            "id": self.id,
            "family": self.family,
            "size": self.size,
            "graph_kwargs": dict(self.graph_kwargs),
            "graph_seed": self.graph_seed,
            "samplers": {k: dict(v) for k, v in self.samplers.items()},
            "estimators": list(self.estimators),
            "budgets": list(self.budgets),
            "replicates": self.replicates,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """Hash of everything that determines this scenario's numbers
        — the resume key for its checkpoint file.  ``procs`` is
        deliberately absent: the engine makes it statistics-invariant.
        """
        canonical = json.dumps(self.spec_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class _EstimatorBundle:
    """One replicate's accumulator: every declared estimator fed the
    same trace increments, snapshotted as ``{name: value}``."""

    def __init__(self, graph, estimators: Sequence[_Estimator]):
        self._estimators = list(estimators)
        self._parts = {e.name: e.build(graph) for e in estimators}

    def update(self, increment) -> "_EstimatorBundle":
        for part in self._parts.values():
            part.update(increment)
        return self

    def fused_needs(self):
        """The union of every part's needs — ``None`` (drain path)
        unless ALL parts can absorb fused blocks."""
        return merge_needs(self._parts.values())

    def absorb_block(self, block) -> "_EstimatorBundle":
        for part in self._parts.values():
            part.absorb_block(block)
        return self

    def values(self) -> Dict[str, Any]:
        return {
            e.name: e.value(self._parts[e.name]) for e in self._estimators
        }


@dataclass
class SuiteSpec:
    """A validated suite: name, root seed, and resolved scenarios."""

    name: str
    description: str
    seed: int
    scenarios: List[Scenario]
    path: Optional[Path] = None

    def scenario_ids(self) -> List[str]:
        return [scenario.id for scenario in self.scenarios]


# ----------------------------------------------------------------------
# parsing + validation
# ----------------------------------------------------------------------
def _as_mapping(value, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise SuiteSpecError(
            path, f"expected a mapping, got {type(value).__name__}"
        )
    return value


def _as_list(value, path: str) -> list:
    if not isinstance(value, (list, tuple)):
        raise SuiteSpecError(
            path, f"expected a list, got {type(value).__name__}"
        )
    return list(value)


def _as_int(value, path: str, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SuiteSpecError(
            path, f"expected an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise SuiteSpecError(path, f"must be >= {minimum}, got {value}")
    return value


def _check_keys(mapping: Mapping, allowed: frozenset, path: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise SuiteSpecError(
            f"{path}.{unknown[0]}",
            f"unknown key (allowed: {', '.join(sorted(allowed))})",
        )


def _parse_budgets(value, path: str) -> List[float]:
    budgets = _as_list(value, path)
    if not budgets:
        raise SuiteSpecError(path, "budget schedule must be non-empty")
    parsed = []
    for index, budget in enumerate(budgets):
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise SuiteSpecError(
                f"{path}[{index}]", f"expected a number, got {budget!r}"
            )
        if budget <= 0:
            raise SuiteSpecError(
                f"{path}[{index}]", f"budgets must be > 0, got {budget}"
            )
        parsed.append(float(budget))
    if any(b > a for b, a in zip(parsed, parsed[1:])):
        raise SuiteSpecError(
            path, f"budget schedule must be ascending, got {budgets}"
        )
    return parsed


def _parse_estimators(value, path: str) -> List[str]:
    names = _as_list(value, path)
    if not names:
        raise SuiteSpecError(path, "estimator set must be non-empty")
    for index, name in enumerate(names):
        if name not in _ESTIMATORS:
            raise SuiteSpecError(
                f"{path}[{index}]",
                f"unknown estimator {name!r}"
                f" (known: {', '.join(sorted(_ESTIMATORS))})",
            )
    if len(set(names)) != len(names):
        raise SuiteSpecError(path, f"duplicate estimator in {names}")
    return [str(name) for name in names]


def _parse_samplers(value, path: str) -> Dict[str, Dict[str, Any]]:
    grid = _as_mapping(value, path)
    if not grid:
        raise SuiteSpecError(path, "sampler grid must be non-empty")
    parsed: Dict[str, Dict[str, Any]] = {}
    for name, config in grid.items():
        entry_path = f"{path}.{name}"
        config = _as_mapping(config, entry_path)
        kind = config.get("kind", name)
        if kind not in _SAMPLER_KINDS:
            raise SuiteSpecError(
                f"{entry_path}.kind",
                f"unknown sampler kind {kind!r}"
                f" (known: {', '.join(sorted(_SAMPLER_KINDS))})",
            )
        _, allowed = _SAMPLER_KINDS[kind]
        _check_keys(config, allowed | {"kind"}, entry_path)
        parsed[str(name)] = {"kind": kind, **{
            key: config[key] for key in sorted(set(config) - {"kind"})
        }}
    return parsed


_GRAPH_KEYS = frozenset(
    {"family", "sizes", "kwargs", "seed", "id", "root_seed",
     "budgets", "estimators", "replicates", "samplers"}
)
_TOP_KEYS = frozenset(
    {"suite", "description", "seed", "replicates", "budgets",
     "estimators", "samplers", "graphs"}
)


def parse_suite(data: Any, source: str = "suite") -> SuiteSpec:
    """Validate a decoded YAML document into a :class:`SuiteSpec`.

    Every failure is a :class:`SuiteSpecError` whose message starts
    with the YAML path of the offending node.
    """
    root = _as_mapping(data, source)
    _check_keys(root, _TOP_KEYS, source)
    if "suite" not in root:
        raise SuiteSpecError(f"{source}.suite", "missing suite name")
    name = str(root["suite"])
    description = str(root.get("description", ""))
    seed = _as_int(root.get("seed", 0), f"{source}.seed")
    default_replicates = _as_int(
        root.get("replicates", 10), f"{source}.replicates", minimum=1
    )
    default_budgets = (
        _parse_budgets(root["budgets"], f"{source}.budgets")
        if "budgets" in root
        else None
    )
    default_estimators = _parse_estimators(
        root.get("estimators", ["degree_ccdf"]), f"{source}.estimators"
    )
    if "samplers" not in root:
        raise SuiteSpecError(f"{source}.samplers", "missing sampler grid")
    sampler_grid = _parse_samplers(root["samplers"], f"{source}.samplers")

    entries = _as_list(
        root.get("graphs", []), f"{source}.graphs"
    )
    if not entries:
        raise SuiteSpecError(
            f"{source}.graphs", "a suite needs at least one graphs entry"
        )

    scenarios: List[Scenario] = []
    for index, entry in enumerate(entries):
        entry_path = f"{source}.graphs[{index}]"
        entry = _as_mapping(entry, entry_path)
        _check_keys(entry, _GRAPH_KEYS, entry_path)
        if "family" not in entry:
            raise SuiteSpecError(
                f"{entry_path}.family", "missing graph family"
            )
        family = entry["family"]
        if family not in _FAMILIES:
            raise SuiteSpecError(
                f"{entry_path}.family",
                f"unknown graph family {family!r}"
                f" (known: {', '.join(sorted(_FAMILIES))})",
            )
        _, allowed_kwargs = _FAMILIES[family]
        kwargs = dict(
            _as_mapping(entry.get("kwargs", {}), f"{entry_path}.kwargs")
        )
        _check_keys(kwargs, allowed_kwargs, f"{entry_path}.kwargs")
        sizes = _as_list(entry.get("sizes", []), f"{entry_path}.sizes")
        if not sizes:
            raise SuiteSpecError(
                f"{entry_path}.sizes", "size sweep must be non-empty"
            )
        sizes = [
            _as_int(s, f"{entry_path}.sizes[{i}]", minimum=2)
            for i, s in enumerate(sizes)
        ]
        if "id" in entry and len(sizes) > 1:
            raise SuiteSpecError(
                f"{entry_path}.id",
                "an explicit id needs a single-size entry"
                f" (this one sweeps {len(sizes)} sizes)",
            )
        graph_seed = _as_int(entry.get("seed", 42), f"{entry_path}.seed")
        budgets = (
            _parse_budgets(entry["budgets"], f"{entry_path}.budgets")
            if "budgets" in entry
            else default_budgets
        )
        if budgets is None:
            raise SuiteSpecError(
                f"{entry_path}.budgets",
                "missing budget schedule (set suite-level 'budgets'"
                " or a per-entry override)",
            )
        estimators = (
            _parse_estimators(
                entry["estimators"], f"{entry_path}.estimators"
            )
            if "estimators" in entry
            else default_estimators
        )
        replicates = (
            _as_int(
                entry["replicates"], f"{entry_path}.replicates", minimum=1
            )
            if "replicates" in entry
            else default_replicates
        )
        if "samplers" in entry:
            selection = _as_list(
                entry["samplers"], f"{entry_path}.samplers"
            )
            for i, sampler_name in enumerate(selection):
                if sampler_name not in sampler_grid:
                    raise SuiteSpecError(
                        f"{entry_path}.samplers[{i}]",
                        f"{sampler_name!r} is not in the suite's"
                        f" sampler grid ({', '.join(sorted(sampler_grid))})",
                    )
            samplers = {
                str(n): dict(sampler_grid[n]) for n in selection
            }
        else:
            samplers = {k: dict(v) for k, v in sampler_grid.items()}

        for size in sizes:
            scenario_id = str(entry.get("id", f"{family}-n{size}"))
            scenario_seed = (
                _as_int(entry["root_seed"], f"{entry_path}.root_seed")
                if "root_seed" in entry
                else derive_scenario_seed(seed, scenario_id)
            )
            scenarios.append(
                Scenario(
                    id=scenario_id,
                    family=family,
                    size=size,
                    graph_kwargs=kwargs,
                    graph_seed=graph_seed,
                    samplers=samplers,
                    estimators=estimators,
                    budgets=budgets,
                    replicates=replicates,
                    seed=scenario_seed,
                )
            )

    seen_ids: Dict[str, str] = {}
    for scenario in scenarios:
        if scenario.id in seen_ids:
            raise SuiteSpecError(
                f"{source}.graphs",
                f"duplicate scenario id {scenario.id!r} — give one"
                " entry an explicit 'id'",
            )
        seen_ids[scenario.id] = scenario.id
    seeds: Dict[int, str] = {}
    for scenario in scenarios:
        if scenario.seed in seeds:
            raise SuiteSpecError(
                f"{source}.graphs",
                f"scenario seed collision: {scenario.id!r} and"
                f" {seeds[scenario.seed]!r} both replicate from seed"
                f" {scenario.seed} — their streams would be identical,"
                " not independent (drop or change a 'root_seed'"
                " override)",
            )
        seeds[scenario.seed] = scenario.id

    return SuiteSpec(
        name=name, description=description, seed=seed, scenarios=scenarios
    )


def load_suite(path) -> SuiteSpec:
    """Parse + validate a suite spec YAML file."""
    import yaml

    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise SuiteSpecError(str(path), f"cannot read spec: {error}") from error
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise SuiteSpecError(str(path), f"invalid YAML: {error}") from error
    spec = parse_suite(data, source=path.name)
    spec.path = path
    return spec


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """One scenario's JSON-ready stats plus resume accounting."""

    scenario: Scenario
    result: Dict[str, Any]
    resumed: bool = False


@dataclass
class SuiteResult:
    """Everything :func:`run_suite` produced, scenario by scenario."""

    spec: SuiteSpec
    procs: int
    executor: Optional[str] = None
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def outcome(self, scenario_id: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario.id == scenario_id:
                return outcome
        raise KeyError(scenario_id)

    def resumed_ids(self) -> List[str]:
        return [o.scenario.id for o in self.outcomes if o.resumed]


def _budget_key(budget: float) -> str:
    return f"{budget:g}"


def run_scenario(
    scenario: Scenario, procs: int = 1, executor: Optional[str] = None
) -> Dict[str, Any]:
    """Execute one scenario and score it.

    Returns the scenario's report fragment: realized graph facts plus
    ``methods -> budgets -> estimators -> {statistic: value}``.  The
    error statistics are the paper's: NRMSE (eq. 1, mean over the
    degree support for distribution estimands) and relative bias
    (Table 2) for scalars.
    """
    graph = scenario.build_graph()
    plan = scenario.build_plan(graph)
    outcome = run_plan(
        plan, scenario.replicates, procs=procs, executor=executor
    )
    truths = {
        name: _ESTIMATORS[name].truth(graph)
        for name in scenario.estimators
    }
    methods: Dict[str, Any] = {}
    for method in sorted(outcome.methods):
        per_budget: Dict[str, Any] = {}
        for budget in scenario.budgets:
            rows = outcome.measurements(method, budget)
            per_estimator: Dict[str, Any] = {}
            for name in scenario.estimators:
                estimator = _ESTIMATORS[name]
                measurements = [row[name] for row in rows]
                if estimator.kind == "curve":
                    curve = nmse_curve(measurements, truths[name])
                    per_estimator[name] = {
                        "nrmse": sum(curve.values()) / len(curve)
                        if curve
                        else 0.0
                    }
                else:
                    truth = float(truths[name])
                    per_estimator[name] = {
                        "nrmse": nmse(measurements, truth),
                        "bias": relative_bias(measurements, truth),
                    }
            per_budget[_budget_key(budget)] = per_estimator
        methods[method] = per_budget
    return {
        "id": scenario.id,
        "graph": {
            "family": scenario.family,
            "size": scenario.size,
            "kwargs": dict(scenario.graph_kwargs),
            "seed": scenario.graph_seed,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "average_degree": graph.average_degree(),
        },
        "seed": scenario.seed,
        "replicates": scenario.replicates,
        "budgets": [float(b) for b in scenario.budgets],
        "estimators": list(scenario.estimators),
        "methods": methods,
    }


def run_suite(
    spec: SuiteSpec,
    procs: int = 1,
    executor: Optional[str] = None,
    out_dir=None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> SuiteResult:
    """Execute every scenario of ``spec`` through the engine.

    ``procs`` fans each scenario's replicates over shared-CSR workers
    (``run_plan`` semantics: results are bit-identical for every value
    >= 1 and for every ``executor`` — spawn processes by default,
    threads with ``executor="thread"``/``"auto"``).  With ``out_dir``,
    each scenario's stats are checkpointed
    to ``<out_dir>/scenarios/<id>.json`` as soon as it finishes;
    ``resume=True`` then skips scenarios whose checkpoint fingerprint
    still matches the spec, so an interrupted suite continues where it
    stopped and a finished one only rebuilds its reports.
    """
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    say = log if log is not None else (lambda message: None)
    checkpoint_dir = None
    if out_dir is not None:
        checkpoint_dir = Path(out_dir) / "scenarios"
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
    result = SuiteResult(spec=spec, procs=procs, executor=executor)
    for scenario in spec.scenarios:
        checkpoint = (
            checkpoint_dir / f"{scenario.id}.json"
            if checkpoint_dir is not None
            else None
        )
        if resume and checkpoint is not None and checkpoint.exists():
            try:
                payload = json.loads(checkpoint.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
            if (
                payload is not None
                and payload.get("fingerprint") == scenario.fingerprint()
            ):
                say(f"  {scenario.id}: resumed from {checkpoint}")
                result.outcomes.append(
                    ScenarioOutcome(
                        scenario, payload["result"], resumed=True
                    )
                )
                continue
            say(f"  {scenario.id}: checkpoint stale, re-running")
        say(
            f"  {scenario.id}: {len(scenario.samplers)} methods x"
            f" {scenario.replicates} replicates x"
            f" {len(scenario.budgets)} budgets"
        )
        scenario_result = run_scenario(
            scenario, procs=procs, executor=executor
        )
        if checkpoint is not None:
            checkpoint.write_text(
                json.dumps(
                    {
                        "fingerprint": scenario.fingerprint(),
                        "result": scenario_result,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
        result.outcomes.append(ScenarioOutcome(scenario, scenario_result))
    return result
