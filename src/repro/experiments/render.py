"""Plain-text rendering shared by tables, figures and the CLI."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Fixed-width text table sized to its content."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = [title]
    header_line = "  " + "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  " + "-" * (len(header_line) - 2))
    for row in rows:
        lines.append(
            "  "
            + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_float(value: float, digits: int = 4) -> str:
    """Compact float formatting for table cells."""
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"
