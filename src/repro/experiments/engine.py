"""The replication engine every figure, table and ablation runs on.

The paper's entire evaluation is one computation: replicate a sampler
``N`` times, estimate something from each replicate, aggregate across
replicates.  An :class:`ExperimentPlan` declares that computation —
graph (or graph factory), sampler grid, budget schedule, accumulator
and snapshot hooks — and :func:`run_plan` executes it:

- **one resumable session per replicate**: each replicate opens a
  :class:`~repro.sampling.session.SamplerSession` and advances it
  through the ascending budget (or step) checkpoints, so a sweep over
  ``k`` budget points walks ``budget_k`` steps total instead of
  ``sum_i budget_i`` (the pre-engine drivers re-sampled the full
  budget at every point);
- **streaming estimation**: at every checkpoint the session's trace
  increment is drained (``take_trace``) into the plan's accumulator —
  typically one of :mod:`repro.estimators.streaming` — and the plan's
  ``snapshot`` hook records the measurement.  When every accumulator
  part is fuse-capable (exposes ``fused_needs()``), in-process runs
  skip the drain entirely and use ``SamplerSession.advance_into`` —
  the fused C kernels fold the eq. (7)/(9) sufficient statistics
  while walking, with bit-identical rows (``REPRO_NO_FUSED=1``
  forces the drain path everywhere);
- **multi-process fan-out**: ``run_plan(plan, replicates, procs=N)``
  ships the replicates of pool-capable samplers to a spawn-safe
  :class:`~repro.sampling.sharded.ShardedSessionPool` sharing the
  graph through mmap'd read-only CSR buffers.  Every replicate derives
  its RNG as ``child_rng(seed, index)`` no matter which process runs
  it, and accumulation always happens in the parent in replicate
  order, so ``procs=1`` and ``procs=8`` are bit-identical —
  parallelism is a deployment knob, never a statistics change.

Replicate seeding matches the historical drivers exactly: method
``i`` of the sorted grid replicates with child streams of
``root_seed + METHOD_SEED_STRIDE * i`` unless the plan overrides
``method_seed``, so every ported driver reproduces its pre-engine
output bit for bit (or to float-summation noise where a streaming
accumulator replaces a batch estimator) at ``procs=None``.

Backend semantics:

- ``procs=None`` (the default) replicates in-process on
  ``plan.backend`` (``None`` = the process default) — the exact
  historical driver behavior.
- ``procs >= 1`` runs pool-capable samplers' sessions over shared CSR
  buffers (inline when ``procs == 1``, spawn workers otherwise); the
  numpy draw protocol differs from the list backend's, so results
  match ``plan.backend="csr"`` runs, not list-backend runs.
  Samplers that cannot cross the process boundary (list-only walkers
  such as :class:`~repro.sampling.distributed.DistributedFrontierSampler`,
  the independent vertex/edge probes, anything explicitly pinned to
  ``backend="list"``) replicate in-process regardless of ``procs`` —
  with identical streams for every ``procs`` value, so the
  procs-invariance guarantee holds method by method.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from functools import partial
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.sampling.base import (
    Backend,
    Sampler,
    VertexTrace,
    WalkTrace,
    check_backend,
    use_backend,
)
from repro.sampling.fused import fusion_disabled, merge_needs
from repro.sampling.session import (
    default_session_starter,
    drain_session_checkpoints,
)
from repro.sampling.frontier import FrontierSampler
from repro.sampling.metropolis import MetropolisHastingsWalk, MetropolisTrace
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk
from repro.sampling.vectorized import ArrayMetropolisTrace, ArrayWalkTrace
from repro.util.rng import child_rng

__all__ = [
    "METHOD_SEED_STRIDE",
    "ExperimentPlan",
    "MethodRun",
    "PlanResult",
    "TraceCollector",
    "concat_traces",
    "default_budget_schedule",
    "default_starter",
    "map_incremental",
    "map_replicates",
    "run_plan",
]

Checkpoints = Sequence[float]
#: ``starter(sampler, graph, seed, index) -> session`` — how one
#: replicate's session is opened.  Must be picklable (a module-level
#: function, or an instance of a module-level class) when the plan is
#: fanned out with ``procs``, since workers call it after spawn.
Starter = Callable[[Sampler, Any, int, int], Any]

#: Decorrelation stride between the sorted grid's method seeds — the
#: constant ``degree_error_experiment`` has used since the first
#: drivers, kept so ported drivers reproduce their historical streams.
METHOD_SEED_STRIDE = 7919

#: Sampler types whose sessions run on the csr backend and can
#: therefore execute inside spawn workers over shared CSR buffers.
#: Everything else replicates in-process (deterministically, for any
#: ``procs``).
_POOL_SAFE_TYPES = (
    SingleRandomWalk,
    MultipleRandomWalk,
    FrontierSampler,
    MetropolisHastingsWalk,
)


#: The engine's default starter IS the pool workers' default starter
#: (one definition in :mod:`repro.sampling.session`): the same
#: ``child_rng(root_seed, index)`` stream derivation ``replicate``
#: hands out, which is what keeps in-process and pooled replication
#: bit-identical by construction.
default_starter = default_session_starter


def default_budget_schedule(budget: float, points: int = 8) -> List[float]:
    """Linearly spaced budget checkpoints ``budget/points .. budget``.

    The Section 4.4 style schedule: estimating at every point costs a
    single walk to ``budget`` under the engine, versus
    ``(points + 1)/2`` full-budget walks when re-sampling per point.
    """
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    return [budget * (i + 1) / points for i in range(points)]


def _pool_capable(sampler: Any) -> bool:
    """Whether ``sampler`` may run inside spawn workers over shared CSR."""
    if not isinstance(sampler, _POOL_SAFE_TYPES):
        return False
    if getattr(sampler, "backend", None) == "list":
        return False
    return True


# ----------------------------------------------------------------------
# trace collection for batch estimators
# ----------------------------------------------------------------------
def concat_traces(traces: Sequence[Any]) -> Any:
    """Concatenate trace increments into one trace of the same type.

    Supports both backends' walk traces (including the Metropolis
    variants' visit sequences) and :class:`VertexTrace`.  ``budget``
    is taken from the last increment (the cumulative high-water
    value); ``initial_vertices``/``seed_cost`` from the first.
    """
    if not traces:
        raise ValueError("no traces to concatenate")
    first, last = traces[0], traces[-1]
    if isinstance(first, VertexTrace):
        return VertexTrace(
            method=first.method,
            vertices=[v for t in traces for v in t.vertices],
            budget=last.budget,
            cost_per_sample=first.cost_per_sample,
        )
    if isinstance(first, ArrayWalkTrace):
        sources = np.concatenate([t.step_sources for t in traces])
        targets = np.concatenate([t.step_targets for t in traces])
        walkers = (
            np.concatenate([t.step_walkers for t in traces])
            if all(t.step_walkers is not None for t in traces)
            else None
        )
        if isinstance(first, ArrayMetropolisTrace):
            return ArrayMetropolisTrace(
                first.method,
                sources,
                targets,
                list(first.initial_vertices),
                last.budget,
                first.seed_cost,
                step_walkers=walkers,
                visited_array=np.concatenate(
                    [t.visited_array for t in traces]
                ),
            )
        return ArrayWalkTrace(
            first.method,
            sources,
            targets,
            list(first.initial_vertices),
            last.budget,
            first.seed_cost,
            step_walkers=walkers,
        )
    edges = [e for t in traces for e in t.edges]
    indices = (
        [i for t in traces for i in t.walker_indices]
        if all(t.walker_indices is not None for t in traces)
        else None
    )
    per_walker = None
    if all(t.per_walker is not None for t in traces):
        walkers = len(first.per_walker)
        per_walker = [
            [e for t in traces for e in t.per_walker[w]]
            for w in range(walkers)
        ]
    merged = WalkTrace(
        method=first.method,
        edges=edges,
        initial_vertices=list(first.initial_vertices),
        budget=last.budget,
        seed_cost=first.seed_cost,
        per_walker=per_walker,
        walker_indices=indices,
    )
    if isinstance(first, MetropolisTrace):
        metropolis = MetropolisTrace(
            method=first.method,
            edges=edges,
            initial_vertices=list(first.initial_vertices),
            budget=last.budget,
            seed_cost=first.seed_cost,
        )
        metropolis.visited = [v for t in traces for v in t.visited]
        return metropolis
    return merged


class TraceCollector:
    """The accumulator for batch (whole-trace) estimators.

    Plans whose estimator needs the full trace — assortativity,
    clustering, a final-edge statistic — use this instead of a
    streaming accumulator: increments are retained and
    :meth:`trace` hands back the concatenated record.  Single-
    checkpoint plans get the session's one increment back unchanged,
    which is bit-identical to the one-shot ``Sampler.sample`` trace.

    Retaining the walk is the point, so this collector is *not* an
    O(chunk)-memory streaming accumulator: on a k-checkpoint schedule
    it holds the whole trace and re-concatenates at each snapshot
    (repeated ``trace()`` calls between updates are cached).  Plans
    sweeping many checkpoints should decompose their estimator into a
    running-sums accumulator (:mod:`repro.estimators.streaming`)
    instead.
    """

    def __init__(self) -> None:
        self._increments: List[Any] = []
        self._merged: Any = None

    def update(self, increment: Any) -> "TraceCollector":
        self._increments.append(increment)
        self._merged = None
        return self

    @property
    def increments(self) -> List[Any]:
        return list(self._increments)

    def trace(self) -> Any:
        if not self._increments:
            raise ValueError("no increments collected; cannot form a trace")
        if len(self._increments) == 1:
            return self._increments[0]
        if self._merged is None:
            self._merged = concat_traces(self._increments)
        return self._merged


def _collector_snapshot(method: str, accumulator: Any, checkpoint: float) -> Any:
    """Default snapshot: the cumulative trace at the checkpoint."""
    return accumulator.trace()


def _collector_accumulator(method: str) -> TraceCollector:
    return TraceCollector()


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass
class ExperimentPlan:
    """A declarative replicated experiment.

    ``graph`` may be the graph object itself or a zero-argument
    factory (resolved once per :func:`run_plan` call).  ``budgets``
    is the ascending checkpoint schedule — one sequence shared by
    every method, or a per-method mapping.  ``accumulator(method)``
    builds one fresh accumulator per replicate (anything with
    ``update(trace_increment)``; defaults to :class:`TraceCollector`),
    and ``snapshot(method, accumulator, checkpoint)`` records the
    measurement at each checkpoint (defaults to the collector's
    cumulative trace).  ``method_seed`` overrides the per-method
    replicate seed (mapping or ``(method, index) -> seed``); the
    default is ``root_seed + METHOD_SEED_STRIDE * index`` over the
    sorted grid.  ``starter`` overrides session construction (per
    method or globally) — see :data:`Starter` for the picklability
    contract under ``procs``.
    """

    title: str
    graph: Any
    samplers: Mapping[str, Sampler]
    budgets: Union[Checkpoints, Mapping[str, Checkpoints]] = ()
    accumulator: Optional[Callable[[str], Any]] = None
    snapshot: Optional[Callable[[str, Any, float], Any]] = None
    #: "budget" advances sessions with ``advance_budget(checkpoint)``;
    #: "steps" treats checkpoints as cumulative step counts and uses
    #: plain ``advance`` (per-walker steps for MultipleRW).
    schedule: str = "budget"
    root_seed: int = 0
    method_seed: Optional[
        Union[Mapping[str, int], Callable[[str, int], int]]
    ] = None
    starter: Optional[Union[Starter, Mapping[str, Starter]]] = None
    backend: Optional[Backend] = None

    def __post_init__(self) -> None:
        check_backend(self.backend)
        if self.schedule not in ("budget", "steps"):
            raise ValueError(
                f"schedule must be 'budget' or 'steps', got {self.schedule!r}"
            )

    def resolve_graph(self) -> Any:
        """The graph object (invokes a factory input exactly once)."""
        return self.graph() if callable(self.graph) else self.graph

    def methods(self) -> List[str]:
        """Grid methods in replication order (sorted, as the
        historical drivers iterated them)."""
        return sorted(self.samplers)

    def checkpoints_for(self, method: str) -> List[float]:
        """The validated ascending checkpoint schedule for ``method``."""
        schedule = (
            self.budgets[method]
            if isinstance(self.budgets, Mapping)
            else self.budgets
        )
        checkpoints = [float(b) for b in schedule]
        if not checkpoints or any(
            b > a for b, a in zip(checkpoints, checkpoints[1:])
        ):
            raise ValueError(
                "budgets must be a non-empty ascending sequence,"
                f" got {schedule!r} for method {method!r}"
            )
        return checkpoints

    def seed_for(self, method: str, method_index: int) -> int:
        if self.method_seed is None:
            return self.root_seed + METHOD_SEED_STRIDE * method_index
        if isinstance(self.method_seed, Mapping):
            return int(self.method_seed[method])
        return int(self.method_seed(method, method_index))

    def starter_for(self, method: str) -> Starter:
        if self.starter is None:
            return default_starter
        if isinstance(self.starter, Mapping):
            return self.starter.get(method, default_starter)
        return self.starter

    def accumulator_for(self, method: str) -> Any:
        factory = (
            self.accumulator
            if self.accumulator is not None
            else _collector_accumulator
        )
        return factory(method)

    def snapshot_hook(self) -> Callable[[str, Any, float], Any]:
        return (
            self.snapshot if self.snapshot is not None else _collector_snapshot
        )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class MethodRun:
    """One method's replicated measurements plus session accounting."""

    method: str
    checkpoints: List[float]
    #: ``rows[replicate][checkpoint_index]`` — the snapshot values.
    rows: List[List[Any]] = field(default_factory=list)
    #: Steps each replicate's *single* session took over the whole
    #: schedule (per-walker steps for MultipleRW).  A budget sweep that
    #: re-walked per point would show ~``sum_i steps_i`` here; the
    #: engine shows the final checkpoint's step count.
    steps_taken: List[int] = field(default_factory=list)
    pooled: bool = False

    @property
    def replicates(self) -> int:
        return len(self.rows)

    @property
    def sessions_started(self) -> int:
        """Sessions opened == replicates: one walk per replicate."""
        return len(self.rows)

    def total_steps(self) -> int:
        return sum(self.steps_taken)

    def _index_of(self, checkpoint: Optional[float]) -> int:
        if checkpoint is None:
            return len(self.checkpoints) - 1
        return self.checkpoints.index(float(checkpoint))

    def measurements(self, checkpoint: Optional[float] = None) -> List[Any]:
        """The replicate-ordered column at one checkpoint (default:
        the final one)."""
        position = self._index_of(checkpoint)
        return [row[position] for row in self.rows]


@dataclass
class PlanResult:
    """Everything :func:`run_plan` produced, method by method."""

    title: str
    replicates: int
    graph: Any
    procs: Optional[int] = None
    executor: Optional[str] = None
    methods: Dict[str, MethodRun] = field(default_factory=dict)

    def run(self, method: str) -> MethodRun:
        return self.methods[method]

    def measurements(
        self, method: str, checkpoint: Optional[float] = None
    ) -> List[Any]:
        return self.methods[method].measurements(checkpoint)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _replicate_anytime(
    sampler: Any,
    graph: Any,
    checkpoints: List[float],
    replicates: int,
    seed: int,
    starter: Starter,
    schedule: str,
    backend: Optional[Backend],
) -> Iterator[Tuple[List[Any], int]]:
    """In-process anytime replication: one session per replicate,
    drained at every checkpoint through the same
    :func:`~repro.sampling.session.drain_session_checkpoints` loop the
    pooled workers run.  Yields ``(increments, steps)`` rows lazily in
    replicate order, so the consumer holds one replicate's trace at a
    time.  The backend context wraps each replicate's session (the
    default backend is only read at ``sampler.start``), not the
    suspended generator frame."""
    for index in range(replicates):
        context = (
            use_backend(backend) if backend is not None else nullcontext()
        )
        with context:
            session = starter(sampler, graph, seed, index)
            row = drain_session_checkpoints(session, schedule, checkpoints)
        yield row


def _replicate_anytime_fused(
    sampler: Any,
    graph: Any,
    checkpoints: List[float],
    replicates: int,
    seed: int,
    starter: Starter,
    schedule: str,
    backend: Optional[Backend],
    accumulator_factory: Callable[[], Any],
    snapshot: Callable[[str, Any, float], Any],
    method: str,
) -> Iterator[Tuple[List[Any], int]]:
    """Fused anytime replication: ``advance_into`` instead of drain.

    The checkpoint loop mirrors :func:`~repro.sampling.session.
    drain_session_checkpoints` step for step (``steps`` schedules
    advance by ``checkpoint - steps_taken``, ``budget`` schedules by
    the checkpoint itself), but hands each checkpoint's statistics to
    the accumulator as a fused block rather than materializing an
    O(steps) trace increment.  Block absorption happens at the same
    per-checkpoint boundaries the drain path updates at, so the rows
    are bit-identical — fusion is a memory/speed knob, never a
    statistics change.  Yields ``(snapshot_row, steps)`` in replicate
    order.  Sessions opened by custom starters that predate
    ``advance_into`` fall back to the drain loop per replicate.
    """
    for index in range(replicates):
        context = (
            use_backend(backend) if backend is not None else nullcontext()
        )
        with context:
            session = starter(sampler, graph, seed, index)
            accumulator = accumulator_factory()
            row: List[Any] = []
            if getattr(session, "advance_into", None) is None:
                increments, steps = drain_session_checkpoints(
                    session, schedule, checkpoints
                )
                for checkpoint, increment in zip(checkpoints, increments):
                    accumulator.update(increment)
                    row.append(snapshot(method, accumulator, checkpoint))
            else:
                try:
                    for checkpoint in checkpoints:
                        if schedule == "steps":
                            session.advance_into(
                                accumulator,
                                steps=max(
                                    0,
                                    int(checkpoint) - session.steps_taken,
                                ),
                            )
                        else:
                            session.advance_into(
                                accumulator, budget=checkpoint
                            )
                        row.append(snapshot(method, accumulator, checkpoint))
                    steps = int(session.steps_taken)
                finally:
                    closer = getattr(session, "close", None)
                    if closer is not None:
                        closer()
        yield row, steps


def run_plan(
    plan: ExperimentPlan,
    replicates: int,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> PlanResult:
    """Execute ``plan`` with ``replicates`` independent sessions per
    method.

    ``procs=None`` replicates in-process on ``plan.backend`` (the
    historical driver behavior).  ``procs >= 1`` runs pool-capable
    samplers over shared CSR buffers — inline for ``procs == 1``,
    otherwise fanned out by ``executor``: ``"spawn"`` (the default)
    ships sessions to worker processes, ``"thread"`` drives them from
    a thread pool over the in-process graph (no spill, no pickling;
    the native kernels release the GIL), ``"auto"`` picks threads
    exactly when they can scale (see
    :func:`repro.sampling.sharded.resolve_executor`).  Results are
    bit-identical for every ``procs`` value and executor at a fixed
    seed.  Accumulation and snapshots always run in the parent
    process, in replicate order.
    """
    graph = plan.resolve_graph()
    methods = plan.methods()
    if methods and replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    if executor is not None:
        if procs is None:
            raise ValueError(
                "executor selects how the procs fan-out runs; pass"
                " procs=N alongside executor"
            )
        from repro.sampling.sharded import resolve_executor

        resolve_executor(executor)  # reject bad names before running
    if procs is not None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if plan.backend == "list":
            raise ValueError(
                "procs fan-out runs sessions over shared CSR buffers;"
                " a backend='list' plan cannot be pooled — use"
                " procs=None (or backend='csr')"
            )
    result = PlanResult(
        title=plan.title,
        replicates=replicates,
        graph=graph,
        procs=procs,
        executor=executor,
    )
    snapshot = plan.snapshot_hook()
    pool = None
    try:
        for method_index, method in enumerate(methods):
            sampler = plan.samplers[method]
            checkpoints = plan.checkpoints_for(method)
            seed = plan.seed_for(method, method_index)
            starter = plan.starter_for(method)
            pooled = procs is not None and _pool_capable(sampler)
            # The fused path engages only for in-process replication of
            # plans whose every accumulator part can absorb fused
            # blocks (probed on a throwaway accumulator); pooled runs
            # keep the drain loop — their workers already stream
            # increments back, and the drain path is bit-identical.
            fused = (
                not pooled
                and not fusion_disabled()
                and merge_needs((plan.accumulator_for(method),)) is not None
            )
            run = MethodRun(
                method=method, checkpoints=checkpoints, pooled=pooled
            )
            if pooled:
                if pool is None:
                    from repro.sampling.sharded import ShardedSessionPool

                    pool = ShardedSessionPool(
                        graph, procs=procs, executor=executor
                    )
                raw = pool.run_anytime(
                    sampler,
                    checkpoints,
                    replicates,
                    root_seed=seed,
                    schedule=plan.schedule,
                    starter=starter,
                    lazy=True,
                )
            elif fused:
                for row, steps in _replicate_anytime_fused(
                    sampler,
                    graph,
                    checkpoints,
                    replicates,
                    seed,
                    starter,
                    plan.schedule,
                    plan.backend,
                    partial(plan.accumulator_for, method),
                    snapshot,
                    method,
                ):
                    run.rows.append(row)
                    run.steps_taken.append(int(steps))
                result.methods[method] = run
                continue
            else:
                raw = _replicate_anytime(
                    sampler,
                    graph,
                    checkpoints,
                    replicates,
                    seed,
                    starter,
                    plan.schedule,
                    plan.backend,
                )
            for increments, steps in raw:
                accumulator = plan.accumulator_for(method)
                row: List[Any] = []
                for checkpoint, increment in zip(checkpoints, increments):
                    accumulator.update(increment)
                    row.append(snapshot(method, accumulator, checkpoint))
                run.rows.append(row)
                run.steps_taken.append(int(steps))
            result.methods[method] = run
    finally:
        if pool is not None:
            pool.close()
    return result


# ----------------------------------------------------------------------
# the bare replication primitives (what experiments.runner wraps)
# ----------------------------------------------------------------------
def map_replicates(
    run: Callable[[random.Random], Any],
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[Any]:
    """``[run(child_rng(root_seed, i)) for i in range(runs)]`` with an
    optional pinned backend — the engine's bare in-process replication
    core.  Prefer :func:`run_plan` for experiments; this primitive
    exists for ad-hoc Monte Carlo loops."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    context = use_backend(backend) if backend is not None else nullcontext()
    with context:
        return [run(child_rng(root_seed, index)) for index in range(runs)]


def map_incremental(
    start: Callable[[random.Random], Any],
    measure: Callable[[Any, float], Any],
    budgets: Checkpoints,
    runs: int,
    root_seed: int = 0,
    backend: Optional[Backend] = None,
) -> List[List[Any]]:
    """Anytime replication over caller-managed sessions.

    For each of ``runs`` child streams, ``start(rng)`` opens a session
    (anything with ``advance_budget``), which is advanced through the
    ascending ``budgets``; ``measure(session, budget)`` records each
    checkpoint.  Prefer :func:`run_plan` (it adds draining, pooled
    fan-out and step accounting); this primitive backs
    ``experiments.runner.replicate_incremental``.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    checkpoints = [float(b) for b in budgets]
    if not checkpoints:
        raise ValueError("budgets must be non-empty")
    if any(b > a for b, a in zip(checkpoints, checkpoints[1:])):
        raise ValueError(f"budgets must be non-decreasing, got {budgets}")
    context = use_backend(backend) if backend is not None else nullcontext()
    results: List[List[Any]] = []
    with context:
        for index in range(runs):
            session = start(child_rng(root_seed, index))
            row: List[Any] = []
            for budget in checkpoints:
                session.advance_budget(budget)
                row.append(measure(session, budget))
            results.append(row)
    return results
