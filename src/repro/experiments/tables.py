"""Drivers for Tables 1–4 of the paper.

Each function regenerates one table on the synthetic stand-ins; the
returned result object renders the same rows the paper reports.
Budgets default to a larger fraction of |V| than the paper's because
the stand-ins are ~100x smaller (see EXPERIMENTS.md for the scaling
argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.registry import (
    Dataset,
    flickr_like,
    gab,
    hepth_like,
    internet_rlt_like,
    livejournal_like,
    youtube_like,
)
from repro.estimators.assortativity import assortativity_from_trace
from repro.estimators.clustering import global_clustering_from_trace
from repro.experiments.engine import ExperimentPlan, run_plan
from repro.experiments.render import format_float, render_table
from repro.graph.components import largest_connected_component
from repro.graph.summary import GraphSummary
from repro.metrics.errors import nmse, relative_bias
from repro.metrics.exact import (
    true_global_clustering,
    true_undirected_assortativity,
)
from repro.sampling.base import Backend, Sampler
from repro.sampling.frontier import FrontierSampler
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk


# ----------------------------------------------------------------------
# Table 1 — dataset summary
# ----------------------------------------------------------------------
@dataclass
class Table1Result:
    summaries: List[GraphSummary]

    def render(self) -> str:
        lines = ["Table 1 — dataset stand-in summary", GraphSummary.header()]
        lines.extend(s.as_row() for s in self.summaries)
        return "\n".join(lines)


def table1(scale: float = 1.0) -> Table1Result:
    """Regenerate Table 1 for every stand-in dataset.

    Descriptive (no replication): its engine plans carry empty sampler
    grids — the engine resolves each dataset factory and the exact
    summary is read off the resolved graph.
    """
    factories = [
        ("flickr-like", flickr_like),
        ("livejournal-like", livejournal_like),
        ("youtube-like", youtube_like),
        ("internet-rlt-like", internet_rlt_like),
        ("hepth-like", hepth_like),
        ("gab", gab),
    ]
    summaries = []
    for name, factory in factories:
        plan = ExperimentPlan(
            title=f"Table 1 ({name})",
            graph=lambda factory=factory: factory(scale),
            samplers={},
        )
        dataset = run_plan(plan, replicates=0).graph
        summaries.append(dataset.summary())
    return Table1Result(summaries)


# ----------------------------------------------------------------------
# Table 2 — assortative mixing coefficient
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    graph_name: str
    true_r: float
    bias: Dict[str, float]
    error: Dict[str, float]


@dataclass
class Table2Result:
    rows: List[Table2Row]
    budget_fraction: float
    runs: int

    def render(self) -> str:
        methods = sorted(self.rows[0].bias) if self.rows else []
        headers = ["Graph", "r"] + [
            f"{m} {stat}" for m in methods for stat in ("bias", "NMSE")
        ]
        body = []
        for row in self.rows:
            cells = [row.graph_name, format_float(row.true_r)]
            for m in methods:
                cells.append(f"{100 * row.bias[m]:.1f}%")
                cells.append(format_float(row.error[m], 2))
            body.append(cells)
        return render_table(
            "Table 2 — assortativity estimates"
            f" (B=|V|*{self.budget_fraction}, {self.runs} runs)",
            headers,
            body,
        )


def _scalar_trace_plan(
    title: str,
    graph,
    samplers: Dict[str, Sampler],
    budget: float,
    seed: int,
    estimate,
    backend: Optional[Backend],
) -> ExperimentPlan:
    """A one-budget plan whose snapshot runs a batch whole-trace
    estimator over the replicate's collected trace.

    Every method replicates on the *same* child streams (the
    historical tables drew one stream per ``(dataset, run)`` shared by
    all methods), hence the constant ``method_seed``.
    """

    def snapshot(method: str, collector, checkpoint: float) -> float:
        return estimate(collector.trace())

    return ExperimentPlan(
        title=title,
        graph=graph,
        samplers=samplers,
        budgets=[float(budget)],
        snapshot=snapshot,
        backend=backend,
        method_seed={method: seed for method in samplers},
    )


def table2(
    scale: float = 1.0,
    runs: int = 100,
    budget_fraction: float = 0.1,
    dimension: int = 100,
    root_seed: int = 2,
    datasets: Optional[List[Dataset]] = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Table2Result:
    """Regenerate Table 2: assortativity bias and NMSE per method.

    The paper treats every graph as undirected here (Section 6.1), so
    the target is the symmetric degree-degree correlation.  Each
    (dataset, method) cell replicates through the engine; ``procs``
    fans the replicates across worker processes.
    """
    if datasets is None:
        datasets = [
            flickr_like(scale),
            livejournal_like(scale),
            internet_rlt_like(scale),
            youtube_like(scale),
            gab(scale),
        ]
    result = Table2Result(rows=[], budget_fraction=budget_fraction, runs=runs)
    for dataset_index, dataset in enumerate(datasets):
        graph = dataset.graph
        truth = true_undirected_assortativity(graph)
        budget = max(4 * dimension, int(graph.num_vertices * budget_fraction))
        samplers: Dict[str, Sampler] = {
            "FS": FrontierSampler(dimension),
            "MultipleRW": MultipleRandomWalk(dimension),
            "SingleRW": SingleRandomWalk(),
        }
        plan = _scalar_trace_plan(
            f"Table 2 — assortativity ({dataset.name})",
            graph,
            samplers,
            budget,
            root_seed + 104729 * dataset_index,
            lambda trace: assortativity_from_trace(graph, trace),
            backend,
        )
        outcome = run_plan(plan, runs, procs=procs, executor=executor)
        bias: Dict[str, float] = {}
        error: Dict[str, float] = {}
        for method in samplers:
            estimates = outcome.measurements(method)
            if truth == 0:
                # Degenerate truth; report raw mean as bias proxy.
                bias[method] = sum(estimates) / len(estimates)
                error[method] = float("nan")
            else:
                bias[method] = relative_bias(estimates, truth)
                error[method] = nmse(estimates, truth)
        result.rows.append(
            Table2Row(
                graph_name=dataset.name,
                true_r=truth,
                bias=bias,
                error=error,
            )
        )
    return result


# ----------------------------------------------------------------------
# Table 3 — global clustering coefficient
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    graph_name: str
    true_c: float
    mean_estimate: Dict[str, float]
    error: Dict[str, float]


@dataclass
class Table3Result:
    rows: List[Table3Row]
    budget_fraction: float
    runs: int

    def render(self) -> str:
        methods = sorted(self.rows[0].mean_estimate) if self.rows else []
        headers = ["Graph", "C"] + [
            f"{m} {stat}" for m in methods for stat in ("E[C^]", "NMSE")
        ]
        body = []
        for row in self.rows:
            cells = [row.graph_name, format_float(row.true_c, 3)]
            for m in methods:
                cells.append(format_float(row.mean_estimate[m], 3))
                cells.append(format_float(row.error[m], 2))
            body.append(cells)
        return render_table(
            "Table 3 — global clustering estimates"
            f" (B=|V|*{self.budget_fraction}, {self.runs} runs)",
            headers,
            body,
        )


def table3(
    scale: float = 1.0,
    runs: int = 100,
    budget_fraction: float = 0.1,
    dimension: int = 100,
    root_seed: int = 3,
    datasets: Optional[List[Dataset]] = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Table3Result:
    """Regenerate Table 3: E[C_hat] and NMSE on Flickr and LiveJournal
    stand-ins for FS, SingleRW and MultipleRW.  Replicates run through
    the engine; ``procs`` fans them across worker processes."""
    if datasets is None:
        datasets = [flickr_like(scale), livejournal_like(scale)]
    result = Table3Result(rows=[], budget_fraction=budget_fraction, runs=runs)
    for dataset_index, dataset in enumerate(datasets):
        graph = dataset.graph
        truth = true_global_clustering(graph)
        budget = max(4 * dimension, int(graph.num_vertices * budget_fraction))
        samplers: Dict[str, Sampler] = {
            "FS": FrontierSampler(dimension),
            "MultipleRW": MultipleRandomWalk(dimension),
            "SingleRW": SingleRandomWalk(),
        }
        plan = _scalar_trace_plan(
            f"Table 3 — clustering ({dataset.name})",
            graph,
            samplers,
            budget,
            root_seed + 15485863 * dataset_index,
            lambda trace: global_clustering_from_trace(graph, trace),
            backend,
        )
        outcome = run_plan(plan, runs, procs=procs, executor=executor)
        means: Dict[str, float] = {}
        errors: Dict[str, float] = {}
        for method in samplers:
            estimates = outcome.measurements(method)
            means[method] = sum(estimates) / len(estimates)
            errors[method] = nmse(estimates, truth)
        result.rows.append(
            Table3Row(
                graph_name=dataset.name,
                true_c=truth,
                mean_estimate=means,
                error=errors,
            )
        )
    return result


# ----------------------------------------------------------------------
# Table 4 — convergence to uniform edge sampling (Appendix B)
# ----------------------------------------------------------------------
@dataclass
class Table4Row:
    graph_name: str
    budget: int
    gaps: Dict[str, float]


@dataclass
class Table4Result:
    rows: List[Table4Row]
    num_walkers: int
    mc_runs: int

    def render(self) -> str:
        methods = sorted(self.rows[0].gaps) if self.rows else []
        headers = ["Graph", "B"] + methods
        body = [
            [row.graph_name, str(row.budget)]
            + [f"{100 * row.gaps[m]:.0f}%" for m in methods]
            for row in self.rows
        ]
        return render_table(
            "Table 4 — worst-case transient vs stationary edge sampling"
            f" probability (K={self.num_walkers}, FS via {self.mc_runs}"
            " Monte Carlo runs)",
            headers,
            body,
        )


def _table4_graphs(size: int, seed: int):
    """Miniature LCCs mirroring the paper's three smallest datasets.

    Exact transient propagation and a reliable Monte Carlo estimate of
    a *max* statistic both require small graphs (the Monte Carlo needs
    runs >> vol * log(vol)); the paper likewise restricted Table 4 to
    its three smallest graphs "to speed the computation".
    """
    from repro.generators.ba import barabasi_albert
    from repro.generators.configuration import (
        configuration_model,
        power_law_degree_sequence,
    )
    from repro.generators.social import SocialGraphSpec, social_network
    from repro.util.rng import ensure_rng

    rng = ensure_rng(seed)
    # Sparse shortcuts keep the PA tree slow-mixing (the paper's RLT
    # graph is far from mixed at B=100) while breaking bipartiteness.
    internet = barabasi_albert(size, 1, rng=rng)
    shortcuts = int(0.25 * size)
    added = attempts = 0
    while added < shortcuts and attempts < 100 * shortcuts:
        u = rng.randrange(size)
        v = rng.randrange(size)
        attempts += 1
        if u != v and internet.add_edge(u, v):
            added += 1

    youtube_spec = SocialGraphSpec(
        num_vertices=max(15, int(size * 0.85)),
        out_exponent=2.1,
        in_exponent=2.0,
        min_degree=1,
        dust_components=0,
    )
    youtube_digraph, _ = social_network(youtube_spec, rng=rng)
    youtube = youtube_digraph.to_symmetric()

    hepth_degrees = power_law_degree_sequence(
        max(15, int(size * 1.05)), 2.2, min_degree=1, max_degree=10, rng=rng
    )
    hepth = configuration_model(hepth_degrees, rng=rng)

    return {
        "internet-rlt-mini": internet,
        "youtube-mini": youtube,
        "hepth-mini": hepth,
    }


def _final_edge_snapshot(method: str, collector, checkpoint: float):
    """The replicate's last sampled edge (``None`` for empty traces)."""
    edges = collector.trace().edges
    if not edges:
        return None
    u, v = edges[-1]
    return (int(u), int(v))


def table4(
    graph_size: int = 150,
    num_walkers: int = 10,
    mc_runs: int = 50_000,
    root_seed: int = 4,
    budgets: Optional[Dict[str, int]] = None,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> Table4Result:
    """Regenerate Table 4 on miniature LCCs of the three smallest
    stand-ins.

    All three gaps are Monte Carlo estimates over full traces (as in
    the paper), so the upward bias of estimating a *max* statistic from
    finite runs cancels across methods.  Budgets use the paper's K=10
    and B in {20, 30}, chosen so the budget stays far below the mixing
    time — the regime Table 4 probes on its 10^5-10^6-vertex graphs.

    The Monte Carlo runs through the engine: every replicate's final
    sampled edge is the snapshot, and
    :func:`repro.markov.transient.final_edge_gap_from_edges`
    aggregates them; ``procs`` fans the (many) replicates across
    worker processes.
    """
    from repro.markov.transient import final_edge_gap_from_edges

    if budgets is None:
        budgets = {
            "internet-rlt-mini": 3 * num_walkers,
            "youtube-mini": 2 * num_walkers,
            "hepth-mini": 2 * num_walkers,
        }
    graphs = _table4_graphs(graph_size, root_seed + 97)
    result = Table4Result(rows=[], num_walkers=num_walkers, mc_runs=mc_runs)
    samplers = {
        "FS": FrontierSampler(num_walkers),
        "MRW": MultipleRandomWalk(num_walkers),
        "SRW": SingleRandomWalk(),
    }
    method_seed = {
        method: root_seed + 31 * method_index
        for method_index, method in enumerate(samplers)
    }
    for name, budget in budgets.items():
        lcc, _ = largest_connected_component(graphs[name])
        plan = ExperimentPlan(
            title=f"Table 4 ({name})",
            graph=lcc,
            samplers=samplers,
            budgets=[float(budget)],
            snapshot=_final_edge_snapshot,
            method_seed=method_seed,
            backend=backend,
        )
        outcome = run_plan(plan, mc_runs, procs=procs, executor=executor)
        gaps: Dict[str, float] = {
            method: final_edge_gap_from_edges(
                lcc, outcome.measurements(method)
            )
            for method in samplers
        }
        result.rows.append(
            Table4Row(graph_name=name, budget=budget, gaps=gaps)
        )
    return result
