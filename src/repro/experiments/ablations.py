"""Ablations beyond the paper's printed artifacts.

These probe the design choices DESIGN.md calls out:

- ``dimension_sweep`` — FS error as a function of the frontier
  dimension ``m`` (Theorem 5.4 says the uniform-seeding advantage grows
  with m; m=1 degenerates to SingleRW).
- ``walker_selection_ablation`` — Algorithm 1's degree-proportional
  walker choice vs a uniform walker choice (breaking the G^m
  equivalence), showing line 4 is load-bearing.
- ``metropolis_vs_rw`` — the Section 7 claim that the reweighted RW
  estimator beats the Metropolis-Hastings walk for degree
  distributions.
- ``fs_vs_distributed`` — FS and its exponential-clock realization
  (Theorem 5.5) produce statistically indistinguishable estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.datasets.registry import flickr_like, gab
from repro.experiments.degree_errors import degree_error_experiment
from repro.experiments.render import format_float, render_table
from repro.estimators.degree import (
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.metrics.errors import nmse
from repro.metrics.exact import true_degree_pmf
from repro.sampling.distributed import DistributedFrontierSampler
from repro.sampling.frontier import FrontierSampler
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.single import SingleRandomWalk
from repro.util.rng import child_rng


@dataclass
class SweepResult:
    """Scalar error per configuration, with a rendered table."""

    title: str
    errors: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [name, format_float(value, 4)]
            for name, value in self.errors.items()
        ]
        return render_table(self.title, ["configuration", "mean CNMSE"], rows)


def dimension_sweep(
    scale: float = 0.3,
    runs: int = 40,
    dimensions: Sequence[int] = (1, 4, 16, 64, 256),
    root_seed: int = 901,
) -> SweepResult:
    """FS error on GAB as the frontier dimension grows.

    m=1 is a single random walk; larger m means more (dependent)
    walkers covering the loosely connected halves, and a joint start
    closer to stationarity (Theorem 5.4).
    """
    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        f"FS(m={m})": FrontierSampler(m) for m in dimensions
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        metric="ccdf",
        title="dimension sweep",
    )
    sweep = SweepResult(
        title=f"FS dimension sweep on GAB (B={budget:.0f}, {runs} runs)"
    )
    for m in dimensions:
        sweep.errors[f"FS(m={m})"] = result.mean_error(f"FS(m={m})")
    return sweep


def walker_selection_ablation(
    scale: float = 0.3,
    runs: int = 40,
    dimension: int = 64,
    root_seed: int = 902,
) -> SweepResult:
    """Degree-proportional vs uniform walker selection in FS.

    The uniform variant is *not* a random walk on G^m: it no longer
    samples the edge frontier uniformly, so its stationary law is
    biased and its error should be visibly worse.
    """
    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        "FS(degree selection)": FrontierSampler(dimension),
        "FS(uniform selection)": FrontierSampler(
            dimension, walker_selection="uniform"
        ),
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        metric="ccdf",
        title="walker selection",
    )
    sweep = SweepResult(
        title=f"Algorithm 1 line 4 ablation on GAB (m={dimension})"
    )
    for name in samplers:
        sweep.errors[name] = result.mean_error(name)
    return sweep


def metropolis_vs_rw(
    scale: float = 0.3,
    runs: int = 40,
    root_seed: int = 903,
) -> SweepResult:
    """Degree-pmf NMSE: reweighted RW estimator vs Metropolis walk.

    Both walks get the same budget on the Flickr LCC.  The MH walk
    samples vertices uniformly, so its estimator is the plain
    empirical pmf over visited vertices; the RW uses eq. (7).  The
    literature ([15, 29] via Section 7) finds RW at least as accurate —
    chiefly because MH wastes budget on rejected moves.
    """
    from repro.graph.components import largest_connected_component

    dataset = flickr_like(scale)
    lcc, _ = largest_connected_component(dataset.graph)
    budget = lcc.num_vertices / 2.5
    truth = true_degree_pmf(lcc)
    probe = [
        k for k, v in sorted(truth.items(), key=lambda kv: -kv[1])[:8] if v > 0
    ]
    rw_estimates: Dict[int, List[float]] = {k: [] for k in probe}
    mh_estimates: Dict[int, List[float]] = {k: [] for k in probe}
    rw = SingleRandomWalk()
    mh = MetropolisHastingsWalk()
    for run in range(runs):
        rw_trace = rw.sample(lcc, budget, child_rng(root_seed, run))
        rw_pmf = degree_pmf_from_trace(lcc, rw_trace)
        mh_trace = mh.sample(lcc, budget, child_rng(root_seed + 1, run))
        mh_pmf = degree_pmf_from_vertices(mh_trace.visited, lcc.degree)
        for k in probe:
            rw_estimates[k].append(rw_pmf.get(k, 0.0))
            mh_estimates[k].append(mh_pmf.get(k, 0.0))
    sweep = SweepResult(
        title="RW (eq. 7) vs Metropolis-Hastings walk"
        f" (flickr-like LCC, B={budget:.0f})"
    )
    sweep.errors["RW + eq.(7)"] = sum(
        nmse(rw_estimates[k], truth[k]) for k in probe
    ) / len(probe)
    sweep.errors["Metropolis-Hastings"] = sum(
        nmse(mh_estimates[k], truth[k]) for k in probe
    ) / len(probe)
    return sweep


def burn_in_ablation(
    scale: float = 0.3,
    runs: int = 40,
    burn_ins: Sequence[int] = (0, 50, 200),
    root_seed: int = 905,
) -> SweepResult:
    """Does discarding a burn-in rescue SingleRW on a trappable graph?

    Section 4.3's point: burn-in only addresses non-stationarity, not
    trapping — a walker stuck on one side of GAB stays stuck no matter
    how many initial samples are discarded, and the discarded samples
    are paid for.  FS without any burn-in should beat SingleRW at every
    burn-in level.
    """
    from repro.sampling.burnin import discard_burn_in
    from repro.estimators.degree import degree_ccdf_from_trace
    from repro.metrics.errors import nmse_curve
    from repro.metrics.exact import true_degree_ccdf

    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    truth = true_degree_ccdf(graph)
    sweep = SweepResult(
        title=f"Burn-in ablation on GAB (B={budget:.0f}, {runs} runs)"
    )

    def mean_cnmse(estimates):
        curve = nmse_curve(estimates, truth)
        return sum(curve.values()) / len(curve)

    single = SingleRandomWalk()
    for burn in burn_ins:
        estimates = []
        for run in range(runs):
            trace = single.sample(graph, budget, child_rng(root_seed, run))
            burned = discard_burn_in(trace, burn)
            try:
                estimates.append(degree_ccdf_from_trace(graph, burned))
            except ValueError:
                estimates.append({})
        sweep.errors[f"SingleRW(burn-in={burn})"] = mean_cnmse(estimates)

    fs = FrontierSampler(64)
    estimates = []
    for run in range(runs):
        trace = fs.sample(graph, budget, child_rng(root_seed + 1, run))
        estimates.append(degree_ccdf_from_trace(graph, trace))
    sweep.errors["FS(m=64, no burn-in)"] = mean_cnmse(estimates)
    return sweep


def fs_vs_distributed(
    scale: float = 0.3,
    runs: int = 40,
    dimension: int = 64,
    root_seed: int = 904,
) -> SweepResult:
    """FS vs its exponential-clock realization (Theorem 5.5)."""
    dataset = flickr_like(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        "FS (Algorithm 1)": FrontierSampler(dimension),
        "Distributed FS": DistributedFrontierSampler(dimension),
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="fs vs dfs",
    )
    sweep = SweepResult(
        title=f"Theorem 5.5: centralized vs distributed FS (m={dimension})"
    )
    for name in samplers:
        sweep.errors[name] = result.mean_error(name)
    return sweep
