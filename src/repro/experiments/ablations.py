"""Ablations beyond the paper's printed artifacts.

These probe the design choices DESIGN.md calls out:

- ``dimension_sweep`` — FS error as a function of the frontier
  dimension ``m`` (Theorem 5.4 says the uniform-seeding advantage grows
  with m; m=1 degenerates to SingleRW).
- ``walker_selection_ablation`` — Algorithm 1's degree-proportional
  walker choice vs a uniform walker choice (breaking the G^m
  equivalence), showing line 4 is load-bearing.
- ``metropolis_vs_rw`` — the Section 7 claim that the reweighted RW
  estimator beats the Metropolis-Hastings walk for degree
  distributions.
- ``fs_vs_distributed`` — FS and its exponential-clock realization
  (Theorem 5.5) produce statistically indistinguishable estimates.

Every sweep replicates through the experiment engine
(:func:`~repro.experiments.engine.run_plan`): ``procs`` fans the
replicates of pool-capable samplers across worker processes, and the
burn-in ablation now walks each SingleRW replicate ONCE, scoring all
burn-in levels against the same trace (the levels previously re-walked
identical traces per level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import flickr_like, gab
from repro.experiments.degree_errors import degree_error_experiment
from repro.experiments.engine import ExperimentPlan, run_plan
from repro.experiments.render import format_float, render_table
from repro.estimators.degree import (
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.metrics.errors import nmse
from repro.metrics.exact import true_degree_pmf
from repro.sampling.base import Backend
from repro.sampling.distributed import DistributedFrontierSampler
from repro.sampling.frontier import FrontierSampler
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.single import SingleRandomWalk


@dataclass
class SweepResult:
    """Scalar error per configuration, with a rendered table."""

    title: str
    errors: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [name, format_float(value, 4)]
            for name, value in self.errors.items()
        ]
        return render_table(self.title, ["configuration", "mean CNMSE"], rows)


def dimension_sweep(
    scale: float = 0.3,
    runs: int = 40,
    dimensions: Sequence[int] = (1, 4, 16, 64, 256),
    root_seed: int = 901,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """FS error on GAB as the frontier dimension grows.

    m=1 is a single random walk; larger m means more (dependent)
    walkers covering the loosely connected halves, and a joint start
    closer to stationarity (Theorem 5.4).
    """
    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        f"FS(m={m})": FrontierSampler(m) for m in dimensions
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        metric="ccdf",
        title="dimension sweep",
        backend=backend,
        procs=procs,
        executor=executor,
    )
    sweep = SweepResult(
        title=f"FS dimension sweep on GAB (B={budget:.0f}, {runs} runs)"
    )
    for m in dimensions:
        sweep.errors[f"FS(m={m})"] = result.mean_error(f"FS(m={m})")
    return sweep


def walker_selection_ablation(
    scale: float = 0.3,
    runs: int = 40,
    dimension: int = 64,
    root_seed: int = 902,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Degree-proportional vs uniform walker selection in FS.

    The uniform variant is *not* a random walk on G^m: it no longer
    samples the edge frontier uniformly, so its stationary law is
    biased and its error should be visibly worse.
    """
    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        "FS(degree selection)": FrontierSampler(dimension),
        "FS(uniform selection)": FrontierSampler(
            dimension, walker_selection="uniform"
        ),
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        metric="ccdf",
        title="walker selection",
        backend=backend,
        procs=procs,
        executor=executor,
    )
    sweep = SweepResult(
        title=f"Algorithm 1 line 4 ablation on GAB (m={dimension})"
    )
    for name in samplers:
        sweep.errors[name] = result.mean_error(name)
    return sweep


def metropolis_vs_rw(
    scale: float = 0.3,
    runs: int = 40,
    root_seed: int = 903,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Degree-pmf NMSE: reweighted RW estimator vs Metropolis walk.

    Both walks get the same budget on the Flickr LCC.  The MH walk
    samples vertices uniformly, so its estimator is the plain
    empirical pmf over visited vertices; the RW uses eq. (7).  The
    literature ([15, 29] via Section 7) finds RW at least as accurate —
    chiefly because MH wastes budget on rejected moves.
    """
    from repro.graph.components import largest_connected_component

    dataset = flickr_like(scale)
    lcc, _ = largest_connected_component(dataset.graph)
    budget = lcc.num_vertices / 2.5
    truth = true_degree_pmf(lcc)
    probe = [
        k for k, v in sorted(truth.items(), key=lambda kv: -kv[1])[:8] if v > 0
    ]
    rw_name, mh_name = "RW + eq.(7)", "Metropolis-Hastings"

    def snapshot(method: str, collector, checkpoint: float) -> List[float]:
        trace = collector.trace()
        if method == mh_name:
            pmf = degree_pmf_from_vertices(trace.visited, lcc.degree)
        else:
            pmf = degree_pmf_from_trace(lcc, trace)
        return [pmf.get(k, 0.0) for k in probe]

    plan = ExperimentPlan(
        title="RW vs Metropolis-Hastings",
        graph=lcc,
        samplers={
            rw_name: SingleRandomWalk(),
            mh_name: MetropolisHastingsWalk(),
        },
        budgets=[budget],
        snapshot=snapshot,
        method_seed={rw_name: root_seed, mh_name: root_seed + 1},
        backend=backend,
    )
    outcome = run_plan(plan, runs, procs=procs, executor=executor)
    sweep = SweepResult(
        title="RW (eq. 7) vs Metropolis-Hastings walk"
        f" (flickr-like LCC, B={budget:.0f})"
    )
    for method in (rw_name, mh_name):
        rows = outcome.measurements(method)
        sweep.errors[method] = sum(
            nmse([row[j] for row in rows], truth[k])
            for j, k in enumerate(probe)
        ) / len(probe)
    return sweep


def burn_in_ablation(
    scale: float = 0.3,
    runs: int = 40,
    burn_ins: Sequence[int] = (0, 50, 200),
    root_seed: int = 905,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Does discarding a burn-in rescue SingleRW on a trappable graph?

    Section 4.3's point: burn-in only addresses non-stationarity, not
    trapping — a walker stuck on one side of GAB stays stuck no matter
    how many initial samples are discarded, and the discarded samples
    are paid for.  FS without any burn-in should beat SingleRW at every
    burn-in level.

    Each SingleRW replicate walks once; every burn-in level is scored
    against that one trace (the pre-engine driver re-walked an
    identical trace per level — same numbers, len(burn_ins)x the
    walking).
    """
    from repro.sampling.base import WalkTrace
    from repro.sampling.burnin import discard_burn_in
    from repro.estimators.degree import degree_ccdf_from_trace
    from repro.metrics.errors import nmse_curve
    from repro.metrics.exact import true_degree_ccdf

    dataset = gab(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    truth = true_degree_ccdf(graph)
    sweep = SweepResult(
        title=f"Burn-in ablation on GAB (B={budget:.0f}, {runs} runs)"
    )
    levels = list(burn_ins)
    single_name, fs_name = "SingleRW", "FS(m=64, no burn-in)"

    def snapshot(method: str, collector, checkpoint: float):
        trace = collector.trace()
        if method == fs_name:
            return degree_ccdf_from_trace(graph, trace)
        if type(trace) is not WalkTrace:
            # Array-backed traces are not plain dataclasses, which
            # dataclasses.replace (inside discard_burn_in) requires.
            trace = WalkTrace(
                method=trace.method,
                edges=list(trace.edges),
                initial_vertices=list(trace.initial_vertices),
                budget=trace.budget,
                seed_cost=trace.seed_cost,
            )
        by_level = {}
        for burn in levels:
            burned = discard_burn_in(trace, burn)
            try:
                by_level[burn] = degree_ccdf_from_trace(graph, burned)
            except ValueError:
                by_level[burn] = {}
        return by_level

    plan = ExperimentPlan(
        title="burn-in ablation",
        graph=graph,
        samplers={
            single_name: SingleRandomWalk(),
            fs_name: FrontierSampler(64),
        },
        budgets=[budget],
        snapshot=snapshot,
        method_seed={single_name: root_seed, fs_name: root_seed + 1},
        backend=backend,
    )
    outcome = run_plan(plan, runs, procs=procs, executor=executor)

    def mean_cnmse(estimates):
        curve = nmse_curve(estimates, truth)
        return sum(curve.values()) / len(curve)

    single_rows = outcome.measurements(single_name)
    for burn in levels:
        sweep.errors[f"SingleRW(burn-in={burn})"] = mean_cnmse(
            [row[burn] for row in single_rows]
        )
    sweep.errors[fs_name] = mean_cnmse(outcome.measurements(fs_name))
    return sweep


def fs_vs_distributed(
    scale: float = 0.3,
    runs: int = 40,
    dimension: int = 64,
    root_seed: int = 904,
    backend: Optional[Backend] = None,
    procs: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """FS vs its exponential-clock realization (Theorem 5.5).

    :class:`DistributedFrontierSampler` is list-backend-only, so under
    ``procs`` it replicates in-process (with procs-invariant streams)
    while FS fans out — the engine routes each method appropriately.
    """
    dataset = flickr_like(scale)
    graph = dataset.graph
    budget = graph.num_vertices / 2.5
    samplers = {
        "FS (Algorithm 1)": FrontierSampler(dimension),
        "Distributed FS": DistributedFrontierSampler(dimension),
    }
    result = degree_error_experiment(
        graph,
        samplers,
        budget=budget,
        runs=runs,
        root_seed=root_seed,
        degree_of=dataset.in_degree_of,
        metric="ccdf",
        title="fs vs dfs",
        backend=backend,
        procs=procs,
        executor=executor,
    )
    sweep = SweepResult(
        title=f"Theorem 5.5: centralized vs distributed FS (m={dimension})"
    )
    for name in samplers:
        sweep.errors[name] = result.mean_error(name)
    return sweep
