"""Random-walk transition structure on a graph.

Dense row-stochastic matrices as lists of lists — adequate for the
small graphs on which exact chain analysis is feasible, and free of
array dependencies so the core library stays pure Python.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

from repro.graph.graph import Graph

Matrix = List[List[float]]
Distribution = List[float]


def rw_transition_matrix(graph: Graph) -> Matrix:
    """Row-stochastic matrix ``P[u][v] = 1/deg(u)`` for each edge.

    Rows of isolated vertices are all zero (no walk leaves them);
    callers doing spectral work should restrict to a connected
    component first.
    """
    n = graph.num_vertices
    matrix = [[0.0] * n for _ in range(n)]
    for u in graph.vertices():
        deg = graph.degree(u)
        if deg == 0:
            continue
        share = 1.0 / deg
        for v in graph.neighbors(u):
            matrix[u][v] += share
    return matrix


def rw_stationary_distribution(graph: Graph) -> Distribution:
    """``pi(v) = deg(v) / vol(V)`` — exact, no iteration needed."""
    volume = graph.volume()
    if volume == 0:
        raise ValueError("graph has no edges; stationary law is undefined")
    return [graph.degree(v) / volume for v in graph.vertices()]


def step_distribution(graph: Graph, dist: Sequence[float]) -> Distribution:
    """One chain step: ``dist' = dist @ P`` without building ``P``."""
    if len(dist) != graph.num_vertices:
        raise ValueError(
            f"distribution has {len(dist)} entries for"
            f" {graph.num_vertices} vertices"
        )
    out = [0.0] * graph.num_vertices
    for u in graph.vertices():
        mass = dist[u]
        if mass == 0.0:
            continue
        deg = graph.degree(u)
        if deg == 0:
            out[u] += mass  # nowhere to go; mass stays
            continue
        share = mass / deg
        for v in graph.neighbors(u):
            out[v] += share
    return out


def distribution_after(
    graph: Graph, dist: Sequence[float], steps: int
) -> Distribution:
    """Push ``dist`` through ``steps`` chain steps."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    current = list(dist)
    for _ in range(steps):
        current = step_distribution(graph, current)
    return current


def total_variation_distance(
    p: Sequence[float], q: Sequence[float]
) -> float:
    """``(1/2) sum |p_i - q_i|`` over aligned supports."""
    if len(p) != len(q):
        raise ValueError("distributions must have equal length")
    return 0.5 * sum(abs(a - b) for a, b in zip(p, q))


def is_bipartite(graph: Graph) -> bool:
    """BFS 2-coloring; isolated vertices don't affect the answer.

    A connected bipartite graph has a periodic RW — the stationarity
    results require non-bipartiteness (Theorem 5.2's hypothesis).
    """
    color = [-1] * graph.num_vertices
    for start in graph.vertices():
        if color[start] != -1 or graph.degree(start) == 0:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def uniform_distribution(graph: Graph) -> Distribution:
    """Uniform law over all vertices."""
    n = graph.num_vertices
    if n == 0:
        raise ValueError("empty graph")
    return [1.0 / n] * n
