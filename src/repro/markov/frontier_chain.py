"""The FS chain on ``G^m``, built explicitly for verification.

Lemma 5.1: one FS step selects an edge of the *edge frontier* uniformly,
so ``P[L -> L'] = 1 / sum_{v in L} deg(v)`` whenever ``L`` and ``L'``
differ in exactly one coordinate joined by an edge of ``G``.  These
helpers build that chain directly from Algorithm 1's dynamics so tests
can check it coincides with the RW transition matrix of the explicit
Cartesian power (and that Theorem 5.2's stationary law is correct).
"""

from __future__ import annotations

from typing import List

from repro.graph.cartesian import decode_state, encode_state, state_degree
from repro.graph.graph import Graph

Matrix = List[List[float]]
Distribution = List[float]


def frontier_transition_matrix(
    graph: Graph, m: int, max_states: int = 50_000
) -> Matrix:
    """Transition matrix of Algorithm 1 over encoded frontier states.

    Built from the algorithm (pick walker degree-proportionally, then a
    uniform neighbor) rather than from the Cartesian-power graph, so
    comparing it against ``rw_transition_matrix(cartesian_power(G, m))``
    is a genuine check of Lemma 5.1.
    """
    n = graph.num_vertices
    num_states = n**m
    if num_states > max_states:
        raise ValueError(
            f"G^{m} has {num_states} states, above the cap {max_states}"
        )
    matrix = [[0.0] * num_states for _ in range(num_states)]
    for code in range(num_states):
        state = decode_state(code, n, m)
        frontier_volume = state_degree(graph, state)
        if frontier_volume == 0:
            continue
        for i, u in enumerate(state):
            deg_u = graph.degree(u)
            if deg_u == 0:
                continue
            # P(pick walker i) = deg(u)/vol; P(neighbor v) = 1/deg(u).
            move_prob = 1.0 / frontier_volume
            for v in graph.neighbors(u):
                target = encode_state(state[:i] + (v,) + state[i + 1 :], n)
                matrix[code][target] += move_prob
    return matrix


def frontier_stationary_distribution(
    graph: Graph, m: int, max_states: int = 50_000
) -> Distribution:
    """Theorem 5.2(II): ``P[L] = sum_i deg(v_i) / (m |V|^{m-1} vol(V))``."""
    n = graph.num_vertices
    num_states = n**m
    if num_states > max_states:
        raise ValueError(
            f"G^{m} has {num_states} states, above the cap {max_states}"
        )
    volume = graph.volume()
    if volume == 0:
        raise ValueError("graph has no edges; stationary law is undefined")
    denominator = m * (n ** (m - 1)) * volume
    return [
        state_degree(graph, decode_state(code, n, m)) / denominator
        for code in range(num_states)
    ]
