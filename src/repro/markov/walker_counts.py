"""Walker-count distributions over a vertex subset (Sections 5.1–5.2).

For a proper subset ``V_A`` of a connected graph the paper compares
three laws for the number of walkers inside ``V_A``:

- ``Kun(m)`` — of ``m`` *uniformly* seeded walkers: Binomial(m, p),
  ``p = |V_A| / |V|``;
- ``Kfs(m)`` — FS in steady state: Lemma 5.3's size-biased binomial;
- ``Kmw(m)`` — m independent walkers in steady state: Binomial with
  degree-biased success probability ``vol(V_A)/vol(V)``; its mean over
  the uniform mean is ``alpha_A = d_A / d`` (Section 5.1).

Theorem 5.4: ``Kfs(m)`` converges to ``Kun(m)`` as ``m`` grows — the
precise sense in which uniformly seeded FS "starts in steady state".
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.graph.cartesian import decode_state
from repro.graph.graph import Graph
from repro.markov.frontier_chain import frontier_stationary_distribution


def _subset_stats(graph: Graph, subset: Iterable[int]):
    subset_set = set(subset)
    if not subset_set:
        raise ValueError("subset must be non-empty")
    n = graph.num_vertices
    if len(subset_set) >= n:
        raise ValueError("subset must be a proper subset of V")
    for v in subset_set:
        if not 0 <= v < n:
            raise IndexError(f"vertex {v} out of range [0, {n})")
    vol_a = graph.volume(subset_set)
    vol = graph.volume()
    size_a = len(subset_set)
    d_a = vol_a / size_a
    d_b = (vol - vol_a) / (n - size_a)
    d = vol / n
    p = size_a / n
    return subset_set, p, d_a, d_b, d


def kun_pmf(m: int, p: float) -> List[float]:
    """Binomial(m, p) pmf — walkers landing in ``V_A`` under uniform
    seeding."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return [
        math.comb(m, k) * p**k * (1.0 - p) ** (m - k) for k in range(m + 1)
    ]


def kfs_pmf(graph: Graph, subset: Iterable[int], m: int) -> List[float]:
    """Lemma 5.3's closed form for ``P[Kfs(m) = k]``:

        (1 / (m d)) * C(m, k) p^k (1-p)^(m-k) * (k d_A + (m-k) d_B).
    """
    _, p, d_a, d_b, d = _subset_stats(graph, subset)
    binom = kun_pmf(m, p)
    return [
        binom[k] * (k * d_a + (m - k) * d_b) / (m * d) for k in range(m + 1)
    ]


def kfs_pmf_by_enumeration(
    graph: Graph, subset: Iterable[int], m: int, max_states: int = 50_000
) -> List[float]:
    """``P[Kfs(m) = k]`` by summing the exact stationary law over states.

    Brute-force check of Lemma 5.3: enumerate every state of ``G^m``,
    weight it by Theorem 5.2's stationary probability and bucket by the
    number of coordinates inside the subset.
    """
    subset_set = set(subset)
    n = graph.num_vertices
    stationary = frontier_stationary_distribution(graph, m, max_states)
    pmf = [0.0] * (m + 1)
    for code, probability in enumerate(stationary):
        state = decode_state(code, n, m)
        inside = sum(1 for v in state if v in subset_set)
        pmf[inside] += probability
    return pmf


def kmw_expected_count(graph: Graph, subset: Iterable[int], m: int) -> float:
    """``E[Kmw(m)] = m |V_A| d_A / (|V| d)`` — independent walkers in
    steady state (Section 5.1)."""
    _, p, d_a, _, d = _subset_stats(graph, subset)
    return m * p * d_a / d


def kmw_to_uniform_ratio(graph: Graph, subset: Iterable[int]) -> float:
    """``alpha_A = E[Kmw] / E[Kun] = d_A / d`` (Section 5.1).

    Far from 1 whenever the subset's average degree differs from the
    graph's — the quantitative reason uniformly seeded independent
    walkers start far from steady state.
    """
    _, _, d_a, _, d = _subset_stats(graph, subset)
    return d_a / d


def pmf_total_variation(p: Sequence[float], q: Sequence[float]) -> float:
    """TV distance between two walker-count pmfs (padded to align)."""
    length = max(len(p), len(q))
    padded_p = list(p) + [0.0] * (length - len(p))
    padded_q = list(q) + [0.0] * (length - len(q))
    return 0.5 * sum(abs(a - b) for a, b in zip(padded_p, padded_q))
