"""Transient edge-sampling probabilities — Appendix B / Table 4.

``p^(B)_{u,v}`` is the probability that a walker seeded uniformly at
random samples directed edge ``(u, v)`` at the *last* step of its
budget.  In steady state every orientation has probability
``1 / vol(V)``; Table 4 reports the worst-case relative shortfall

    max_{(u,v)} (1 - p^(B)_{u,v} * vol(V)).

For single and multiple independent walkers the law of the walker's
position is a Markov distribution we can propagate exactly.  FS's
marginal is not Markov (walkers interact through the frontier), so FS
uses a Monte Carlo estimate over full trace simulations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.graph.graph import Graph
from repro.markov.chain import distribution_after, uniform_distribution
from repro.sampling.base import Edge, Sampler, WalkTrace
from repro.util.rng import child_rng


def single_rw_edge_probabilities(
    graph: Graph, steps: int
) -> Dict[Edge, float]:
    """Exact ``p^(steps)_{u,v}`` for one uniformly seeded walker.

    The walker's position before its last step is
    ``pi_0 P^(steps-1)`` with ``pi_0`` uniform; the last step crosses
    ``(u, v)`` with probability ``pi_{steps-1}(u) / deg(u)``.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    before_last = distribution_after(
        graph, uniform_distribution(graph), steps - 1
    )
    probabilities: Dict[Edge, float] = {}
    for u in graph.vertices():
        deg = graph.degree(u)
        if deg == 0:
            continue
        share = before_last[u] / deg
        for v in graph.neighbors(u):
            probabilities[(u, v)] = share
    return probabilities


def worst_case_gap(
    probabilities: Dict[Edge, float], volume: float
) -> float:
    """``max_(u,v) |1 - p_{u,v} / (1/vol)|`` over directed edges.

    The relative difference is taken in absolute value: a transient
    walker *over*-samples edges near low-degree vertices just as it
    under-samples hub edges, and Table 4's values above 100% (e.g. 257%)
    are only possible for oversampled edges.
    """
    if not probabilities:
        raise ValueError("no edge probabilities")
    stationary = 1.0 / volume
    return max(abs(1.0 - p / stationary) for p in probabilities.values())


def single_rw_worst_case_gap(graph: Graph, steps: int) -> float:
    """Table 4's statistic for SingleRW, computed exactly."""
    return worst_case_gap(
        single_rw_edge_probabilities(graph, steps), graph.volume()
    )


def multiple_rw_worst_case_gap(
    graph: Graph, budget: int, num_walkers: int
) -> float:
    """Table 4's statistic for MultipleRW, computed exactly.

    Each of the ``K`` independent walkers takes ``(B - K) / K`` steps
    (budget minus the K seeds, split evenly); walkers are i.i.d., so
    the per-walker last-step edge law is the single-walker one.
    """
    if num_walkers < 1:
        raise ValueError(f"num_walkers must be >= 1, got {num_walkers}")
    steps = max(1, (budget - num_walkers) // num_walkers)
    return single_rw_worst_case_gap(graph, steps)


def final_edge_gap_from_edges(
    graph: Graph, final_edges: Iterable[Optional[Edge]]
) -> float:
    """Table 4's statistic from per-run final edges.

    ``final_edges`` holds each run's last sampled edge (``None`` for a
    run whose trace was empty — those are skipped).  Edges never seen
    have estimated probability zero — they dominate the max, exactly
    as they should: the walker demonstrably cannot reach them by step
    B.  This is the measurement-side half of
    :func:`walk_trace_final_edge_gap`, split out so the experiment
    engine can replicate the traces (and fan them across processes)
    while the gap aggregation stays here.
    """
    counts: Dict[Edge, int] = {}
    effective_runs = 0
    for edge in final_edges:
        if edge is None:
            continue
        counts[edge] = counts.get(edge, 0) + 1
        effective_runs += 1
    if effective_runs == 0:
        raise ValueError("no run produced any sampled edge")
    probabilities = {
        edge: count / effective_runs for edge, count in counts.items()
    }
    for u in graph.vertices():
        for v in graph.neighbors(u):
            probabilities.setdefault((u, v), 0.0)
    return worst_case_gap(probabilities, graph.volume())


def walk_trace_final_edge_gap(
    graph: Graph,
    sampler: Sampler,
    budget: float,
    runs: int,
    root_seed: int = 0,
) -> float:
    """Monte Carlo estimate of Table 4's statistic for any sampler.

    Simulates ``runs`` independent traces, histograms the *final*
    sampled edge of each, and compares against the stationary edge law.
    Used for FS, whose marginal transient law has no closed form.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")

    def final_edges():
        for run_index in range(runs):
            rng = child_rng(root_seed, run_index)
            trace: WalkTrace = sampler.sample(graph, budget, rng)
            yield trace.edges[-1] if trace.edges else None

    return final_edge_gap_from_edges(graph, final_edges())
