"""Spectral diagnostics of the RW chain (ablation support).

The mixing time of a reversible chain is governed by its spectral gap.
This module is the one place the markov package touches numpy — the
gap computation is an eigenvalue problem, and numpy is available in
the evaluation environment.  The core library never imports this
module implicitly.
"""

from __future__ import annotations

from typing import List

from repro.graph.graph import Graph
from repro.markov.chain import rw_transition_matrix


def transition_eigenvalues(graph: Graph) -> List[float]:
    """Real eigenvalue spectrum of the RW transition matrix, sorted
    descending.

    The RW chain on an undirected graph is reversible, so its spectrum
    is real; we symmetrize ``D^{1/2} P D^{-1/2}`` for numerical
    stability before calling the symmetric eigensolver.
    """
    import numpy as np

    degrees = graph.degrees()
    if any(d == 0 for d in degrees):
        raise ValueError(
            "graph has isolated vertices; restrict to a component first"
        )
    p = np.array(rw_transition_matrix(graph), dtype=float)
    sqrt_deg = np.sqrt(np.array(degrees, dtype=float))
    sym = (sqrt_deg[:, None] * p) / sqrt_deg[None, :]
    eigenvalues = np.linalg.eigvalsh(sym)
    return sorted((float(x) for x in eigenvalues), reverse=True)


def spectral_gap(graph: Graph) -> float:
    """``1 - max(|lambda_2|, |lambda_n|)`` — the absolute spectral gap."""
    eigenvalues = transition_eigenvalues(graph)
    if len(eigenvalues) < 2:
        return 1.0
    slem = max(abs(eigenvalues[1]), abs(eigenvalues[-1]))
    return 1.0 - slem


def relaxation_time(graph: Graph) -> float:
    """``1 / gap`` — the chain's relaxation time."""
    gap = spectral_gap(graph)
    if gap <= 0:
        return float("inf")
    return 1.0 / gap
