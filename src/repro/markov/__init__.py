"""Markov-chain-level analysis of the samplers.

This package verifies the paper's theory exactly on small graphs and
powers the Appendix B / Table 4 convergence experiment:

- transition matrices and stationary laws of the RW on ``G``;
- the FS chain on ``G^m`` and its equivalence to a single RW on the
  Cartesian power (Lemma 5.1 / Theorem 5.2);
- walker-count distributions ``Kfs``, ``Kun``, ``Kmw``
  (Lemma 5.3, Theorem 5.4, Section 5.1);
- transient edge-sampling probabilities ``p^(B)_{u,v}`` and the
  worst-case relative difference from stationarity (Table 4).
"""

from repro.markov.chain import (
    distribution_after,
    is_bipartite,
    rw_stationary_distribution,
    rw_transition_matrix,
    step_distribution,
    total_variation_distance,
)
from repro.markov.frontier_chain import (
    frontier_stationary_distribution,
    frontier_transition_matrix,
)
from repro.markov.transient import (
    final_edge_gap_from_edges,
    multiple_rw_worst_case_gap,
    single_rw_edge_probabilities,
    single_rw_worst_case_gap,
    walk_trace_final_edge_gap,
)
from repro.markov.walker_counts import (
    kfs_pmf,
    kfs_pmf_by_enumeration,
    kmw_expected_count,
    kmw_to_uniform_ratio,
    kun_pmf,
)

__all__ = [
    "distribution_after",
    "frontier_stationary_distribution",
    "frontier_transition_matrix",
    "is_bipartite",
    "kfs_pmf",
    "kfs_pmf_by_enumeration",
    "kmw_expected_count",
    "kmw_to_uniform_ratio",
    "kun_pmf",
    "multiple_rw_worst_case_gap",
    "rw_stationary_distribution",
    "rw_transition_matrix",
    "single_rw_edge_probabilities",
    "single_rw_worst_case_gap",
    "step_distribution",
    "total_variation_distance",
    "final_edge_gap_from_edges",
    "walk_trace_final_edge_gap",
]
