"""Exact graph characteristics and the paper's error metrics.

``exact`` computes ground truth directly from the full graph (degree
distributions, group densities, assortativity, global clustering);
``errors`` implements NMSE (eq. 1), CNMSE (eq. 2) and relative bias —
the quantities every results figure and table reports.
"""

from repro.metrics.errors import (
    cnmse_curve,
    nmse,
    nmse_curve,
    relative_bias,
)
from repro.metrics.exact import (
    true_degree_ccdf,
    true_degree_pmf,
    true_directed_assortativity,
    true_global_clustering,
    true_group_densities,
    true_undirected_assortativity,
    true_vertex_label_density,
)

__all__ = [
    "cnmse_curve",
    "nmse",
    "nmse_curve",
    "relative_bias",
    "true_degree_ccdf",
    "true_degree_pmf",
    "true_directed_assortativity",
    "true_global_clustering",
    "true_group_densities",
    "true_undirected_assortativity",
    "true_vertex_label_density",
]
