"""Error metrics: NMSE (eq. 1), CNMSE (eq. 2) and relative bias.

Every evaluation figure plots one of these against degree; every table
reports them scalar.  The curve helpers aggregate replicated runs whose
estimates are dicts keyed by degree.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence


def nmse(estimates: Sequence[float], truth: float) -> float:
    """Normalized root-mean-square error: ``sqrt(E[(x - t)^2]) / t``.

    Despite the paper calling it "NMSE", eq. (1) takes the square root;
    we follow the equation.
    """
    if not estimates:
        raise ValueError("no estimates")
    if truth == 0:
        raise ValueError("NMSE is undefined for a zero true value")
    mse = sum((x - truth) ** 2 for x in estimates) / len(estimates)
    return math.sqrt(mse) / abs(truth)


def relative_bias(estimates: Sequence[float], truth: float) -> float:
    """``1 - E[x]/t`` — the bias statistic of Table 2."""
    if not estimates:
        raise ValueError("no estimates")
    if truth == 0:
        raise ValueError("relative bias is undefined for a zero true value")
    mean = sum(estimates) / len(estimates)
    return 1.0 - mean / truth


def nmse_curve(
    runs: Sequence[Mapping[int, float]],
    truth: Mapping[int, float],
) -> Dict[int, float]:
    """Per-degree NMSE over replicated pmf estimates.

    ``runs[r][i]`` is run ``r``'s estimate of ``theta_i``; degrees with
    zero true mass are skipped (their NMSE is undefined).  A run that
    never observed degree ``i`` estimated ``theta_i = 0`` — that is an
    estimate, and it is counted as such.
    """
    if not runs:
        raise ValueError("no runs")
    curve: Dict[int, float] = {}
    for degree, true_value in truth.items():
        if true_value <= 0:
            continue
        values = [run.get(degree, 0.0) for run in runs]
        curve[degree] = nmse(values, true_value)
    return curve


def cnmse_curve(
    runs: Sequence[Mapping[int, float]],
    truth_ccdf: Mapping[int, float],
) -> Dict[int, float]:
    """Per-degree CNMSE (eq. 2) over replicated *CCDF* estimates.

    Identical aggregation to :func:`nmse_curve` but on CCDF values;
    kept separate for call-site clarity.
    """
    return nmse_curve(runs, truth_ccdf)


def mean_curve(
    runs: Sequence[Mapping[int, float]],
) -> Dict[int, float]:
    """Pointwise mean of replicated curves (diagnostics)."""
    if not runs:
        raise ValueError("no runs")
    keys = set()
    for run in runs:
        keys |= set(run)
    return {
        k: sum(run.get(k, 0.0) for run in runs) / len(runs)
        for k in sorted(keys)
    }
