"""Ground-truth graph characteristics, computed from the whole graph.

These are what the estimators' outputs are scored against.  All
functions mirror the definitions in Sections 2–4 of the paper.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, Optional

from repro.estimators.clustering import shared_neighbors
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.labels import VertexLabeling
from repro.util.stats import ccdf_from_pmf

Label = Hashable
DegreeOf = Callable[[int], int]


def true_degree_pmf(
    graph: Graph, degree_of: Optional[DegreeOf] = None
) -> Dict[int, float]:
    """Exact ``theta_i``: fraction of vertices with degree label ``i``.

    Dense on ``0 .. max``, like the estimators' output.
    """
    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    label = degree_of if degree_of is not None else graph.degree
    counts: Dict[int, int] = {}
    for v in graph.vertices():
        key = label(v)
        counts[key] = counts.get(key, 0) + 1
    top = max(counts)
    n = graph.num_vertices
    return {k: counts.get(k, 0) / n for k in range(top + 1)}


def true_degree_ccdf(
    graph: Graph, degree_of: Optional[DegreeOf] = None
) -> Dict[int, float]:
    """Exact CCDF ``gamma_i = sum_{k > i} theta_k``."""
    return ccdf_from_pmf(true_degree_pmf(graph, degree_of))


def true_vertex_label_density(
    graph: Graph, labeling: VertexLabeling, label: Label
) -> float:
    """Exact ``theta_l``: fraction of vertices carrying ``label``."""
    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    return labeling.count_with_label(label) / graph.num_vertices


def true_group_densities(
    graph: Graph, labeling: VertexLabeling, labels: Iterable[Label]
) -> Dict[Label, float]:
    """Exact densities for many labels at once."""
    return {
        label: true_vertex_label_density(graph, labeling, label)
        for label in labels
    }


def true_global_clustering(graph: Graph) -> float:
    """Exact global clustering coefficient (Section 4.2.4, eq. 8).

    ``C = (1/|V*|) sum_{v in V*} Delta(v) / C(deg(v), 2)`` where ``V*``
    is the set of vertices with degree >= 2.  ``Delta(v)`` is computed
    as half the sum over incident edges of shared-neighbor counts.
    """
    numerator = 0.0
    v_star = 0
    for v in graph.vertices():
        deg = graph.degree(v)
        if deg < 2:
            continue
        v_star += 1
        triangles2 = sum(
            shared_neighbors(graph, v, u) for u in graph.neighbors(v)
        )  # counts each triangle at v twice
        pairs = deg * (deg - 1) / 2.0
        numerator += (triangles2 / 2.0) / pairs
    if v_star == 0:
        raise ValueError(
            "no vertex has degree >= 2; clustering is undefined"
        )
    return numerator / v_star


def true_undirected_assortativity(graph: Graph) -> float:
    """Exact degree-degree Pearson correlation over edge orientations.

    Both orientations of every edge contribute, matching what a
    stationary RW converges to on the symmetric graph.
    """
    n = 0
    sum_x = sum_y = sum_xx = sum_yy = sum_xy = 0.0
    for u, v in graph.directed_edges():
        x = float(graph.degree(u))
        y = float(graph.degree(v))
        n += 1
        sum_x += x
        sum_y += y
        sum_xx += x * x
        sum_yy += y * y
        sum_xy += x * y
    if n == 0:
        raise ValueError("graph has no edges; assortativity is undefined")
    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = sum_xx / n - mean_x * mean_x
    var_y = sum_yy / n - mean_y * mean_y
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return (sum_xy / n - mean_x * mean_y) / math.sqrt(var_x * var_y)


def true_directed_assortativity(digraph: DiGraph) -> float:
    """Exact directed assortativity over ``E_d`` with labels
    ``(outdeg(u), indeg(v))`` (Newman 2002 eq. 25 in moment form)."""
    n = 0
    sum_x = sum_y = sum_xx = sum_yy = sum_xy = 0.0
    for u, v in digraph.edges():
        x = float(digraph.out_degree(u))
        y = float(digraph.in_degree(v))
        n += 1
        sum_x += x
        sum_y += y
        sum_xx += x * x
        sum_yy += y * y
        sum_xy += x * y
    if n == 0:
        raise ValueError("digraph has no edges; assortativity is undefined")
    mean_x = sum_x / n
    mean_y = sum_y / n
    var_x = sum_xx / n - mean_x * mean_x
    var_y = sum_yy / n - mean_y * mean_y
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return (sum_xy / n - mean_x * mean_y) / math.sqrt(var_x * var_y)
