"""The Section 4.5 disconnected-graph thought experiment, in closed form.

For a graph with disconnected components, a walker seeded in component
``i`` with probability ``h_i`` samples (in its local steady state) each
directed edge of that component with probability ``h_i / vol(V_i)``.

- Uniform seeding: ``h_i = |V_i| / |V|`` — the per-edge probabilities
  *differ* across components whenever average degrees differ, which is
  exactly the imbalance that biases MultipleRW's estimates.
- Degree-proportional seeding: ``h_i = vol(V_i) / vol(V)`` — every edge
  gets ``1 / vol(V)``: uniform edge sampling restored.

These helpers compute both allocations and the resulting worst-case
imbalance, quantifying the paper's argument before any simulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.components import connected_components
from repro.graph.graph import Graph


def component_edge_probabilities(
    graph: Graph, seeding: str = "uniform"
) -> List[Tuple[int, int, float]]:
    """Per-component ``(size, volume, per-edge probability)`` rows.

    ``seeding`` is "uniform" (``h_i = |V_i|/|V|``) or "stationary"
    (``h_i = vol(V_i)/vol(V)``).  Components with no edges are skipped
    (a walker seeded there samples nothing).
    """
    if seeding not in ("uniform", "stationary"):
        raise ValueError(
            f"seeding must be 'uniform' or 'stationary', got {seeding!r}"
        )
    n = graph.num_vertices
    if n == 0:
        raise ValueError("empty graph")
    total_volume = graph.volume()
    if total_volume == 0:
        raise ValueError("graph has no edges")
    rows: List[Tuple[int, int, float]] = []
    for component in connected_components(graph):
        volume = graph.volume(component)
        if volume == 0:
            continue
        if seeding == "uniform":
            h = len(component) / n
        else:
            h = volume / total_volume
        rows.append((len(component), volume, h / volume))
    return rows


def edge_sampling_imbalance(graph: Graph, seeding: str = "uniform") -> float:
    """Max-over-min per-edge sampling probability across components.

    1.0 means edges are sampled uniformly regardless of component (the
    "stationary" seeding always achieves this); large values quantify
    how badly uniform seeding distorts estimates on this graph
    (Section 4.5's ``p_A < p_B``).
    """
    rows = component_edge_probabilities(graph, seeding)
    probabilities = [p for _, _, p in rows]
    low = min(probabilities)
    high = max(probabilities)
    if low == 0:
        return float("inf")
    return high / low
