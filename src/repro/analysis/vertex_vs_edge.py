"""Vertex vs edge sampling: the closed-form NMSE of Section 3.

With ``theta_i`` the fraction of vertices of degree ``i`` and ``d`` the
average degree, edge sampling hits a degree-``i`` vertex with
probability ``pi_i = i * theta_i / d``.  For a budget of ``B``
independent samples:

    NMSE_edge(i)   = sqrt((1/pi_i   - 1) / B)        (eq. 3)
    NMSE_vertex(i) = sqrt((1/theta_i - 1) / B)       (eq. 4)

Since ``pi_i / theta_i = i / d``, edge sampling is more accurate
exactly for degrees above the mean — the crossover the Figure 12
experiment verifies empirically.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.metrics.exact import true_degree_pmf


def vertex_sampling_nmse(theta_i: float, budget: float) -> float:
    """Eq. (4): NMSE of the degree-``i`` density from ``B`` vertex
    samples."""
    if not 0.0 < theta_i <= 1.0:
        raise ValueError(f"theta_i must be in (0, 1], got {theta_i}")
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    return math.sqrt((1.0 / theta_i - 1.0) / budget)


def edge_sampling_nmse(
    theta_i: float, degree: int, average_degree: float, budget: float
) -> float:
    """Eq. (3): NMSE of the degree-``i`` density from ``B`` edge
    samples, via ``pi_i = i * theta_i / d``."""
    if degree <= 0:
        raise ValueError(f"degree must be > 0 for edge sampling, got {degree}")
    if average_degree <= 0:
        raise ValueError(
            f"average_degree must be > 0, got {average_degree}"
        )
    pi_i = degree * theta_i / average_degree
    if not 0.0 < pi_i <= 1.0:
        raise ValueError(
            f"pi_i = {pi_i} outside (0, 1]; inconsistent inputs"
        )
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    return math.sqrt((1.0 / pi_i - 1.0) / budget)


def predicted_crossover_degree(average_degree: float) -> float:
    """The degree at which the two NMSEs cross: the mean degree.

    ``pi_i > theta_i  <=>  i > d``: above the mean, edge sampling wins.
    """
    if average_degree <= 0:
        raise ValueError(
            f"average_degree must be > 0, got {average_degree}"
        )
    return average_degree


def analytic_nmse_curves(
    graph: Graph,
    budget: float,
    degree_of: Optional[Callable[[int], int]] = None,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """``(vertex_curve, edge_curve)`` over the graph's degree support.

    The degree label defaults to the symmetric degree; the edge curve
    uses the *label's* mean as ``d`` (the quantity eq. 3 is stated in).
    Degrees with zero mass, and degree 0 for the edge curve (edges
    cannot sample isolated vertices), are omitted.
    """
    pmf = true_degree_pmf(graph, degree_of)
    mean_degree = sum(k * v for k, v in pmf.items())
    vertex_curve: Dict[int, float] = {}
    edge_curve: Dict[int, float] = {}
    for degree, mass in pmf.items():
        if mass <= 0:
            continue
        vertex_curve[degree] = vertex_sampling_nmse(mass, budget)
        if degree > 0:
            edge_curve[degree] = edge_sampling_nmse(
                mass, degree, mean_degree, budget
            )
    return vertex_curve, edge_curve
