"""Closed-form analytic models from Sections 3 and 4.5 of the paper."""

from repro.analysis.disconnected import (
    component_edge_probabilities,
    edge_sampling_imbalance,
)
from repro.analysis.vertex_vs_edge import (
    analytic_nmse_curves,
    edge_sampling_nmse,
    predicted_crossover_degree,
    vertex_sampling_nmse,
)

__all__ = [
    "analytic_nmse_curves",
    "component_edge_probabilities",
    "edge_sampling_imbalance",
    "edge_sampling_nmse",
    "predicted_crossover_degree",
    "vertex_sampling_nmse",
]
