"""Graph samplers: Frontier Sampling and every baseline it is compared to.

The samplers share one contract: given a graph, a budget ``B`` (in
vertex-query units, the paper's convention) and an RNG, produce a
:class:`~repro.sampling.base.WalkTrace` (sequence of sampled edges) or
a :class:`~repro.sampling.base.VertexTrace` (independently sampled
vertices).  Estimators are built on top of these traces.

Samplers implemented:

- :class:`SingleRandomWalk` — the classic RW (Section 4).
- :class:`MultipleRandomWalk` — ``m`` independent walkers
  (Section 4.4), with uniform or steady-state (degree-proportional)
  seeding.
- :class:`FrontierSampler` — Algorithm 1, the paper's contribution.
- :class:`DistributedFrontierSampler` — Theorem 5.5's exponential-clock
  realization of FS.
- :class:`MetropolisHastingsWalk` — the MRW baseline from Section 7.
- :class:`RandomVertexSampler` / :class:`RandomEdgeSampler` —
  independent uniform sampling with the hit-ratio cost model of
  Sections 3 and 6.4.
"""

from repro.sampling.base import (
    Backend,
    Sampler,
    SeedingMode,
    VertexTrace,
    WalkTrace,
    get_default_backend,
    set_default_backend,
    stationary_seeds,
    steps_within_budget,
    uniform_seeds,
    use_backend,
)
from repro.sampling.distributed import DistributedFrontierSampler
from repro.sampling.frontier import FrontierSampler
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.session import SamplerSession, load_session
from repro.sampling.sharded import (
    VALID_EXECUTORS,
    ShardedFrontierSampler,
    ShardedSessionPool,
    resolve_executor,
    threads_can_scale,
)
from repro.sampling.single import SingleRandomWalk
from repro.sampling.vectorized import (
    ArrayMetropolisTrace,
    ArrayWalkTrace,
    batch_walk_positions,
)

__all__ = [
    "ArrayMetropolisTrace",
    "ArrayWalkTrace",
    "Backend",
    "DistributedFrontierSampler",
    "FrontierSampler",
    "MetropolisHastingsWalk",
    "MultipleRandomWalk",
    "RandomEdgeSampler",
    "RandomVertexSampler",
    "Sampler",
    "SamplerSession",
    "SeedingMode",
    "ShardedFrontierSampler",
    "ShardedSessionPool",
    "SingleRandomWalk",
    "VALID_EXECUTORS",
    "VertexTrace",
    "WalkTrace",
    "batch_walk_positions",
    "get_default_backend",
    "load_session",
    "resolve_executor",
    "set_default_backend",
    "stationary_seeds",
    "steps_within_budget",
    "threads_can_scale",
    "uniform_seeds",
    "use_backend",
]
