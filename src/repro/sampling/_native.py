"""Build and load the native walker kernels (best effort).

``_kernels.c`` is compiled on first use with whatever C compiler the
host provides (``cc``/``gcc``/``clang``), cached under the user's
cache directory keyed by a hash of the source, and loaded through
:mod:`ctypes` — no build-time extension machinery, no new
dependencies.  Everything degrades gracefully: if there is no
compiler, the compile fails, or ``REPRO_NO_NATIVE`` is set, callers
get ``None`` and the engine falls back to the pure-Python kernels,
which implement the identical draw protocol (traces are bit-for-bit
the same either way — only the speed differs).

Signature contract: every kernel is declared once in
:data:`_DECLARATIONS` using the canonical type tokens of
:mod:`repro.sampling._cproto` and verified against the ``repro_*``
prototypes parsed out of ``_kernels.c`` *before* ``argtypes`` are
assigned.  A drifted declaration — an edit to one side that forgot the
other, or an out-of-tree build exporting a different arity — raises a
readable :class:`KernelSignatureError` naming the kernel and both
signatures instead of corrupting memory through a mis-declared foreign
call.  ``repro-lint`` rule RPL004 enforces the same agreement
statically in CI.

Thread contract: ``ctypes`` releases the GIL for the duration of
every foreign call, so kernel calls from concurrent threads overlap
on real cores.  That is only sound because the kernels are stateless
and reentrant — no static or global storage in ``_kernels.c``, all
inputs read-only except caller-owned output buffers, and every
wrapper below allocates fresh output arrays per call.  Keep it that
way: the thread executor in :mod:`repro.sampling.sharded` depends on
it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sampling._cproto import parse_prototypes

_SOURCE = Path(__file__).with_name("_kernels.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_DP = ctypes.POINTER(ctypes.c_double)

#: Canonical signature token (see ``_cproto``) -> ctypes object.
_CTYPES: Dict[str, object] = {
    "void": None,
    "i64": ctypes.c_int64,
    "f64": ctypes.c_double,
    "i64*": _I64P,
    "f64*": _DP,
}

#: The Python-side kernel declarations: ``name -> (restype, argtypes)``
#: in canonical tokens.  This table is the single source the ctypes
#: ``argtypes``/``restype`` assignments are derived from, and the one
#: RPL004 (and :func:`_check_declarations` at load time) diffs against
#: the C prototypes.
_DECLARATIONS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "repro_rw_steps": (
        "void",
        ("i64*", "i64*", "i64", "i64", "f64*", "i64*", "i64*"),
    ),
    "repro_fs_steps": (
        "i64",
        (
            "i64*", "i64*", "i64*", "i64", "i64",
            "i64", "f64*", "i64*", "i64*", "i64*",
        ),
    ),
    "repro_mh_steps": (
        "i64",
        ("i64*", "i64*", "i64", "i64", "f64*", "i64*", "i64*", "i64*"),
    ),
    "repro_rw_steps_acc": (
        "i64",
        (
            "i64*", "i64*", "i64", "i64", "f64*",
            "i64", "i64*", "i64*", "i64*",
        ),
    ),
    "repro_fs_steps_acc": (
        "i64",
        (
            "i64*", "i64*", "i64*", "i64", "i64", "i64",
            "f64*", "i64", "i64*", "i64*", "i64*", "i64*",
        ),
    ),
    "repro_mh_steps_acc": (
        "i64",
        (
            "i64*", "i64*", "i64", "i64", "f64*",
            "i64", "i64*", "i64*", "i64*", "i64*",
        ),
    ),
}

#: tri-state: None = not attempted yet; False = unavailable;
#: ctypes.CDLL = loaded.
_LIB: Optional[ctypes.CDLL] = None
_ATTEMPTED = False
#: Serializes the first compile-and-load so concurrent threads cannot
#: race the lazy initialization (one compiles, the rest wait).
_LOAD_LOCK = threading.Lock()


class KernelSignatureError(RuntimeError):
    """A ctypes declaration disagrees with the ``_kernels.c`` prototype.

    Raised *before* any foreign call is made: calling a kernel through
    a wrong ``argtypes`` list would pass garbage pointers and corrupt
    memory, so a mismatch must fail loudly at load time.
    """


def _check_declarations(
    declarations: Dict[str, Tuple[str, Tuple[str, ...]]],
    source_text: str,
) -> None:
    """Verify every declared kernel against the C source's prototype.

    The dynamic mirror of repro-lint RPL004 — it runs on whatever
    source is actually about to be compiled and called, so out-of-tree
    kernel builds get the same protection as the committed tree.
    """
    prototypes = parse_prototypes(source_text, origin=str(_SOURCE))
    for name, (restype, argtypes) in declarations.items():
        prototype = prototypes.get(name)
        if prototype is None:
            raise KernelSignatureError(
                f"kernel {name!r} is declared in _native.py but"
                f" {_SOURCE.name} defines no such prototype"
            )
        declared = f"{restype} {name}({', '.join(argtypes)})"
        if len(argtypes) != len(prototype.argtypes):
            raise KernelSignatureError(
                f"kernel {name!r}: arity mismatch — _native.py declares"
                f" {len(argtypes)} argument(s) [{declared}] but"
                f" {_SOURCE.name}:{prototype.line} defines"
                f" {len(prototype.argtypes)} [{prototype.render()}]"
            )
        if restype != prototype.restype or argtypes != prototype.argtypes:
            raise KernelSignatureError(
                f"kernel {name!r}: type mismatch — _native.py declares"
                f" [{declared}] but {_SOURCE.name}:{prototype.line}"
                f" defines [{prototype.render()}]"
            )


def _declare(lib: ctypes.CDLL) -> None:
    """Assign verified ``restype``/``argtypes`` to every kernel."""
    for name, (restype, argtypes) in _DECLARATIONS.items():
        try:
            function = getattr(lib, name)
        except AttributeError as exc:
            raise KernelSignatureError(
                f"compiled kernel library exports no symbol {name!r};"
                " the loaded .so does not match _kernels.c"
            ) from exc
        function.restype = _CTYPES[restype]
        function.argtypes = [_CTYPES[token] for token in argtypes]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _compile_and_load() -> Optional[ctypes.CDLL]:
    compiler = (
        shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        return None
    source_text = _SOURCE.read_text(encoding="utf-8")
    # Fail before compiling (and before any foreign call is possible)
    # if the Python-side declarations drifted from the C prototypes.
    _check_declarations(_DECLARATIONS, source_text)
    digest = hashlib.sha256(source_text.encode("utf-8")).hexdigest()[:16]
    directory = _cache_dir()
    library = directory / f"kernels-{digest}.so"
    if not library.exists():
        directory.mkdir(parents=True, exist_ok=True)
        # Compile to a private temp name, then atomically rename, so
        # concurrent test workers never load a half-written object.
        descriptor, temp_name = tempfile.mkstemp(
            suffix=".so", dir=str(directory)
        )
        os.close(descriptor)
        try:
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-shared",
                    "-fPIC",
                    "-o",
                    temp_name,
                    str(_SOURCE),
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(temp_name, library)
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
    lib = ctypes.CDLL(str(library))
    _declare(lib)
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The kernel library, or ``None`` when native is unavailable.

    Compile/load failures degrade to the pure-Python fallback —
    except a :class:`KernelSignatureError`, which always propagates:
    a signature mismatch means the declarations in this module are
    wrong, and silently falling back would hide the defect from every
    native-capable host.
    """
    global _LIB, _ATTEMPTED
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if not _ATTEMPTED:
        with _LOAD_LOCK:
            if not _ATTEMPTED:
                try:
                    _LIB = _compile_and_load()
                except KernelSignatureError:
                    _ATTEMPTED = True
                    raise
                except Exception:
                    _LIB = None
                _ATTEMPTED = True
    return _LIB


def available() -> bool:
    return load() is not None


def _lib() -> ctypes.CDLL:
    """The loaded library; raises instead of returning ``None``.

    The wrappers below are only reachable when a caller already chose
    the native path, so an unavailable library here is a programming
    error — fail with a readable message rather than an
    ``AttributeError`` on ``None``.
    """
    lib = load()
    if lib is None:
        raise RuntimeError(
            "native kernels are unavailable (no compiler, failed"
            " compile, or REPRO_NO_NATIVE is set); use the pure-Python"
            " kernels instead"
        )
    return lib


def _i64(array: np.ndarray) -> "ctypes._Pointer[ctypes.c_int64]":
    return array.ctypes.data_as(_I64P)


def _f64(array: np.ndarray) -> "ctypes._Pointer[ctypes.c_double]":
    return array.ctypes.data_as(_DP)


def _i64_opt(
    array: Optional[np.ndarray],
) -> Optional["ctypes._Pointer[ctypes.c_int64]"]:
    """Optional block buffer: ``None`` becomes a NULL pointer."""
    return None if array is None else _i64(array)


def rw_steps(
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    steps: int,
    uniforms: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Native simple-random-walk steps; returns ``(out_u, out_v)``."""
    lib = _lib()
    out_u = np.empty(steps, dtype=np.int64)
    out_v = np.empty(steps, dtype=np.int64)
    lib.repro_rw_steps(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        _i64(out_u), _i64(out_v),
    )
    return out_u, out_v


def fs_steps(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    steps: int,
    degree_selection: bool,
    uniforms: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Native FS steps; mutates ``frontier`` in place.

    Returns ``(out_u, out_v, out_idx)``.
    """
    lib = _lib()
    out_u = np.empty(steps, dtype=np.int64)
    out_v = np.empty(steps, dtype=np.int64)
    out_idx = np.empty(steps, dtype=np.int64)
    status = lib.repro_fs_steps(
        _i64(indptr), _i64(indices), _i64(frontier), len(frontier), steps,
        1 if degree_selection else 0, _f64(uniforms),
        _i64(out_u), _i64(out_v), _i64(out_idx),
    )
    if status != 0:
        raise ValueError("frontier reached a state with zero total degree")
    return out_u, out_v, out_idx


def mh_steps(
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    steps: int,
    uniforms: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Native MH walk; returns ``(edge_u, edge_v, visited)``."""
    lib = _lib()
    out_eu = np.empty(steps, dtype=np.int64)
    out_ev = np.empty(steps, dtype=np.int64)
    out_visited = np.empty(steps, dtype=np.int64)
    accepted = lib.repro_mh_steps(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        _i64(out_eu), _i64(out_ev), _i64(out_visited),
    )
    return out_eu[:accepted], out_ev[:accepted], out_visited


def rw_steps_acc(
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    steps: int,
    uniforms: np.ndarray,
    key_base: int,
    deg_counts: Optional[np.ndarray],
    visit_counts: Optional[np.ndarray],
    edge_keys: Optional[np.ndarray],
) -> int:
    """Fused SRW steps: accumulate into the block buffers in place.

    Returns the final walker position.  Any block buffer may be
    ``None`` to skip that statistic.
    """
    lib = _lib()
    final = lib.repro_rw_steps_acc(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        key_base, _i64_opt(deg_counts), _i64_opt(visit_counts),
        _i64_opt(edge_keys),
    )
    return int(final)


def fs_steps_acc(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    steps: int,
    degree_selection: bool,
    uniforms: np.ndarray,
    key_base: int,
    deg_counts: Optional[np.ndarray],
    visit_counts: Optional[np.ndarray],
    edge_keys: Optional[np.ndarray],
) -> None:
    """Fused FS steps: mutates ``frontier`` and the block in place.

    Degree-weighted selection hands the kernel an O(m) Fenwick scratch
    so the per-step walker search is O(log m) instead of O(m) — same
    exact int64 prefix sums, so the selected walkers (and therefore
    the whole walk) are bit-identical to the linear-scan kernel.
    """
    lib = _lib()
    fenwick = (
        np.empty(len(frontier) + 1, dtype=np.int64)
        if degree_selection
        else None
    )
    status = lib.repro_fs_steps_acc(
        _i64(indptr), _i64(indices), _i64(frontier), len(frontier), steps,
        1 if degree_selection else 0, _f64(uniforms), key_base,
        _i64_opt(deg_counts), _i64_opt(visit_counts), _i64_opt(edge_keys),
        _i64_opt(fenwick),
    )
    if status != 0:
        raise ValueError("frontier reached a state with zero total degree")


def mh_steps_acc(
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    steps: int,
    uniforms: np.ndarray,
    key_base: int,
    deg_counts: Optional[np.ndarray],
    visit_counts: Optional[np.ndarray],
    edge_keys: Optional[np.ndarray],
) -> Tuple[int, int]:
    """Fused MH steps over accepted proposals only.

    ``edge_keys``, when supplied, must hold ``steps`` slots; the kernel
    fills the first ``accepted`` of them.  Returns
    ``(accepted, final_position)``.
    """
    lib = _lib()
    out_state = np.empty(1, dtype=np.int64)
    accepted = lib.repro_mh_steps_acc(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        key_base, _i64_opt(deg_counts), _i64_opt(visit_counts),
        _i64_opt(edge_keys), _i64(out_state),
    )
    return int(accepted), int(out_state[0])
