"""Build and load the native walker kernels (best effort).

``_kernels.c`` is compiled on first use with whatever C compiler the
host provides (``cc``/``gcc``/``clang``), cached under the user's
cache directory keyed by a hash of the source, and loaded through
:mod:`ctypes` — no build-time extension machinery, no new
dependencies.  Everything degrades gracefully: if there is no
compiler, the compile fails, or ``REPRO_NO_NATIVE`` is set, callers
get ``None`` and the engine falls back to the pure-Python kernels,
which implement the identical draw protocol (traces are bit-for-bit
the same either way — only the speed differs).

Thread contract: ``ctypes`` releases the GIL for the duration of
every foreign call, so kernel calls from concurrent threads overlap
on real cores.  That is only sound because the kernels are stateless
and reentrant — no static or global storage in ``_kernels.c``, all
inputs read-only except caller-owned output buffers, and every
wrapper below allocates fresh output arrays per call.  Keep it that
way: the thread executor in :mod:`repro.sampling.sharded` depends on
it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

_SOURCE = Path(__file__).with_name("_kernels.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_DP = ctypes.POINTER(ctypes.c_double)

#: tri-state: None = not attempted yet; False = unavailable;
#: ctypes.CDLL = loaded.
_LIB: object = None
_ATTEMPTED = False
#: Serializes the first compile-and-load so concurrent threads cannot
#: race the lazy initialization (one compiles, the rest wait).
_LOAD_LOCK = threading.Lock()


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _compile_and_load() -> Optional[ctypes.CDLL]:
    compiler = (
        shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        return None
    source_text = _SOURCE.read_text(encoding="utf-8")
    digest = hashlib.sha256(source_text.encode("utf-8")).hexdigest()[:16]
    directory = _cache_dir()
    library = directory / f"kernels-{digest}.so"
    if not library.exists():
        directory.mkdir(parents=True, exist_ok=True)
        # Compile to a private temp name, then atomically rename, so
        # concurrent test workers never load a half-written object.
        descriptor, temp_name = tempfile.mkstemp(
            suffix=".so", dir=str(directory)
        )
        os.close(descriptor)
        try:
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-shared",
                    "-fPIC",
                    "-o",
                    temp_name,
                    str(_SOURCE),
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(temp_name, library)
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
    lib = ctypes.CDLL(str(library))
    lib.repro_rw_steps.restype = None
    lib.repro_rw_steps.argtypes = [
        _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, _DP, _I64P, _I64P,
    ]
    lib.repro_fs_steps.restype = ctypes.c_int64
    lib.repro_fs_steps.argtypes = [
        _I64P, _I64P, _I64P, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, _DP, _I64P, _I64P, _I64P,
    ]
    lib.repro_mh_steps.restype = ctypes.c_int64
    lib.repro_mh_steps.argtypes = [
        _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, _DP,
        _I64P, _I64P, _I64P,
    ]
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The kernel library, or ``None`` when native is unavailable."""
    global _LIB, _ATTEMPTED
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if not _ATTEMPTED:
        with _LOAD_LOCK:
            if not _ATTEMPTED:
                try:
                    _LIB = _compile_and_load()
                except Exception:
                    _LIB = None
                _ATTEMPTED = True
    return _LIB  # type: ignore[return-value]


def available() -> bool:
    return load() is not None


def _i64(array: np.ndarray):
    return array.ctypes.data_as(_I64P)


def _f64(array: np.ndarray):
    return array.ctypes.data_as(_DP)


def rw_steps(indptr, indices, start, steps, uniforms):
    """Native simple-random-walk steps; returns ``(out_u, out_v)``."""
    lib = load()
    out_u = np.empty(steps, dtype=np.int64)
    out_v = np.empty(steps, dtype=np.int64)
    lib.repro_rw_steps(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        _i64(out_u), _i64(out_v),
    )
    return out_u, out_v


def fs_steps(indptr, indices, frontier, steps, degree_selection, uniforms):
    """Native FS steps; mutates ``frontier`` in place.

    Returns ``(out_u, out_v, out_idx)``.
    """
    lib = load()
    out_u = np.empty(steps, dtype=np.int64)
    out_v = np.empty(steps, dtype=np.int64)
    out_idx = np.empty(steps, dtype=np.int64)
    status = lib.repro_fs_steps(
        _i64(indptr), _i64(indices), _i64(frontier), len(frontier), steps,
        1 if degree_selection else 0, _f64(uniforms),
        _i64(out_u), _i64(out_v), _i64(out_idx),
    )
    if status != 0:
        raise ValueError("frontier reached a state with zero total degree")
    return out_u, out_v, out_idx


def mh_steps(indptr, indices, start, steps, uniforms):
    """Native MH walk; returns ``(edge_u, edge_v, visited)``."""
    lib = load()
    out_eu = np.empty(steps, dtype=np.int64)
    out_ev = np.empty(steps, dtype=np.int64)
    out_visited = np.empty(steps, dtype=np.int64)
    accepted = lib.repro_mh_steps(
        _i64(indptr), _i64(indices), start, steps, _f64(uniforms),
        _i64(out_eu), _i64(out_ev), _i64(out_visited),
    )
    return out_eu[:accepted], out_ev[:accepted], out_visited
