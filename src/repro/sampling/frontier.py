"""Frontier Sampling — Algorithm 1, the paper's contribution.

FS maintains a list ``L`` of ``m`` walker positions.  Each step:

1. pick ``u in L`` with probability ``deg(u) / sum_{v in L} deg(v)``,
2. move it across a uniformly chosen incident edge ``(u, v)``,
3. record ``(u, v)`` and replace ``u`` by ``v`` in ``L``.

Step 1+2 together sample one edge uniformly from the *edge frontier*
``e(L)``, which makes FS a single random walk on the Cartesian power
``G^m`` (Lemma 5.1).  The walker choice uses a Fenwick tree so each
step costs O(log m) regardless of the frontier dimension.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.graph import Graph
from repro.sampling.base import (
    Backend,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_backend,
    check_pinned_seeds,
    check_seeding,
    resolve_backend,
)
from repro.util.rng import RngLike


class FrontierSampler(Sampler):
    """m-dimensional Frontier Sampling (Algorithm 1).

    ``seeding="uniform"`` is the algorithm as published — its whole
    point is that uniform seeds put the G^m walk *near its stationary
    law* (Theorem 5.4).  ``seeding="stationary"`` is available for
    ablations.  ``walker_selection`` is "degree" for line 4 of
    Algorithm 1; the "uniform" alternative (pick a walker uniformly)
    breaks the G^m equivalence and exists to show that the
    degree-proportional choice is load-bearing.
    """

    name = "FS"

    def __init__(
        self,
        dimension: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        walker_selection: str = "degree",
        backend: Optional[Backend] = None,
    ):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if walker_selection not in ("degree", "uniform"):
            raise ValueError(
                "walker_selection must be 'degree' or 'uniform',"
                f" got {walker_selection!r}"
            )
        self.dimension = dimension
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.walker_selection = walker_selection
        self.backend = check_backend(backend)

    def start(
        self,
        graph: Graph,
        rng: RngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ):
        """Seed the frontier and return its incremental session.

        ``initial_vertices`` pins the frontier to explicit positions
        instead of drawing seeds (no seed uniforms are consumed then).
        """
        from repro.sampling.session import (
            ArrayFrontierSession,
            FrontierWalkSession,
        )

        if initial_vertices is not None:
            check_pinned_seeds(initial_vertices, self.dimension)
        if resolve_backend(self.backend, graph) == "csr":
            return ArrayFrontierSession(
                self, graph, rng, initial_vertices=initial_vertices
            )
        return FrontierWalkSession(
            self, graph, rng, initial_vertices=initial_vertices
        )

    def sample_from(
        self,
        graph: Graph,
        initial_vertices: Sequence[int],
        num_steps: int,
        rng: RngLike = None,
    ) -> WalkTrace:
        """Run FS from explicit initial positions for ``num_steps`` steps.

        Used by experiments that pin FS and MultipleRW to the *same*
        seeds (Figures 6 and 9) and by the chain-level verification
        tests.  One session, one advance.
        """
        session = self.start(graph, rng, initial_vertices=initial_vertices)
        session.advance(num_steps)
        return session.trace()

    def __repr__(self) -> str:
        return (
            f"FrontierSampler(dimension={self.dimension},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost},"
            f" walker_selection={self.walker_selection!r},"
            f" backend={self.backend!r})"
        )
