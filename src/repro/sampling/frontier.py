"""Frontier Sampling — Algorithm 1, the paper's contribution.

FS maintains a list ``L`` of ``m`` walker positions.  Each step:

1. pick ``u in L`` with probability ``deg(u) / sum_{v in L} deg(v)``,
2. move it across a uniformly chosen incident edge ``(u, v)``,
3. record ``(u, v)`` and replace ``u`` by ``v`` in ``L``.

Step 1+2 together sample one edge uniformly from the *edge frontier*
``e(L)``, which makes FS a single random walk on the Cartesian power
``G^m`` (Lemma 5.1).  The walker choice uses a Fenwick tree so each
step costs O(log m) regardless of the frontier dimension.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.sampling import vectorized
from repro.sampling.base import (
    Backend,
    Edge,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_backend,
    check_seeding,
    make_seeds,
    resolve_backend,
    walk_steps,
)
from repro.util.fenwick import FenwickTree
from repro.util.rng import RngLike, ensure_rng


class FrontierSampler(Sampler):
    """m-dimensional Frontier Sampling (Algorithm 1).

    ``seeding="uniform"`` is the algorithm as published — its whole
    point is that uniform seeds put the G^m walk *near its stationary
    law* (Theorem 5.4).  ``seeding="stationary"`` is available for
    ablations.  ``walker_selection`` is "degree" for line 4 of
    Algorithm 1; the "uniform" alternative (pick a walker uniformly)
    breaks the G^m equivalence and exists to show that the
    degree-proportional choice is load-bearing.
    """

    name = "FS"

    def __init__(
        self,
        dimension: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        walker_selection: str = "degree",
        backend: Optional[Backend] = None,
    ):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if walker_selection not in ("degree", "uniform"):
            raise ValueError(
                "walker_selection must be 'degree' or 'uniform',"
                f" got {walker_selection!r}"
            )
        self.dimension = dimension
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.walker_selection = walker_selection
        self.backend = check_backend(backend)

    def sample(
        self, graph: Graph, budget: float, rng: RngLike = None
    ) -> WalkTrace:
        if resolve_backend(self.backend, graph) == "csr":
            return vectorized.sample_frontier(
                graph,
                self.dimension,
                budget,
                seeding=self.seeding,
                seed_cost=self.seed_cost,
                walker_selection=self.walker_selection,
                rng=rng,
                method=self.name,
            )
        generator = ensure_rng(rng)
        seeds = make_seeds(graph, self.dimension, self.seeding, generator)
        steps = walk_steps(budget, self.dimension, self.seed_cost)
        edges, per_walker, indices = self._run(
            graph, list(seeds), steps, generator
        )
        return WalkTrace(
            method=self.name,
            edges=edges,
            initial_vertices=seeds,
            budget=budget,
            seed_cost=self.seed_cost,
            per_walker=per_walker,
            walker_indices=indices,
        )

    def sample_from(
        self,
        graph: Graph,
        initial_vertices: Sequence[int],
        num_steps: int,
        rng: RngLike = None,
    ) -> WalkTrace:
        """Run FS from explicit initial positions for ``num_steps`` steps.

        Used by experiments that pin FS and MultipleRW to the *same*
        seeds (Figures 6 and 9) and by the chain-level verification
        tests.
        """
        if len(initial_vertices) != self.dimension:
            raise ValueError(
                f"expected {self.dimension} initial vertices,"
                f" got {len(initial_vertices)}"
            )
        if resolve_backend(self.backend, graph) == "csr":
            return vectorized.frontier_trace_from(
                graph,
                initial_vertices,
                num_steps,
                seed_cost=self.seed_cost,
                walker_selection=self.walker_selection,
                rng=rng,
                method=self.name,
            )
        generator = ensure_rng(rng)
        edges, per_walker, indices = self._run(
            graph, list(initial_vertices), num_steps, generator
        )
        return WalkTrace(
            method=self.name,
            edges=edges,
            initial_vertices=list(initial_vertices),
            budget=num_steps + self.seed_cost * self.dimension,
            seed_cost=self.seed_cost,
            per_walker=per_walker,
            walker_indices=indices,
        )

    def _run(self, graph, frontier, steps, rng):
        for v in frontier:
            if graph.degree(v) == 0:
                raise ValueError(
                    f"initial vertex {v} is isolated; FS cannot walk from it"
                )
        weights = FenwickTree([float(graph.degree(v)) for v in frontier])
        edges: List[Edge] = []
        per_walker: List[List[Edge]] = [[] for _ in frontier]
        indices: List[int] = []
        for _ in range(steps):
            if self.walker_selection == "degree":
                idx = weights.sample(rng)
            else:
                idx = rng.randrange(len(frontier))
            u = frontier[idx]
            v = graph.random_neighbor(u, rng)
            edges.append((u, v))
            per_walker[idx].append((u, v))
            indices.append(idx)
            frontier[idx] = v
            weights.update(idx, float(graph.degree(v)))
        return edges, per_walker, indices

    def __repr__(self) -> str:
        return (
            f"FrontierSampler(dimension={self.dimension},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost},"
            f" walker_selection={self.walker_selection!r},"
            f" backend={self.backend!r})"
        )
