"""Multiple independent random walkers (the paper's MultipleRW).

Section 4.4: ``m`` walkers start at ``m`` independently seeded vertices
and each independently performs ``floor(B/m - c)`` steps.  Because the
walkers are independent, their *stationary* occupancy of a vertex set
is degree-biased (``alpha_A = d_A / d``, Section 5.1) — seeding them
uniformly therefore starts them far from steady state, which is the
failure mode Figures 1, 5 and 9 exhibit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.sampling.base import (
    Backend,
    Sampler,
    SeedingMode,
    check_backend,
    check_pinned_seeds,
    check_seeding,
    multiple_walk_steps,
    resolve_backend,
)
from repro.util.rng import RngLike


class MultipleRandomWalk(Sampler):
    """``m`` independent walkers splitting the budget evenly."""

    name = "MultipleRW"

    def __init__(
        self,
        num_walkers: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        backend: Optional[Backend] = None,
    ):
        if num_walkers < 1:
            raise ValueError(f"num_walkers must be >= 1, got {num_walkers}")
        self.num_walkers = num_walkers
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.backend = check_backend(backend)

    def steps_per_walker(self, budget: float) -> int:
        """``floor(B/m - c)`` as in Section 4.4, floored at zero."""
        return multiple_walk_steps(budget, self.num_walkers, self.seed_cost)

    def start(
        self,
        graph: Graph,
        rng: RngLike = None,
        initial_vertices: Optional[List[int]] = None,
    ):
        """Seed ``m`` walkers and return their incremental session.

        The walkers share one random stream walker-by-walker, so the
        session's trace depends on its ``advance`` chunk boundaries;
        one ``advance_budget`` call reproduces the one-shot draw order.
        ``initial_vertices`` pins the ``m`` walker starts instead of
        drawing seeds (the sample-path experiments pin MultipleRW to
        the same seeds as FS).
        """
        from repro.sampling.session import (
            ArrayMultipleSession,
            MultipleWalkSession,
        )

        if initial_vertices is not None:
            check_pinned_seeds(initial_vertices, self.num_walkers)
        if resolve_backend(self.backend, graph) == "csr":
            return ArrayMultipleSession(
                self, graph, rng, initial_vertices=initial_vertices
            )
        return MultipleWalkSession(
            self, graph, rng, initial_vertices=initial_vertices
        )

    def __repr__(self) -> str:
        return (
            f"MultipleRandomWalk(num_walkers={self.num_walkers},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost},"
            f" backend={self.backend!r})"
        )
