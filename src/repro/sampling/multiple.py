"""Multiple independent random walkers (the paper's MultipleRW).

Section 4.4: ``m`` walkers start at ``m`` independently seeded vertices
and each independently performs ``floor(B/m - c)`` steps.  Because the
walkers are independent, their *stationary* occupancy of a vertex set
is degree-biased (``alpha_A = d_A / d``, Section 5.1) — seeding them
uniformly therefore starts them far from steady state, which is the
failure mode Figures 1, 5 and 9 exhibit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.sampling import vectorized
from repro.sampling.base import (
    Backend,
    Edge,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_backend,
    check_seeding,
    make_seeds,
    multiple_walk_steps,
    resolve_backend,
)
from repro.sampling.single import random_walk
from repro.util.rng import RngLike, ensure_rng


class MultipleRandomWalk(Sampler):
    """``m`` independent walkers splitting the budget evenly."""

    name = "MultipleRW"

    def __init__(
        self,
        num_walkers: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        backend: Optional[Backend] = None,
    ):
        if num_walkers < 1:
            raise ValueError(f"num_walkers must be >= 1, got {num_walkers}")
        self.num_walkers = num_walkers
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.backend = check_backend(backend)

    def steps_per_walker(self, budget: float) -> int:
        """``floor(B/m - c)`` as in Section 4.4, floored at zero."""
        return multiple_walk_steps(budget, self.num_walkers, self.seed_cost)

    def sample(
        self, graph: Graph, budget: float, rng: RngLike = None
    ) -> WalkTrace:
        if resolve_backend(self.backend, graph) == "csr":
            return vectorized.sample_multiple(
                graph,
                self.num_walkers,
                budget,
                seeding=self.seeding,
                seed_cost=self.seed_cost,
                rng=rng,
                method=self.name,
            )
        generator = ensure_rng(rng)
        seeds = make_seeds(graph, self.num_walkers, self.seeding, generator)
        steps = self.steps_per_walker(budget)
        per_walker: List[List[Edge]] = []
        flat: List[Edge] = []
        for start in seeds:
            edges = random_walk(graph, start, steps, generator)
            per_walker.append(edges)
            flat.extend(edges)
        return WalkTrace(
            method=self.name,
            edges=flat,
            initial_vertices=seeds,
            budget=budget,
            seed_cost=self.seed_cost,
            per_walker=per_walker,
        )

    def __repr__(self) -> str:
        return (
            f"MultipleRandomWalk(num_walkers={self.num_walkers},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost},"
            f" backend={self.backend!r})"
        )
