"""Sampler contract, traces, budgets and walker seeding.

Budget semantics follow the paper (Section 2): every vertex query has
unit cost and the total budget is ``B``.  One random-walk step is one
query.  Sampling one uniform random vertex costs ``seed_cost`` (the
paper's ``c``), which exceeds 1 when the user-id space is sparse — the
hit-ratio experiments of Section 6.4 set ``seed_cost = 1 / hit_ratio``.
"""

from __future__ import annotations

import abc
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.util.alias import AliasTable
from repro.util.backends import VALID_BACKENDS, check_backend_name
from repro.util.reentrancy import non_reentrant
from repro.util.rng import RngLike

Edge = Tuple[int, int]

#: How walkers choose their initial vertices.
#: - "uniform": independent uniform vertices (what a practitioner can
#:   actually do; the regime where FS shines).
#: - "stationary": independent degree-proportional vertices (walkers
#:   start in steady state; used by Figure 11).
SeedingMode = str

_VALID_SEEDING = ("uniform", "stationary")

#: Which execution substrate a sampler runs on.
#: - "list": the interpreted per-step walkers over adjacency-list
#:   graphs (the original, paper-literal implementation).
#: - "csr": the batch engine over CSR arrays
#:   (:mod:`repro.sampling.vectorized`), native-accelerated when a C
#:   compiler is available.  Uses the numpy block-draw protocol, so
#:   its streams differ from the list backend's for the same seed.
Backend = str

_VALID_BACKENDS = VALID_BACKENDS

_default_backend: Backend = "list"

#: The single validation point for backend names (shared with the
#: graph-I/O and dataset layers via util.backends).
_require_backend = check_backend_name


def check_backend(backend: Optional[Backend]) -> Optional[Backend]:
    """Validate a backend choice early (``None`` = use the default)."""
    if backend is None:
        return None
    return _require_backend(backend)


@non_reentrant("swaps the process-wide default backend")
def set_default_backend(backend: Backend) -> None:
    """Set the process-wide backend used when samplers don't pin one.

    This is how the experiment CLI opts every figure/table pipeline
    into the fast path without threading a parameter through each
    driver.
    """
    global _default_backend
    _default_backend = _require_backend(backend)


def get_default_backend() -> Backend:
    return _default_backend


@non_reentrant("swaps the process-wide default backend for its scope")
@contextmanager
def use_backend(backend: Backend):
    """Temporarily switch the default backend (restores on exit)."""
    previous = get_default_backend()
    set_default_backend(backend)
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend(backend: Optional[Backend], graph=None) -> Backend:
    """The backend a ``sample`` call should run on.

    Explicit sampler setting wins, else the process default.  A
    :class:`~repro.graph.csr.CSRGraph` input forces "csr" (the
    interpreted walkers cannot run on packed arrays) and conflicts
    loudly with an explicit "list" request.
    """
    resolved = (
        _default_backend if backend is None else _require_backend(backend)
    )
    if isinstance(graph, CSRGraph):
        if backend == "list":
            raise TypeError(
                "backend='list' cannot sample a CSRGraph; convert with"
                " to_graph() or drop the explicit backend"
            )
        return "csr"
    return resolved


@dataclass
class WalkTrace:
    """Output of an edge-sampling (random-walk family) run.

    ``edges[i] = (u_i, v_i)`` is the i-th sampled edge in the order the
    coordinated process emitted it; ``v_i`` is the walker's position
    after the step.  ``per_walker`` optionally groups the same edges by
    the walker that produced them (diagnostics; estimators use the flat
    sequence).
    """

    method: str
    edges: List[Edge]
    initial_vertices: List[int]
    budget: float
    seed_cost: float
    per_walker: Optional[List[List[Edge]]] = None
    #: For coordinated multi-walker samplers (FS, DFS): which walker
    #: made step i.  Lets analyses replay the exact frontier state
    #: sequence.  None for samplers without that notion.
    walker_indices: Optional[List[int]] = None

    @property
    def num_steps(self) -> int:
        return len(self.edges)

    @property
    def visited_vertices(self) -> List[int]:
        """The walker-position sequence ``v_1, ..., v_B`` (estimator input)."""
        return [v for _, v in self.edges]

    def spent(self) -> float:
        """Budget consumed: seeds plus one unit per step."""
        return self.seed_cost * len(self.initial_vertices) + len(self.edges)


@dataclass
class VertexTrace:
    """Output of independent random vertex sampling.

    ``vertices`` holds only the *valid* hits; the budget also paid for
    the misses implied by the hit ratio.
    """

    method: str
    vertices: List[int]
    budget: float
    cost_per_sample: float

    @property
    def num_samples(self) -> int:
        return len(self.vertices)


class Sampler(abc.ABC):
    """A sampling method runnable on any :class:`Graph`.

    The primary entry point is :meth:`start`, which returns a
    :class:`~repro.sampling.session.SamplerSession` — a resumable,
    incremental run whose walkers keep their state between calls.
    :meth:`sample` is a thin convenience wrapper (start, advance to the
    budget, return the trace) kept for one-shot callers; both paths
    consume the random stream identically, so ``sample`` produces the
    exact trace the pre-session API did.
    """

    #: Human-readable method name used in result tables.
    name: str = "sampler"

    @abc.abstractmethod
    def start(self, graph: Graph, rng: RngLike = None):
        """Begin an incremental sampling session on ``graph``.

        Draws the initial walker positions (paying their ``seed_cost``)
        and returns a :class:`~repro.sampling.session.SamplerSession`
        ready to :meth:`~repro.sampling.session.SamplerSession.advance`.
        """

    def sample(self, graph: Graph, budget: float, rng: RngLike = None):
        """Spend ``budget`` vertex-query units sampling ``graph``.

        Equivalent to ``start(graph, rng)`` followed by one
        ``advance_budget(budget)``; returns the session's
        :class:`WalkTrace` or :class:`VertexTrace`.
        """
        session = self.start(graph, rng=rng)
        session.advance_budget(budget)
        return session.trace()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _walkable_vertices(graph: Graph) -> List[int]:
    """Vertices a walker can occupy (degree >= 1).

    The paper assumes every vertex has at least one edge; crawled
    graphs can still contain isolated ids, which can never be walked
    from, so seeding skips them.
    """
    vertices = [v for v in graph.vertices() if graph.degree(v) > 0]
    if not vertices:
        raise ValueError("graph has no vertices with positive degree")
    return vertices


def uniform_seeds(graph: Graph, count: int, rng: random.Random) -> List[int]:
    """``count`` independent uniform vertices (with replacement).

    Uniform over the walkable (degree >= 1) vertices, matching the
    paper's random vertex sampling of valid user ids.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    vertices = _walkable_vertices(graph)
    return [vertices[rng.randrange(len(vertices))] for _ in range(count)]


def stationary_seeds(graph: Graph, count: int, rng: random.Random) -> List[int]:
    """``count`` independent degree-proportional vertices.

    Starting a walker at a vertex drawn with probability
    ``deg(v)/vol(V)`` is exactly starting it in steady state
    (Section 4.5's ideal, realized by Figure 11's experiment).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if graph.num_edges == 0:
        raise ValueError("graph has no edges; stationary law is undefined")
    table = AliasTable(graph.degrees())
    return [table.sample(rng) for _ in range(count)]


def make_seeds(
    graph: Graph, count: int, mode: SeedingMode, rng: random.Random
) -> List[int]:
    """Dispatch on the seeding mode."""
    if mode == "uniform":
        return uniform_seeds(graph, count, rng)
    if mode == "stationary":
        return stationary_seeds(graph, count, rng)
    raise ValueError(
        f"seeding must be one of {_VALID_SEEDING}, got {mode!r}"
    )


def check_pinned_seeds(initial_vertices, dimension: int) -> None:
    """Validate explicitly pinned walker seeds against the dimension.

    Shared by FS and DFS ``start(initial_vertices=...)`` so the
    pinned-seed contract lives in one place.
    """
    if len(initial_vertices) != dimension:
        raise ValueError(
            f"expected {dimension} initial vertices,"
            f" got {len(initial_vertices)}"
        )


def require_walkable_seeds(
    graph, vertices, reason: str = "cannot walk from it"
) -> None:
    """Raise if any seed is isolated (works on either graph backend)."""
    for v in vertices:
        if graph.degree(v) == 0:
            raise ValueError(f"initial vertex {v} is isolated; {reason}")


def check_seeding(mode: SeedingMode) -> SeedingMode:
    """Validate a seeding mode early (at sampler construction)."""
    if mode not in _VALID_SEEDING:
        raise ValueError(
            f"seeding must be one of {_VALID_SEEDING}, got {mode!r}"
        )
    return mode


def steps_within_budget(
    budget: float,
    num_walkers: int = 1,
    seed_cost: float = 1.0,
    split: bool = False,
) -> int:
    """The audited budget→steps rule every sampler and session shares.

    Budget semantics follow the paper (Section 2): each of the ``m``
    walkers' seeds costs ``c = seed_cost`` and every walk step costs one
    unit.

    - ``split=False`` (coordinated walkers — SingleRW, FS, DFS, MRW):
      the walkers share the budget, so the *total* step allowance is
      ``int(B - m*c)``, floored at 0 (Algorithm 1's ``until n >= B - mc``).
    - ``split=True`` (independent walkers — MultipleRW): the budget is
      divided evenly and each walker pays its own seed, so the
      *per-walker* allowance is ``int(B/m - c)``, floored at 0
      (Section 4.4).

    Truncation (not rounding) matches a crawler that cannot afford a
    fraction of a query; fractional budgets and seed costs are
    therefore legal inputs and simply leave change unspent.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if num_walkers < 1:
        raise ValueError(f"num_walkers must be >= 1, got {num_walkers}")
    if seed_cost < 0:
        raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
    if split:
        return max(0, int(budget / num_walkers - seed_cost))
    return max(0, int(budget - num_walkers * seed_cost))


def walk_steps(budget: float, num_walkers: int, seed_cost: float) -> int:
    """Total steps for walkers sharing a budget: ``int(B - m*c)``.

    Thin alias of :func:`steps_within_budget` kept for callers of the
    historical name.
    """
    return steps_within_budget(budget, num_walkers, seed_cost)


def multiple_walk_steps(
    budget: float, num_walkers: int, seed_cost: float
) -> int:
    """Steps *per walker* for independent walkers splitting a budget.

    Thin alias of :func:`steps_within_budget(..., split=True)` kept for
    callers of the historical name.
    """
    return steps_within_budget(budget, num_walkers, seed_cost, split=True)
