"""Sampler contract, traces, budgets and walker seeding.

Budget semantics follow the paper (Section 2): every vertex query has
unit cost and the total budget is ``B``.  One random-walk step is one
query.  Sampling one uniform random vertex costs ``seed_cost`` (the
paper's ``c``), which exceeds 1 when the user-id space is sparse — the
hit-ratio experiments of Section 6.4 set ``seed_cost = 1 / hit_ratio``.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.util.alias import AliasTable
from repro.util.rng import RngLike, ensure_rng

Edge = Tuple[int, int]

#: How walkers choose their initial vertices.
#: - "uniform": independent uniform vertices (what a practitioner can
#:   actually do; the regime where FS shines).
#: - "stationary": independent degree-proportional vertices (walkers
#:   start in steady state; used by Figure 11).
SeedingMode = str

_VALID_SEEDING = ("uniform", "stationary")


@dataclass
class WalkTrace:
    """Output of an edge-sampling (random-walk family) run.

    ``edges[i] = (u_i, v_i)`` is the i-th sampled edge in the order the
    coordinated process emitted it; ``v_i`` is the walker's position
    after the step.  ``per_walker`` optionally groups the same edges by
    the walker that produced them (diagnostics; estimators use the flat
    sequence).
    """

    method: str
    edges: List[Edge]
    initial_vertices: List[int]
    budget: float
    seed_cost: float
    per_walker: Optional[List[List[Edge]]] = None
    #: For coordinated multi-walker samplers (FS, DFS): which walker
    #: made step i.  Lets analyses replay the exact frontier state
    #: sequence.  None for samplers without that notion.
    walker_indices: Optional[List[int]] = None

    @property
    def num_steps(self) -> int:
        return len(self.edges)

    @property
    def visited_vertices(self) -> List[int]:
        """The walker-position sequence ``v_1, ..., v_B`` (estimator input)."""
        return [v for _, v in self.edges]

    def spent(self) -> float:
        """Budget consumed: seeds plus one unit per step."""
        return self.seed_cost * len(self.initial_vertices) + len(self.edges)


@dataclass
class VertexTrace:
    """Output of independent random vertex sampling.

    ``vertices`` holds only the *valid* hits; the budget also paid for
    the misses implied by the hit ratio.
    """

    method: str
    vertices: List[int]
    budget: float
    cost_per_sample: float

    @property
    def num_samples(self) -> int:
        return len(self.vertices)


class Sampler(abc.ABC):
    """A sampling method runnable on any :class:`Graph`."""

    #: Human-readable method name used in result tables.
    name: str = "sampler"

    @abc.abstractmethod
    def sample(self, graph: Graph, budget: float, rng: RngLike = None):
        """Spend ``budget`` vertex-query units sampling ``graph``.

        Returns a :class:`WalkTrace` or :class:`VertexTrace` depending
        on the method.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _walkable_vertices(graph: Graph) -> List[int]:
    """Vertices a walker can occupy (degree >= 1).

    The paper assumes every vertex has at least one edge; crawled
    graphs can still contain isolated ids, which can never be walked
    from, so seeding skips them.
    """
    vertices = [v for v in graph.vertices() if graph.degree(v) > 0]
    if not vertices:
        raise ValueError("graph has no vertices with positive degree")
    return vertices


def uniform_seeds(graph: Graph, count: int, rng: random.Random) -> List[int]:
    """``count`` independent uniform vertices (with replacement).

    Uniform over the walkable (degree >= 1) vertices, matching the
    paper's random vertex sampling of valid user ids.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    vertices = _walkable_vertices(graph)
    return [vertices[rng.randrange(len(vertices))] for _ in range(count)]


def stationary_seeds(graph: Graph, count: int, rng: random.Random) -> List[int]:
    """``count`` independent degree-proportional vertices.

    Starting a walker at a vertex drawn with probability
    ``deg(v)/vol(V)`` is exactly starting it in steady state
    (Section 4.5's ideal, realized by Figure 11's experiment).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if graph.num_edges == 0:
        raise ValueError("graph has no edges; stationary law is undefined")
    table = AliasTable(graph.degrees())
    return [table.sample(rng) for _ in range(count)]


def make_seeds(
    graph: Graph, count: int, mode: SeedingMode, rng: random.Random
) -> List[int]:
    """Dispatch on the seeding mode."""
    if mode == "uniform":
        return uniform_seeds(graph, count, rng)
    if mode == "stationary":
        return stationary_seeds(graph, count, rng)
    raise ValueError(
        f"seeding must be one of {_VALID_SEEDING}, got {mode!r}"
    )


def check_seeding(mode: SeedingMode) -> SeedingMode:
    """Validate a seeding mode early (at sampler construction)."""
    if mode not in _VALID_SEEDING:
        raise ValueError(
            f"seeding must be one of {_VALID_SEEDING}, got {mode!r}"
        )
    return mode


def walk_steps(budget: float, num_walkers: int, seed_cost: float) -> int:
    """Steps left after paying for seeds: ``B - m*c``, floored at 0.

    Matches the paper's accounting in Algorithm 1 (``until n >= B - mc``)
    and Section 4.4 (each MultipleRW walker performs ``B/m - c`` steps).
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if seed_cost < 0:
        raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
    remaining = budget - num_walkers * seed_cost
    return max(0, int(remaining))
