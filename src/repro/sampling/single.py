"""Single random walk (the paper's SingleRW, Section 4).

At each step the walker at ``v`` picks an incident edge uniformly at
random and crosses it.  On the symmetric graph ``G`` this chain's
stationary law samples *edges* uniformly, hence vertices proportional
to degree.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.sampling import vectorized
from repro.sampling.base import (
    Backend,
    Edge,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_backend,
    check_seeding,
    make_seeds,
    resolve_backend,
    walk_steps,
)
from repro.util.rng import RngLike, ensure_rng


def random_walk(
    graph: Graph, start: int, num_steps: int, rng
) -> List[Edge]:
    """Walk ``num_steps`` edges from ``start``; returns the edge sequence."""
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    edges: List[Edge] = []
    current = start
    for _ in range(num_steps):
        nxt = graph.random_neighbor(current, rng)
        edges.append((current, nxt))
        current = nxt
    return edges


class SingleRandomWalk(Sampler):
    """One walker, seeded uniformly (default) or in steady state.

    The single uniform seed costs ``seed_cost`` budget units; the rest
    of the budget is spent on walk steps.
    """

    name = "SingleRW"

    def __init__(
        self,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        backend: Optional[Backend] = None,
    ):
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.backend = check_backend(backend)

    def sample(
        self, graph: Graph, budget: float, rng: RngLike = None
    ) -> WalkTrace:
        if resolve_backend(self.backend, graph) == "csr":
            return vectorized.sample_single(
                graph,
                budget,
                seeding=self.seeding,
                seed_cost=self.seed_cost,
                rng=rng,
                method=self.name,
            )
        generator = ensure_rng(rng)
        start = make_seeds(graph, 1, self.seeding, generator)[0]
        steps = walk_steps(budget, 1, self.seed_cost)
        edges = random_walk(graph, start, steps, generator)
        return WalkTrace(
            method=self.name,
            edges=edges,
            initial_vertices=[start],
            budget=budget,
            seed_cost=self.seed_cost,
        )

    def __repr__(self) -> str:
        return (
            f"SingleRandomWalk(seeding={self.seeding!r},"
            f" seed_cost={self.seed_cost}, backend={self.backend!r})"
        )
