"""Single random walk (the paper's SingleRW, Section 4).

At each step the walker at ``v`` picks an incident edge uniformly at
random and crosses it.  On the symmetric graph ``G`` this chain's
stationary law samples *edges* uniformly, hence vertices proportional
to degree.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.sampling.base import (
    Backend,
    Edge,
    Sampler,
    SeedingMode,
    check_backend,
    check_pinned_seeds,
    check_seeding,
    resolve_backend,
)
from repro.util.rng import RngLike


def random_walk(
    graph: Graph, start: int, num_steps: int, rng
) -> List[Edge]:
    """Walk ``num_steps`` edges from ``start``; returns the edge sequence."""
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    edges: List[Edge] = []
    current = start
    for _ in range(num_steps):
        nxt = graph.random_neighbor(current, rng)
        edges.append((current, nxt))
        current = nxt
    return edges


class SingleRandomWalk(Sampler):
    """One walker, seeded uniformly (default) or in steady state.

    The single uniform seed costs ``seed_cost`` budget units; the rest
    of the budget is spent on walk steps.
    """

    name = "SingleRW"

    def __init__(
        self,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        backend: Optional[Backend] = None,
    ):
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.backend = check_backend(backend)

    def start(
        self,
        graph: Graph,
        rng: RngLike = None,
        initial_vertices: Optional[List[int]] = None,
    ):
        """Seed one walker and return its incremental session.

        ``initial_vertices`` (a single-element list) pins the walker's
        start instead of drawing a seed — no seed uniforms are
        consumed, matching a walk launched from a known vertex.
        """
        from repro.sampling.session import (
            ArraySingleSession,
            SingleWalkSession,
        )

        if initial_vertices is not None:
            check_pinned_seeds(initial_vertices, 1)
        if resolve_backend(self.backend, graph) == "csr":
            return ArraySingleSession(
                self, graph, rng, initial_vertices=initial_vertices
            )
        return SingleWalkSession(
            self, graph, rng, initial_vertices=initial_vertices
        )

    def __repr__(self) -> str:
        return (
            f"SingleRandomWalk(seeding={self.seeding!r},"
            f" seed_cost={self.seed_cost}, backend={self.backend!r})"
        )
