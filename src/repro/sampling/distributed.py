"""Distributed Frontier Sampling (Section 5.3, Theorem 5.5).

FS needs no central coordinator: run ``m`` independent walkers where
*leaving* vertex ``v`` takes an ``Exponential(deg(v))`` holding time.
By uniformization, the embedded jump chain of this continuous-time
process is exactly the FS chain — the walker with the largest total
rate (degree) jumps proportionally more often, reproducing line 4 of
Algorithm 1 without any communication.

The simulation is event-driven (a heap of next-jump times), so the
"distributed" walkers really do evolve independently; only the merged,
time-ordered edge sequence is reported, which is what an asynchronous
collector would observe.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.sampling.base import (
    Sampler,
    SeedingMode,
    check_pinned_seeds,
    check_seeding,
)
from repro.util.rng import RngLike


class DistributedFrontierSampler(Sampler):
    """FS realized as independent exponential-clock walkers.

    ``budget`` bounds the number of sampled edges (total jumps), making
    results comparable with :class:`FrontierSampler` under identical
    budget accounting; the continuous-time horizon is whatever it takes
    to make that many jumps.
    """

    name = "DistributedFS"

    def __init__(
        self,
        dimension: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
    ):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost

    def start(
        self,
        graph: Graph,
        rng: RngLike = None,
        initial_vertices=None,
    ):
        """Seed the clocked walkers and return their incremental session.

        ``initial_vertices`` pins the walkers to explicit positions
        instead of drawing seeds (used by FS-equivalence experiments).
        """
        from repro.sampling.session import DistributedWalkSession

        if initial_vertices is not None:
            check_pinned_seeds(initial_vertices, self.dimension)
        return DistributedWalkSession(
            self, graph, rng, initial_vertices=initial_vertices
        )

    def __repr__(self) -> str:
        return (
            f"DistributedFrontierSampler(dimension={self.dimension},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost})"
        )
