"""Distributed Frontier Sampling (Section 5.3, Theorem 5.5).

FS needs no central coordinator: run ``m`` independent walkers where
*leaving* vertex ``v`` takes an ``Exponential(deg(v))`` holding time.
By uniformization, the embedded jump chain of this continuous-time
process is exactly the FS chain — the walker with the largest total
rate (degree) jumps proportionally more often, reproducing line 4 of
Algorithm 1 without any communication.

The simulation is event-driven (a heap of next-jump times), so the
"distributed" walkers really do evolve independently; only the merged,
time-ordered edge sequence is reported, which is what an asynchronous
collector would observe.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.graph.graph import Graph
from repro.sampling.base import (
    Edge,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_seeding,
    make_seeds,
    walk_steps,
)
from repro.util.rng import RngLike, ensure_rng


class DistributedFrontierSampler(Sampler):
    """FS realized as independent exponential-clock walkers.

    ``budget`` bounds the number of sampled edges (total jumps), making
    results comparable with :class:`FrontierSampler` under identical
    budget accounting; the continuous-time horizon is whatever it takes
    to make that many jumps.
    """

    name = "DistributedFS"

    def __init__(
        self,
        dimension: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
    ):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost

    def sample(
        self, graph: Graph, budget: float, rng: RngLike = None
    ) -> WalkTrace:
        generator = ensure_rng(rng)
        seeds = make_seeds(graph, self.dimension, self.seeding, generator)
        steps = walk_steps(budget, self.dimension, self.seed_cost)
        edges, per_walker, indices = self._run(graph, seeds, steps, generator)
        return WalkTrace(
            method=self.name,
            edges=edges,
            initial_vertices=seeds,
            budget=budget,
            seed_cost=self.seed_cost,
            per_walker=per_walker,
            walker_indices=indices,
        )

    def _run(self, graph, seeds, steps, rng):
        positions = list(seeds)
        for v in positions:
            if graph.degree(v) == 0:
                raise ValueError(
                    f"initial vertex {v} is isolated; cannot walk from it"
                )
        # Event queue of (next_jump_time, walker_index).  The tuple's
        # second element breaks ties deterministically.
        queue: List[Tuple[float, int]] = []
        now = 0.0
        for i, v in enumerate(positions):
            holding = rng.expovariate(graph.degree(v))
            heapq.heappush(queue, (now + holding, i))
        edges: List[Edge] = []
        per_walker: List[List[Edge]] = [[] for _ in positions]
        indices: List[int] = []
        for _ in range(steps):
            now, idx = heapq.heappop(queue)
            u = positions[idx]
            v = graph.random_neighbor(u, rng)
            edges.append((u, v))
            per_walker[idx].append((u, v))
            indices.append(idx)
            positions[idx] = v
            holding = rng.expovariate(graph.degree(v))
            heapq.heappush(queue, (now + holding, idx))
        return edges, per_walker, indices

    def __repr__(self) -> str:
        return (
            f"DistributedFrontierSampler(dimension={self.dimension},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost})"
        )
