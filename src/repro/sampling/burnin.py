"""Burn-in handling (Section 4.3).

The MCMC literature's standard transient mitigation is to discard the
first ``w`` samples of a walk.  The paper points out two problems with
it — it only addresses non-stationarity (not trapping), and ``w`` is
hard to choose when the graph is unknown — and proposes FS instead.
These helpers make burn-in available so the comparison can be run (the
burn-in ablation benchmark quantifies both problems).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.sampling.base import WalkTrace


def discard_burn_in(trace: WalkTrace, burn_in: int) -> WalkTrace:
    """A copy of ``trace`` with its first ``burn_in`` edges removed.

    For multi-walker traces the *per-walker* prefixes are dropped
    proportionally (each walker discards ``burn_in / m`` of its own
    steps), matching how a practitioner would burn in m independent
    chains.  The returned trace's budget still reflects the full spend
    — burned samples are paid for, just not used.
    """
    if burn_in < 0:
        raise ValueError(f"burn_in must be >= 0, got {burn_in}")
    if burn_in == 0:
        return trace
    if trace.per_walker is None:
        return replace(
            trace,
            edges=trace.edges[burn_in:],
            per_walker=None,
            walker_indices=None,
        )
    num_walkers = len(trace.per_walker)
    per_walker_burn = max(1, burn_in // num_walkers)
    kept_per_walker: List[List] = [
        edges[per_walker_burn:] for edges in trace.per_walker
    ]
    kept_flat = [e for edges in kept_per_walker for e in edges]
    return replace(
        trace,
        edges=kept_flat,
        per_walker=kept_per_walker,
        walker_indices=None,  # interleaving no longer meaningful
    )


def effective_sample_count(trace: WalkTrace, burn_in: int) -> int:
    """Samples left after burn-in (0 when burn-in eats everything)."""
    return max(0, trace.num_steps - burn_in)
