"""Metropolis–Hastings random walk (MRW) — uniform-vertex baseline.

Section 7 notes that MRW samples *vertices* uniformly (not edges) by
accepting a proposed move from ``u`` to ``v`` with probability
``min(1, deg(u)/deg(v))`` and staying put otherwise.  The paper cites
[15, 29] showing plain RW estimates beat MRW's; the ablation benchmark
reproduces that comparison.

Because MRW's vertex samples are already uniform, vertex label density
is estimated by the *plain average* over visited vertices — no ``1/deg``
reweighting (see :func:`repro.estimators.vertex_density.vertex_density_from_vertices`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.sampling.base import (
    Backend,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_backend,
    check_seeding,
    resolve_backend,
)
from repro.util.rng import RngLike


class MetropolisHastingsWalk(Sampler):
    """MH walk targeting the uniform distribution over vertices.

    Rejected proposals re-record the current vertex (a self-transition)
    and consume one budget unit, mirroring the real crawl cost of the
    rejected neighbor query.  The trace stores the *visited vertex*
    sequence via self-edges ``(v, v)`` replaced by the convention of
    recording the proposal edge only on acceptance; estimator code uses
    :attr:`visited` for vertex-level estimates.
    """

    name = "MRW"

    def __init__(
        self,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        backend: Optional[Backend] = None,
    ):
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        self.backend = check_backend(backend)

    def start(self, graph: Graph, rng: RngLike = None):
        """Seed the MH walker and return its incremental session."""
        from repro.sampling.session import (
            ArrayMetropolisSession,
            MetropolisWalkSession,
        )

        if resolve_backend(self.backend, graph) == "csr":
            return ArrayMetropolisSession(self, graph, rng)
        return MetropolisWalkSession(self, graph, rng)

    def __repr__(self) -> str:
        return (
            f"MetropolisHastingsWalk(seeding={self.seeding!r},"
            f" seed_cost={self.seed_cost}, backend={self.backend!r})"
        )


class MetropolisTrace(WalkTrace):
    """WalkTrace plus the full visited-vertex sequence (incl. holds)."""

    visited: List[int]

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.visited = []

    def spent(self) -> float:
        """Budget consumed: seeds plus one unit per *proposal*.

        ``edges`` holds only accepted transitions, but a rejected
        proposal still costs its neighbor query (one entry in
        ``visited`` either way), so the count must come from the visit
        sequence, not the edge list.
        """
        return self.seed_cost * len(self.initial_vertices) + len(self.visited)
