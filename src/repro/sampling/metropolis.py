"""Metropolis–Hastings random walk (MRW) — uniform-vertex baseline.

Section 7 notes that MRW samples *vertices* uniformly (not edges) by
accepting a proposed move from ``u`` to ``v`` with probability
``min(1, deg(u)/deg(v))`` and staying put otherwise.  The paper cites
[15, 29] showing plain RW estimates beat MRW's; the ablation benchmark
reproduces that comparison.

Because MRW's vertex samples are already uniform, vertex label density
is estimated by the *plain average* over visited vertices — no ``1/deg``
reweighting (see :func:`repro.estimators.vertex_density.vertex_density_from_vertices`).
"""

from __future__ import annotations

from typing import List

from repro.graph.graph import Graph
from repro.sampling.base import (
    Edge,
    Sampler,
    SeedingMode,
    WalkTrace,
    check_seeding,
    make_seeds,
    walk_steps,
)
from repro.util.rng import RngLike, ensure_rng


class MetropolisHastingsWalk(Sampler):
    """MH walk targeting the uniform distribution over vertices.

    Rejected proposals re-record the current vertex (a self-transition)
    and consume one budget unit, mirroring the real crawl cost of the
    rejected neighbor query.  The trace stores the *visited vertex*
    sequence via self-edges ``(v, v)`` replaced by the convention of
    recording the proposal edge only on acceptance; estimator code uses
    :attr:`visited` for vertex-level estimates.
    """

    name = "MRW"

    def __init__(self, seeding: SeedingMode = "uniform", seed_cost: float = 1.0):
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost

    def sample(
        self, graph: Graph, budget: float, rng: RngLike = None
    ) -> "MetropolisTrace":
        generator = ensure_rng(rng)
        start = make_seeds(graph, 1, self.seeding, generator)[0]
        steps = walk_steps(budget, 1, self.seed_cost)
        visited: List[int] = []
        edges: List[Edge] = []
        current = start
        for _ in range(steps):
            proposal = graph.random_neighbor(current, generator)
            accept = graph.degree(current) / graph.degree(proposal)
            if generator.random() < accept:
                edges.append((current, proposal))
                current = proposal
            visited.append(current)
        trace = MetropolisTrace(
            method=self.name,
            edges=edges,
            initial_vertices=[start],
            budget=budget,
            seed_cost=self.seed_cost,
        )
        trace.visited = visited
        return trace

    def __repr__(self) -> str:
        return (
            f"MetropolisHastingsWalk(seeding={self.seeding!r},"
            f" seed_cost={self.seed_cost})"
        )


class MetropolisTrace(WalkTrace):
    """WalkTrace plus the full visited-vertex sequence (incl. holds)."""

    visited: List[int]

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.visited = []
