"""Batch walker engine over CSR arrays — the ``csr`` backend.

Runs SRW, MHRW and m-dimensional FS against a
:class:`~repro.graph.csr.CSRGraph` with a fixed *draw protocol*: all
randomness is pre-drawn in blocks from a :class:`numpy.random.Generator`
and every step consumes a protocol-defined number of uniforms, scaled
onto integer ranges with ``int(u * range)``.  All weight arithmetic is
exact int64, so the three interchangeable kernel implementations —

- the native C kernels (:mod:`repro.sampling._native`), used when a
  compiler is available,
- the pure-Python loops below running over CSR arrays, and
- the same loops running over a :class:`~repro.graph.graph.Graph`'s
  adjacency lists (the ``list`` reference used by the parity tests)

produce **bit-for-bit identical traces** from the same seeded
generator.  FS's degree-proportional walker pick is a cumulative-weight
search over the frontier's degree vector (not the per-step Fenwick tree
the interpreted sampler uses): one uniform scaled onto the frontier's
total degree lands in some walker's slice of the concatenated
incident-edge lists, which *is* the degree-proportional walker pick
plus a uniform neighbor pick (Lemma 5.1's edge-frontier view).

Draw protocol (per ``sample`` call): seed uniforms first — one per
seed, against the walkable-vertex count (uniform seeding) or the total
degree (stationary seeding) — then step uniforms: SRW one per step;
FS one per step (degree selection) or two (uniform selection); MHRW
two per step (proposal, accept); MultipleRW one block of ``steps``
uniforms per walker, walker by walker.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph, get_csr
from repro.graph.graph import Graph
from repro.sampling import _native
from repro.sampling.base import (
    Edge,
    WalkTrace,
    check_seeding,
    multiple_walk_steps,
    walk_steps,
)
from repro.sampling.fused import FusedBlock
from repro.util.rng import NpRngLike, ensure_np_rng

GraphLike = Union[Graph, CSRGraph]


# ----------------------------------------------------------------------
# traces backed by arrays (lazy list materialization)
# ----------------------------------------------------------------------
class ArrayWalkTrace(WalkTrace):
    """A :class:`WalkTrace` whose step record lives in int64 arrays.

    ``edges`` / ``per_walker`` / ``walker_indices`` /
    ``visited_vertices`` materialize their list forms lazily on *first*
    access and cache them (each is an O(num_steps) conversion), so hot
    paths that only need the arrays — or only need the trace recorded —
    never pay for a million tuple allocations.  The cached lists are
    returned by reference and must be treated as read-only — mutating
    one corrupts every later read.  Internal consumers (the estimator
    layer dispatches via :mod:`repro.estimators._vectorized`) read
    :attr:`step_sources` / :attr:`step_targets` directly and never
    touch the list views.
    """

    def __init__(
        self,
        method: str,
        step_sources: np.ndarray,
        step_targets: np.ndarray,
        initial_vertices: List[int],
        budget: float,
        seed_cost: float,
        step_walkers: Optional[np.ndarray] = None,
    ):
        self.method = method
        self.initial_vertices = initial_vertices
        self.budget = budget
        self.seed_cost = seed_cost
        #: int64 arrays: sources/targets of step i; optionally which
        #: walker made step i.
        self.step_sources = step_sources
        self.step_targets = step_targets
        self.step_walkers = step_walkers
        self._edges: Optional[List[Edge]] = None
        self._per_walker: Optional[List[List[Edge]]] = None
        self._walker_indices: Optional[List[int]] = None
        self._visited_vertices: Optional[List[int]] = None

    @property
    def edges(self) -> List[Edge]:
        if self._edges is None:
            self._edges = list(
                zip(self.step_sources.tolist(), self.step_targets.tolist())
            )
        return self._edges

    @property
    def walker_indices(self) -> Optional[List[int]]:
        if self.step_walkers is None:
            return None
        if self._walker_indices is None:
            self._walker_indices = self.step_walkers.tolist()
        return self._walker_indices

    @property
    def per_walker(self) -> Optional[List[List[Edge]]]:
        if self.step_walkers is None:
            return None
        if self._per_walker is None:
            walkers = len(self.initial_vertices)
            order = np.argsort(self.step_walkers, kind="stable")
            sources = self.step_sources[order]
            targets = self.step_targets[order]
            bounds = np.searchsorted(
                self.step_walkers[order], np.arange(walkers + 1)
            )
            self._per_walker = [
                list(
                    zip(
                        sources[bounds[i] : bounds[i + 1]].tolist(),
                        targets[bounds[i] : bounds[i + 1]].tolist(),
                    )
                )
                for i in range(walkers)
            ]
        return self._per_walker

    @property
    def num_steps(self) -> int:
        return int(self.step_sources.size)

    @property
    def visited_vertices(self) -> List[int]:
        if self._visited_vertices is None:
            self._visited_vertices = self.step_targets.tolist()
        return self._visited_vertices

    def spent(self) -> float:
        return (
            self.seed_cost * len(self.initial_vertices)
            + self.step_sources.size
        )


class ArrayMetropolisTrace(ArrayWalkTrace):
    """Array-backed MH trace: accepted edges plus full visit sequence."""

    def __init__(self, *args, visited_array: np.ndarray, **kwargs):
        super().__init__(*args, **kwargs)
        self.visited_array = visited_array
        self._visited: Optional[List[int]] = None

    @property
    def visited(self) -> List[int]:
        """Visited-vertex sequence including rejection holds."""
        if self._visited is None:
            self._visited = self.visited_array.tolist()
        return self._visited

    def spent(self) -> float:
        """Seeds plus one unit per proposal (rejections cost too)."""
        return (
            self.seed_cost * len(self.initial_vertices)
            + self.visited_array.size
        )


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def degrees_array(graph: GraphLike) -> np.ndarray:
    """Degree sequence of either representation as an int64 array."""
    if isinstance(graph, CSRGraph):
        return graph.degrees()
    return np.asarray(graph.degrees(), dtype=np.int64)


def _scale(u: float, range_: int) -> int:
    """``int(u * range_)`` with the same clamp the C kernels apply."""
    value = int(u * range_)
    return range_ - 1 if value >= range_ else value


def _accessors(graph: GraphLike):
    """(degree, neighbor-at-offset) closures for the Python kernels."""
    if isinstance(graph, CSRGraph):
        indptr, indices = graph.as_lists()

        def degree_of(v: int) -> int:
            return indptr[v + 1] - indptr[v]

        def neighbor_at(v: int, offset: int) -> int:
            return indices[indptr[v] + offset]

    else:
        adjacency = [graph.neighbors(v) for v in graph.vertices()]

        def degree_of(v: int) -> int:
            return len(adjacency[v])

        def neighbor_at(v: int, offset: int) -> int:
            return adjacency[v][offset]

    return degree_of, neighbor_at


def _want_native(graph: GraphLike, native: Optional[bool]) -> bool:
    if native is False:
        return False
    usable = isinstance(graph, CSRGraph) and _native.available()
    if native is True and not usable:
        raise ValueError(
            "native kernels requested but unavailable (need a CSRGraph"
            " input, a C compiler on PATH, and REPRO_NO_NATIVE unset)"
        )
    return usable


def _fast_form(graph: GraphLike, native: Optional[bool]) -> GraphLike:
    """The representation a sampler entry point should run on.

    On the default auto path an adjacency-list graph is converted (via
    the version-tagged cache) so the native kernels can engage — this
    is what makes ``backend="csr"`` fast even when callers hold a
    plain :class:`Graph`.  An explicit ``native=False`` pins the input
    representation; the parity tests rely on that to drive the
    list-adjacency reference kernels.
    """
    if native is None and isinstance(graph, Graph):
        return get_csr(graph)
    return graph


def uniform_seeds_np(
    degrees: np.ndarray, count: int, rng: np.random.Generator
) -> List[int]:
    """``count`` uniform draws over the walkable (degree >= 1) vertices."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    walkable = np.flatnonzero(degrees > 0)
    if walkable.size == 0:
        raise ValueError("graph has no vertices with positive degree")
    positions = (rng.random(count) * walkable.size).astype(np.int64)
    np.minimum(positions, walkable.size - 1, out=positions)
    return walkable[positions].tolist()


def stationary_seeds_np(
    degrees: np.ndarray, count: int, rng: np.random.Generator
) -> List[int]:
    """``count`` degree-proportional draws (steady-state seeding)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    cumulative = np.cumsum(degrees, dtype=np.int64)
    total = int(cumulative[-1]) if cumulative.size else 0
    if total == 0:
        raise ValueError("graph has no edges; stationary law is undefined")
    targets = (rng.random(count) * total).astype(np.int64)
    np.minimum(targets, total - 1, out=targets)
    return np.searchsorted(cumulative, targets, side="right").tolist()


def make_seeds_np(
    graph: GraphLike, count: int, mode: str, rng: np.random.Generator
) -> List[int]:
    """Dispatch on the seeding mode (numpy draw protocol)."""
    degrees = degrees_array(graph)
    if mode == "uniform":
        return uniform_seeds_np(degrees, count, rng)
    if mode == "stationary":
        return stationary_seeds_np(degrees, count, rng)
    raise ValueError(
        f"seeding must be one of ('uniform', 'stationary'), got {mode!r}"
    )


# ----------------------------------------------------------------------
# step kernels (native dispatch + pure-Python mirrors)
# ----------------------------------------------------------------------
def _check_frontier_start(graph: GraphLike, positions: np.ndarray) -> None:
    """Reject isolated frontier seeds, vectorized.

    Sessions re-enter the frontier runners once per advance, so a
    per-walker Python loop of numpy scalar reads would tax every chunk.
    """
    if isinstance(graph, CSRGraph):
        start_degrees = graph.indptr[positions + 1] - graph.indptr[positions]
    else:
        start_degrees = np.asarray(
            [graph.degree(int(v)) for v in positions], dtype=np.int64
        )
    if positions.size and not start_degrees.all():
        isolated = int(positions[int(np.argmin(start_degrees != 0))])
        raise ValueError(
            f"initial vertex {isolated} is isolated; FS cannot walk from it"
        )


def run_random_walk(
    graph: GraphLike,
    start: int,
    steps: int,
    rng: np.random.Generator,
    native: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """SRW step record ``(sources, targets)``; one uniform per step."""
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    uniforms = rng.random(steps)
    if _want_native(graph, native):
        return _native.rw_steps(
            graph.indptr, graph.indices, start, steps, uniforms
        )
    degree_of, neighbor_at = _accessors(graph)
    draws = uniforms.tolist()
    sources: List[int] = []
    targets: List[int] = []
    current = start
    for k in range(steps):
        degree = degree_of(current)
        nxt = neighbor_at(current, _scale(draws[k], degree))
        sources.append(current)
        targets.append(nxt)
        current = nxt
    return (
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    )


def run_frontier(
    graph: GraphLike,
    frontier: Sequence[int],
    steps: int,
    rng: np.random.Generator,
    walker_selection: str = "degree",
    native: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """FS step record ``(sources, targets, walker_indices)``.

    Degree selection consumes one uniform per step (cumulative-weight
    search over the frontier degree vector); the uniform-walker
    ablation consumes two.
    """
    if walker_selection not in ("degree", "uniform"):
        raise ValueError(
            "walker_selection must be 'degree' or 'uniform',"
            f" got {walker_selection!r}"
        )
    positions_array = np.asarray(frontier, dtype=np.int64)
    _check_frontier_start(graph, positions_array)
    positions = positions_array.tolist()
    degree_selection = walker_selection == "degree"
    uniforms = rng.random(steps if degree_selection else 2 * steps)
    if _want_native(graph, native):
        return _native.fs_steps(
            graph.indptr,
            graph.indices,
            positions_array.copy(),  # the kernel mutates it in place
            steps,
            degree_selection,
            uniforms,
        )
    degree_of, neighbor_at = _accessors(graph)
    draws = uniforms.tolist()
    m = len(positions)
    total = sum(degree_of(v) for v in positions)
    sources: List[int] = []
    targets: List[int] = []
    walker_of: List[int] = []
    for k in range(steps):
        if degree_selection:
            if total <= 0:
                raise ValueError(
                    "frontier reached a state with zero total degree"
                )
            target = _scale(draws[k], total)
            acc = 0
            idx = 0
            while True:
                degree = degree_of(positions[idx])
                if target < acc + degree:
                    offset = target - acc
                    break
                acc += degree
                idx += 1
        else:
            idx = _scale(draws[2 * k], m)
            degree = degree_of(positions[idx])
            if degree <= 0:
                raise ValueError(
                    "frontier reached a state with zero total degree"
                )
            offset = _scale(draws[2 * k + 1], degree)
        current = positions[idx]
        old_degree = degree_of(current)
        nxt = neighbor_at(current, offset)
        sources.append(current)
        targets.append(nxt)
        walker_of.append(idx)
        positions[idx] = nxt
        total += degree_of(nxt) - old_degree
    return (
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        np.asarray(walker_of, dtype=np.int64),
    )


def run_metropolis(
    graph: GraphLike,
    start: int,
    steps: int,
    rng: np.random.Generator,
    native: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """MH step record ``(edge_sources, edge_targets, visited)``.

    Two uniforms per step; accepted transitions only appear in the edge
    arrays, while ``visited`` records the position after every step.
    """
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    uniforms = rng.random(2 * steps)
    if _want_native(graph, native):
        return _native.mh_steps(
            graph.indptr, graph.indices, start, steps, uniforms
        )
    degree_of, neighbor_at = _accessors(graph)
    draws = uniforms.tolist()
    edge_sources: List[int] = []
    edge_targets: List[int] = []
    visited: List[int] = []
    current = start
    for k in range(steps):
        degree_u = degree_of(current)
        proposal = neighbor_at(current, _scale(draws[2 * k], degree_u))
        degree_v = degree_of(proposal)
        if draws[2 * k + 1] * degree_v < degree_u:
            edge_sources.append(current)
            edge_targets.append(proposal)
            current = proposal
        visited.append(current)
    return (
        np.asarray(edge_sources, dtype=np.int64),
        np.asarray(edge_targets, dtype=np.int64),
        np.asarray(visited, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# fused walk+accumulate runners
#
# Each mirrors the plain runner above it draw for draw (same uniforms,
# same transition arithmetic, bit-identical walker state) but folds the
# eq. (7)/(9) sufficient statistics into a FusedBlock instead of
# materializing step arrays.  The native path stays O(max_degree) in
# scratch; the pure-Python fallback reuses the plain runner and folds
# its arrays vectorized — O(steps) memory, but only correctness (not
# the memory bound) is promised without native kernels.
# ----------------------------------------------------------------------
def run_random_walk_acc(
    graph: GraphLike,
    start: int,
    steps: int,
    rng: np.random.Generator,
    block: FusedBlock,
    native: Optional[bool] = None,
) -> int:
    """Fused SRW advance; accumulates into ``block``, returns final vertex."""
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    if _want_native(graph, native):
        assert isinstance(graph, CSRGraph)
        uniforms = rng.random(steps)
        edge_buffer = block.new_edge_buffer(steps)
        final = _native.rw_steps_acc(
            graph.indptr, graph.indices, start, steps, uniforms,
            block.key_base, block.deg_counts, block.visit_counts,
            edge_buffer,
        )
        block.commit_edge_keys(edge_buffer, steps)
        block.steps += steps
        return final
    sources, targets = run_random_walk(graph, start, steps, rng, native)
    block.fold_step_arrays(degrees_array(graph), sources, targets)
    return int(targets[-1]) if steps else int(start)


def run_frontier_acc(
    graph: GraphLike,
    frontier: Sequence[int],
    steps: int,
    rng: np.random.Generator,
    block: FusedBlock,
    walker_selection: str = "degree",
    native: Optional[bool] = None,
) -> List[int]:
    """Fused FS advance; accumulates into ``block``.

    Returns the updated frontier (the same walker state
    :func:`run_frontier` leaves behind).
    """
    if walker_selection not in ("degree", "uniform"):
        raise ValueError(
            "walker_selection must be 'degree' or 'uniform',"
            f" got {walker_selection!r}"
        )
    if _want_native(graph, native):
        assert isinstance(graph, CSRGraph)
        positions_array = np.asarray(frontier, dtype=np.int64)
        _check_frontier_start(graph, positions_array)
        degree_selection = walker_selection == "degree"
        uniforms = rng.random(steps if degree_selection else 2 * steps)
        edge_buffer = block.new_edge_buffer(steps)
        _native.fs_steps_acc(
            graph.indptr, graph.indices, positions_array, steps,
            degree_selection, uniforms, block.key_base, block.deg_counts,
            block.visit_counts, edge_buffer,
        )
        block.commit_edge_keys(edge_buffer, steps)
        block.steps += steps
        return positions_array.tolist()
    sources, targets, walkers = run_frontier(
        graph, frontier, steps, rng, walker_selection, native
    )
    block.fold_step_arrays(degrees_array(graph), sources, targets)
    positions = np.asarray(frontier, dtype=np.int64)
    positions[walkers] = targets
    return positions.tolist()


def run_metropolis_acc(
    graph: GraphLike,
    start: int,
    steps: int,
    rng: np.random.Generator,
    block: FusedBlock,
    native: Optional[bool] = None,
) -> int:
    """Fused MH advance; accumulates accepted proposals into ``block``.

    Returns the final vertex.  ``block.steps`` grows by the accepted
    count — the streaming estimators consume accepted transitions only,
    mirroring ``ArrayMetropolisTrace.step_targets``.
    """
    if graph.degree(start) == 0:
        raise ValueError(f"cannot walk from isolated vertex {start}")
    if _want_native(graph, native):
        assert isinstance(graph, CSRGraph)
        uniforms = rng.random(2 * steps)
        edge_buffer = block.new_edge_buffer(steps)
        accepted, final = _native.mh_steps_acc(
            graph.indptr, graph.indices, start, steps, uniforms,
            block.key_base, block.deg_counts, block.visit_counts,
            edge_buffer,
        )
        block.commit_edge_keys(edge_buffer, accepted)
        block.steps += accepted
        return final
    edge_sources, edge_targets, visited = run_metropolis(
        graph, start, steps, rng, native
    )
    block.fold_step_arrays(degrees_array(graph), edge_sources, edge_targets)
    return int(visited[-1]) if steps else int(start)


def batch_walk_positions(
    graph: GraphLike,
    starts: Sequence[int],
    steps: int,
    rng: NpRngLike = None,
) -> np.ndarray:
    """Advance many independent walkers in lockstep, fully vectorized.

    Returns the ``(steps + 1, len(starts))`` position history, row 0
    being ``starts``.  Every step is one ``rng.integers`` draw into
    each walker's CSR row slice — no per-walker Python loop — which is
    the building block for the sharded multi-process crawls the CSR
    core is meant to unlock.  (Utility path: not part of the
    trace-parity protocol.)
    """
    csr = get_csr(graph)
    generator = ensure_np_rng(rng)
    positions = np.asarray(starts, dtype=np.int64)
    if positions.size and np.any(csr.degrees()[positions] == 0):
        raise ValueError("all starting vertices must have degree >= 1")
    history = np.empty((steps + 1, positions.size), dtype=np.int64)
    history[0] = positions
    for k in range(steps):
        positions = csr.random_neighbors(positions, generator)
        history[k + 1] = positions
    return history


# ----------------------------------------------------------------------
# sampler-level entry points (budget/seed semantics match the
# interpreted samplers in single.py / multiple.py / frontier.py /
# metropolis.py)
# ----------------------------------------------------------------------
def sample_single(
    graph: GraphLike,
    budget: float,
    seeding: str = "uniform",
    seed_cost: float = 1.0,
    rng: NpRngLike = None,
    method: str = "SingleRW",
    native: Optional[bool] = None,
) -> ArrayWalkTrace:
    """SingleRW on the csr backend."""
    check_seeding(seeding)
    graph = _fast_form(graph, native)
    generator = ensure_np_rng(rng)
    start = make_seeds_np(graph, 1, seeding, generator)[0]
    steps = walk_steps(budget, 1, seed_cost)
    sources, targets = run_random_walk(graph, start, steps, generator, native)
    return ArrayWalkTrace(
        method=method,
        step_sources=sources,
        step_targets=targets,
        initial_vertices=[start],
        budget=budget,
        seed_cost=seed_cost,
    )


def sample_multiple(
    graph: GraphLike,
    num_walkers: int,
    budget: float,
    seeding: str = "uniform",
    seed_cost: float = 1.0,
    rng: NpRngLike = None,
    method: str = "MultipleRW",
    native: Optional[bool] = None,
) -> ArrayWalkTrace:
    """MultipleRW on the csr backend (walker-by-walker draw order)."""
    check_seeding(seeding)
    graph = _fast_form(graph, native)
    generator = ensure_np_rng(rng)
    seeds = make_seeds_np(graph, num_walkers, seeding, generator)
    steps = multiple_walk_steps(budget, num_walkers, seed_cost)
    source_blocks: List[np.ndarray] = []
    target_blocks: List[np.ndarray] = []
    for start in seeds:
        sources, targets = run_random_walk(
            graph, start, steps, generator, native
        )
        source_blocks.append(sources)
        target_blocks.append(targets)
    return ArrayWalkTrace(
        method=method,
        step_sources=np.concatenate(source_blocks)
        if source_blocks
        else np.empty(0, np.int64),
        step_targets=np.concatenate(target_blocks)
        if target_blocks
        else np.empty(0, np.int64),
        initial_vertices=seeds,
        budget=budget,
        seed_cost=seed_cost,
        step_walkers=np.repeat(np.arange(num_walkers, dtype=np.int64), steps),
    )


def sample_frontier(
    graph: GraphLike,
    dimension: int,
    budget: float,
    seeding: str = "uniform",
    seed_cost: float = 1.0,
    walker_selection: str = "degree",
    rng: NpRngLike = None,
    method: str = "FS",
    native: Optional[bool] = None,
) -> ArrayWalkTrace:
    """m-dimensional FS on the csr backend (Algorithm 1 semantics)."""
    check_seeding(seeding)
    graph = _fast_form(graph, native)
    generator = ensure_np_rng(rng)
    seeds = make_seeds_np(graph, dimension, seeding, generator)
    steps = walk_steps(budget, dimension, seed_cost)
    sources, targets, walkers = run_frontier(
        graph, seeds, steps, generator, walker_selection, native
    )
    return ArrayWalkTrace(
        method=method,
        step_sources=sources,
        step_targets=targets,
        initial_vertices=seeds,
        budget=budget,
        seed_cost=seed_cost,
        step_walkers=walkers,
    )


def frontier_trace_from(
    graph: GraphLike,
    initial_vertices: Sequence[int],
    num_steps: int,
    seed_cost: float = 1.0,
    walker_selection: str = "degree",
    rng: NpRngLike = None,
    method: str = "FS",
    native: Optional[bool] = None,
) -> ArrayWalkTrace:
    """FS from pinned initial positions (csr-backend ``sample_from``)."""
    graph = _fast_form(graph, native)
    generator = ensure_np_rng(rng)
    seeds = [int(v) for v in initial_vertices]
    sources, targets, walkers = run_frontier(
        graph, seeds, num_steps, generator, walker_selection, native
    )
    return ArrayWalkTrace(
        method=method,
        step_sources=sources,
        step_targets=targets,
        initial_vertices=seeds,
        budget=num_steps + seed_cost * len(seeds),
        seed_cost=seed_cost,
        step_walkers=walkers,
    )


def sample_metropolis(
    graph: GraphLike,
    budget: float,
    seeding: str = "uniform",
    seed_cost: float = 1.0,
    rng: NpRngLike = None,
    method: str = "MRW",
    native: Optional[bool] = None,
) -> ArrayMetropolisTrace:
    """MHRW on the csr backend."""
    check_seeding(seeding)
    graph = _fast_form(graph, native)
    generator = ensure_np_rng(rng)
    start = make_seeds_np(graph, 1, seeding, generator)[0]
    steps = walk_steps(budget, 1, seed_cost)
    edge_sources, edge_targets, visited = run_metropolis(
        graph, start, steps, generator, native
    )
    return ArrayMetropolisTrace(
        method,
        edge_sources,
        edge_targets,
        [start],
        budget,
        seed_cost,
        visited_array=visited,
    )
