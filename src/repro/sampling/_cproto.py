"""Parse the ``repro_*`` kernel prototypes out of ``_kernels.c``.

The cross-language contract between ``_kernels.c`` and the ctypes
declarations in ``_native.py`` — same arity, same per-position types —
is enforced twice from this one parser:

- statically, by ``repro-lint`` rule **RPL004** (CI fails on drift);
- dynamically, by :func:`repro.sampling._native.load`, which verifies
  the declarations against the C source it is about to call before
  assigning ``argtypes`` — so an out-of-tree edit that updates one
  side but not the other raises a readable
  :class:`~repro.sampling._native.KernelSignatureError` instead of
  corrupting memory through a mis-declared foreign call.

Stdlib only (``re``); the grammar is deliberately tiny — flat C
prototypes over ``int64_t``/``double`` scalars and pointers, which is
all the kernels use.  Types normalize to canonical tokens so both
checkers compare strings: ``"i64"``, ``"f64"``, ``"i64*"``, ``"f64*"``
and ``"void"`` (return only).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

#: ``<ret> repro_<name>(<params>) {`` — prototypes of exported kernels.
#: DOTALL because parameter lists span lines in the real source.
_PROTOTYPE = re.compile(
    r"^\s*(?P<ret>[A-Za-z_][A-Za-z0-9_ ]*?[ *])\s*"
    r"(?P<name>repro_[A-Za-z0-9_]+)\s*\((?P<params>[^)]*)\)\s*\{",
    re.MULTILINE | re.DOTALL,
)

#: C type spelling -> canonical token.  ``const`` is stripped first;
#: whitespace is collapsed so ``int64_t *`` and ``int64_t*`` agree.
_C_TOKENS = {
    "void": "void",
    "int64_t": "i64",
    "double": "f64",
    "int64_t*": "i64*",
    "double*": "f64*",
}


class CPrototypeError(ValueError):
    """A kernel prototype uses a type outside the tiny grammar."""


@dataclass(frozen=True)
class CPrototype:
    """One exported kernel's C-side signature, in canonical tokens."""

    name: str
    restype: str
    argtypes: Tuple[str, ...]
    line: int

    def render(self) -> str:
        """Human-readable ``ret name(arg, ...)`` form for diagnostics."""
        return f"{self.restype} {self.name}({', '.join(self.argtypes)})"


def _canonical(spelling: str, context: str) -> str:
    collapsed = re.sub(r"\bconst\b", " ", spelling)
    collapsed = re.sub(r"\s+", " ", collapsed).strip()
    collapsed = collapsed.replace(" *", "*").replace("* ", "*")
    token = _C_TOKENS.get(collapsed)
    if token is None:
        raise CPrototypeError(
            f"{context}: unsupported C type {spelling.strip()!r}"
            f" (the kernel grammar knows {sorted(_C_TOKENS)})"
        )
    return token


def _split_parameter(declaration: str, context: str) -> str:
    """Canonical token of one ``<type> <identifier>`` parameter."""
    stripped = declaration.strip()
    if not stripped:
        raise CPrototypeError(f"{context}: empty parameter declaration")
    # The identifier is the trailing word; everything before it (plus
    # any '*' glued to the identifier) is the type.
    match = re.match(r"^(?P<type>.*?)\s*\*?\s*(?P<ident>[A-Za-z_]\w*)$",
                     stripped, re.DOTALL)
    if match is None:
        raise CPrototypeError(
            f"{context}: cannot parse parameter {stripped!r}"
        )
    type_part = stripped[: len(stripped) - len(match.group("ident"))]
    return _canonical(type_part, context)


def parse_prototypes(source: str, origin: str = "_kernels.c") -> Dict[str, CPrototype]:
    """All exported ``repro_*`` prototypes in ``source``, by name."""
    prototypes: Dict[str, CPrototype] = {}
    for match in _PROTOTYPE.finditer(source):
        name = match.group("name")
        line = source.count("\n", 0, match.start()) + 1
        context = f"{origin}:{line}: {name}"
        restype = _canonical(match.group("ret"), context)
        params = match.group("params").strip()
        if params in ("", "void"):
            argtypes: Tuple[str, ...] = ()
        else:
            argtypes = tuple(
                _split_parameter(part, context)
                for part in params.split(",")
            )
        prototypes[name] = CPrototype(name, restype, argtypes, line)
    if not prototypes:
        raise CPrototypeError(
            f"{origin}: no repro_* kernel prototypes found"
        )
    return prototypes
