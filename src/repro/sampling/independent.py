"""Independent random vertex and random edge sampling (Section 3).

Both methods sample with replacement, uniformly — vertices over ``V``,
edges over the ``2|E|`` directed orientations (equivalently: uniform
undirected edge plus a fair orientation coin, which is what the
estimators expect).

The hit-ratio cost model of Sections 1 and 6.4 is built in: with hit
ratio ``h`` only a fraction ``h`` of id-space queries land on a valid
vertex, so each *valid* sample costs ``1/h`` expected budget units.
The simulation spends the budget query by query, so the number of
valid samples obtained from a fixed budget is itself random — exactly
the situation a crawler faces.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.sampling.base import Sampler
from repro.util.rng import RngLike


class RandomVertexSampler(Sampler):
    """Uniform independent vertex sampling with a hit-ratio cost model.

    Each unit of budget buys one id-space probe; a probe yields a valid
    (uniformly random) vertex with probability ``hit_ratio``.
    """

    name = "RandomVertex"

    def __init__(self, hit_ratio: float = 1.0):
        if not 0.0 < hit_ratio <= 1.0:
            raise ValueError(f"hit_ratio must be in (0, 1], got {hit_ratio}")
        self.hit_ratio = hit_ratio

    def start(self, graph: Graph, rng: RngLike = None):
        """Return an incremental probe session (one probe per unit)."""
        from repro.sampling.session import VertexSampleSession

        return VertexSampleSession(self, graph, rng)

    def __repr__(self) -> str:
        return f"RandomVertexSampler(hit_ratio={self.hit_ratio})"


class RandomEdgeSampler(Sampler):
    """Uniform independent edge sampling with costs and hit ratio.

    A sampled edge reveals both endpoints, so the paper charges it two
    budget units (Section 6.4); with hit ratio ``h`` each *attempt*
    costs ``2`` and succeeds with probability ``h``.  Returned edges
    are uniform over directed orientations, matching the stationary RW
    edge law so the same estimators apply verbatim.
    """

    name = "RandomEdge"

    def __init__(self, hit_ratio: float = 1.0, cost_per_edge: float = 2.0):
        if not 0.0 < hit_ratio <= 1.0:
            raise ValueError(f"hit_ratio must be in (0, 1], got {hit_ratio}")
        if cost_per_edge <= 0:
            raise ValueError(
                f"cost_per_edge must be > 0, got {cost_per_edge}"
            )
        self.hit_ratio = hit_ratio
        self.cost_per_edge = cost_per_edge

    def start(self, graph: Graph, rng: RngLike = None):
        """Return an incremental attempt session (``cost_per_edge`` each)."""
        from repro.sampling.session import EdgeSampleSession

        return EdgeSampleSession(self, graph, rng)

    def __repr__(self) -> str:
        return (
            f"RandomEdgeSampler(hit_ratio={self.hit_ratio},"
            f" cost_per_edge={self.cost_per_edge})"
        )
