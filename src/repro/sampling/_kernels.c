/* Native walker kernels over CSR arrays.
 *
 * Compiled on demand by repro/sampling/_native.py (cc -O2 -shared
 * -fPIC) and called through ctypes.  Every kernel consumes
 * pre-drawn uniforms in [0, 1) supplied by the caller, one protocol-
 * defined draw order per walk type, and does all weight arithmetic in
 * exact int64 — so the pure-Python fallback in
 * repro/sampling/vectorized.py reproduces these walks bit for bit.
 *
 * The only floating-point operation is the scaling of a uniform into
 * an integer range, (int64_t)(u * (double)range), which is the same
 * IEEE-754 double multiply + truncation CPython performs for
 * int(u * range).  The clamp to range - 1 guards the (probability ~0)
 * rounding-up of u values adjacent to 1.0.
 *
 * Reentrancy contract: these kernels run concurrently from many
 * threads while ctypes has released the GIL, over one shared CSR
 * graph.  Keep them stateless — no static/global storage, no
 * allocation, writes only to the caller-owned output buffers (and,
 * for FS, the caller's private frontier array).
 *
 * Fused walk+accumulate variants (repro_rw_steps_acc,
 * repro_fs_steps_acc, repro_mh_steps_acc): advance the walker state
 * with the EXACT draw protocol and transition arithmetic of the plain
 * kernel above it — bit-identical walker state — but instead of
 * materializing per-step trace arrays they fold each stat-bearing
 * step (the step's target vertex; for MH, accepted proposals only)
 * into a caller-owned accumulator block:
 *
 *   deg_counts[deg(target)]++   exact int64 per-degree visit counts,
 *                               length max_degree + 1
 *   visit_counts[target]++      exact int64 per-vertex visit counts,
 *                               length num_vertices
 *   edge_keys[k] = u * key_base + v
 *                               append-order edge keys; key_base is
 *                               num_vertices, so keys decode uniquely
 *                               and sort in (u, v) order
 *
 * Any block pointer may be NULL to skip that statistic (ctypes maps
 * Python None to NULL).  repro_fs_steps_acc additionally takes a
 * caller-owned `fenwick` scratch buffer (length m + 1, or NULL) and
 * replaces the per-step O(m) cumulative-degree scan with an O(log m)
 * binary-indexed-tree descent over the same exact int64 prefix sums —
 * selecting the identical walker and edge offset, so the fused walk
 * stays bit-equal to the plain kernel.  All block contents are exact
 * integers;
 * float statistics (1/deg reweighting, eq. (7)/(9) sums) are derived
 * in Python from the counts so that the fused, pure-Python-fused and
 * drained estimator paths produce bit-identical results.  Counts are
 * INCREMENTED, never zeroed, so multi-walker sessions may fold many
 * kernel calls into one block.  The same reentrancy contract applies:
 * the block buffers are caller-owned and private to one call chain.
 */

#include <stdint.h>

static inline int64_t scale_uniform(double u, int64_t range) {
    int64_t value = (int64_t)(u * (double)range);
    return value >= range ? range - 1 : value;
}

/* Simple random walk: `steps` transitions from `start`.
 * Draws: one uniform per step. */
void repro_rw_steps(const int64_t *indptr, const int64_t *indices,
                    int64_t start, int64_t steps, const double *uniforms,
                    int64_t *out_u, int64_t *out_v) {
    int64_t current = start;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t degree = indptr[current + 1] - row;
        int64_t next = indices[row + scale_uniform(uniforms[k], degree)];
        out_u[k] = current;
        out_v[k] = next;
        current = next;
    }
}

/* Fused simple random walk: same draws and transitions as
 * repro_rw_steps, folding each step's target into the accumulator
 * block instead of writing trace arrays.
 * Returns the final walker position. */
int64_t repro_rw_steps_acc(const int64_t *indptr, const int64_t *indices,
                           int64_t start, int64_t steps,
                           const double *uniforms, int64_t key_base,
                           int64_t *deg_counts, int64_t *visit_counts,
                           int64_t *edge_keys) {
    int64_t current = start;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t degree = indptr[current + 1] - row;
        int64_t next = indices[row + scale_uniform(uniforms[k], degree)];
        if (deg_counts)
            deg_counts[indptr[next + 1] - indptr[next]]++;
        if (visit_counts)
            visit_counts[next]++;
        if (edge_keys)
            edge_keys[k] = current * key_base + next;
        current = next;
    }
    return current;
}

/* m-dimensional Frontier Sampling.
 *
 * degree_selection != 0 (Algorithm 1): each step consumes ONE uniform
 * u, scaled onto the frontier's total degree; the cumulative-weight
 * search over the frontier degree vector yields both the walker index
 * and the offset of the crossed edge inside that walker's neighbor
 * row.  (Picking a uniform point in the concatenated incident-edge
 * lists IS the degree-proportional walker pick followed by a uniform
 * neighbor pick.)
 *
 * degree_selection == 0 (uniform-walker ablation): two uniforms per
 * step — walker index, then neighbor offset.
 *
 * Returns 0, or -1 if the frontier's total degree is ever <= 0. */
int64_t repro_fs_steps(const int64_t *indptr, const int64_t *indices,
                       int64_t *frontier, int64_t m, int64_t steps,
                       int64_t degree_selection, const double *uniforms,
                       int64_t *out_u, int64_t *out_v, int64_t *out_idx) {
    int64_t total = 0;
    for (int64_t i = 0; i < m; i++)
        total += indptr[frontier[i] + 1] - indptr[frontier[i]];
    for (int64_t k = 0; k < steps; k++) {
        int64_t idx, offset;
        if (degree_selection) {
            if (total <= 0)
                return -1;
            int64_t target = scale_uniform(uniforms[k], total);
            int64_t acc = 0;
            idx = 0;
            for (;;) {
                int64_t vertex = frontier[idx];
                int64_t degree = indptr[vertex + 1] - indptr[vertex];
                if (target < acc + degree) {
                    offset = target - acc;
                    break;
                }
                acc += degree;
                idx++; /* target < total guarantees idx stays < m */
            }
        } else {
            idx = scale_uniform(uniforms[2 * k], m);
            int64_t vertex = frontier[idx];
            int64_t degree = indptr[vertex + 1] - indptr[vertex];
            if (degree <= 0)
                return -1;
            offset = scale_uniform(uniforms[2 * k + 1], degree);
        }
        int64_t current = frontier[idx];
        int64_t old_degree = indptr[current + 1] - indptr[current];
        int64_t next = indices[indptr[current] + offset];
        out_u[k] = current;
        out_v[k] = next;
        out_idx[k] = idx;
        frontier[idx] = next;
        total += (indptr[next + 1] - indptr[next]) - old_degree;
    }
    return 0;
}

/* Fused Frontier Sampling: same draws, walker selection and frontier
 * updates as repro_fs_steps, folding each step's target into the
 * accumulator block instead of writing trace arrays.
 * Returns 0, or -1 if the frontier's total degree is ever <= 0. */
int64_t repro_fs_steps_acc(const int64_t *indptr, const int64_t *indices,
                           int64_t *frontier, int64_t m, int64_t steps,
                           int64_t degree_selection, const double *uniforms,
                           int64_t key_base, int64_t *deg_counts,
                           int64_t *visit_counts, int64_t *edge_keys,
                           int64_t *fenwick) {
    int64_t total = 0;
    for (int64_t i = 0; i < m; i++)
        total += indptr[frontier[i] + 1] - indptr[frontier[i]];
    /* `fenwick` (caller-owned scratch, length m + 1; NULL falls back
     * to the plain kernel's linear scan) holds a binary indexed tree
     * over the frontier degree vector.  Degrees are exact int64, so
     * prefix sums have no rounding: the O(log m) descent selects the
     * SAME (walker, edge offset) pair as the linear scan — the
     * speedup is bit-identical, not approximate. */
    int64_t top_bit = 0;
    if (degree_selection && fenwick) {
        for (int64_t i = 0; i <= m; i++)
            fenwick[i] = 0;
        for (int64_t i = 0; i < m; i++) {
            int64_t degree = indptr[frontier[i] + 1] - indptr[frontier[i]];
            for (int64_t j = i + 1; j <= m; j += j & (-j))
                fenwick[j] += degree;
        }
        top_bit = 1;
        while (top_bit * 2 <= m)
            top_bit *= 2;
    }
    for (int64_t k = 0; k < steps; k++) {
        int64_t idx, offset;
        if (degree_selection) {
            if (total <= 0)
                return -1;
            int64_t target = scale_uniform(uniforms[k], total);
            if (fenwick) {
                /* Largest pos with prefix_degree(pos) <= target; the
                 * walker bucket [prefix(idx), prefix(idx + 1)) holding
                 * `target` (zero-degree buckets are empty, matching
                 * the scan's skip).  target < total keeps pos < m. */
                int64_t pos = 0, rem = target;
                for (int64_t bit = top_bit; bit; bit >>= 1) {
                    int64_t nxt = pos + bit;
                    if (nxt <= m && fenwick[nxt] <= rem) {
                        pos = nxt;
                        rem -= fenwick[nxt];
                    }
                }
                idx = pos;
                offset = rem;
            } else {
                int64_t acc = 0;
                idx = 0;
                for (;;) {
                    int64_t vertex = frontier[idx];
                    int64_t degree = indptr[vertex + 1] - indptr[vertex];
                    if (target < acc + degree) {
                        offset = target - acc;
                        break;
                    }
                    acc += degree;
                    idx++; /* target < total guarantees idx stays < m */
                }
            }
        } else {
            idx = scale_uniform(uniforms[2 * k], m);
            int64_t vertex = frontier[idx];
            int64_t degree = indptr[vertex + 1] - indptr[vertex];
            if (degree <= 0)
                return -1;
            offset = scale_uniform(uniforms[2 * k + 1], degree);
        }
        int64_t current = frontier[idx];
        int64_t old_degree = indptr[current + 1] - indptr[current];
        int64_t next = indices[indptr[current] + offset];
        int64_t new_degree = indptr[next + 1] - indptr[next];
        if (deg_counts)
            deg_counts[new_degree]++;
        if (visit_counts)
            visit_counts[next]++;
        if (edge_keys)
            edge_keys[k] = current * key_base + next;
        frontier[idx] = next;
        total += new_degree - old_degree;
        if (degree_selection && fenwick && new_degree != old_degree)
            for (int64_t j = idx + 1; j <= m; j += j & (-j))
                fenwick[j] += new_degree - old_degree;
    }
    return 0;
}

/* Metropolis-Hastings walk targeting the uniform vertex law.
 * Draws: two uniforms per step (proposal offset, accept test).
 * Accept iff u2 * deg(proposal) < deg(current), i.e. with probability
 * min(1, deg(current) / deg(proposal)).
 * Returns the number of accepted transitions (edges written). */
int64_t repro_mh_steps(const int64_t *indptr, const int64_t *indices,
                       int64_t start, int64_t steps, const double *uniforms,
                       int64_t *out_eu, int64_t *out_ev,
                       int64_t *out_visited) {
    int64_t current = start;
    int64_t accepted = 0;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t deg_u = indptr[current + 1] - row;
        int64_t proposal =
            indices[row + scale_uniform(uniforms[2 * k], deg_u)];
        int64_t deg_v = indptr[proposal + 1] - indptr[proposal];
        if (uniforms[2 * k + 1] * (double)deg_v < (double)deg_u) {
            out_eu[accepted] = current;
            out_ev[accepted] = proposal;
            accepted++;
            current = proposal;
        }
        out_visited[k] = current;
    }
    return accepted;
}

/* Fused Metropolis-Hastings walk: same draws and accept rule as
 * repro_mh_steps, folding each ACCEPTED proposal into the accumulator
 * block (the streaming estimators consume accepted transitions only;
 * edge_keys is filled densely over [0, accepted)).  Writes the final
 * walker position to out_state[0] and returns the accepted count. */
int64_t repro_mh_steps_acc(const int64_t *indptr, const int64_t *indices,
                           int64_t start, int64_t steps,
                           const double *uniforms, int64_t key_base,
                           int64_t *deg_counts, int64_t *visit_counts,
                           int64_t *edge_keys, int64_t *out_state) {
    int64_t current = start;
    int64_t accepted = 0;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t deg_u = indptr[current + 1] - row;
        int64_t proposal =
            indices[row + scale_uniform(uniforms[2 * k], deg_u)];
        int64_t deg_v = indptr[proposal + 1] - indptr[proposal];
        if (uniforms[2 * k + 1] * (double)deg_v < (double)deg_u) {
            if (deg_counts)
                deg_counts[deg_v]++;
            if (visit_counts)
                visit_counts[proposal]++;
            if (edge_keys)
                edge_keys[accepted] = current * key_base + proposal;
            accepted++;
            current = proposal;
        }
    }
    out_state[0] = current;
    return accepted;
}
