/* Native walker kernels over CSR arrays.
 *
 * Compiled on demand by repro/sampling/_native.py (cc -O2 -shared
 * -fPIC) and called through ctypes.  Every kernel consumes
 * pre-drawn uniforms in [0, 1) supplied by the caller, one protocol-
 * defined draw order per walk type, and does all weight arithmetic in
 * exact int64 — so the pure-Python fallback in
 * repro/sampling/vectorized.py reproduces these walks bit for bit.
 *
 * The only floating-point operation is the scaling of a uniform into
 * an integer range, (int64_t)(u * (double)range), which is the same
 * IEEE-754 double multiply + truncation CPython performs for
 * int(u * range).  The clamp to range - 1 guards the (probability ~0)
 * rounding-up of u values adjacent to 1.0.
 *
 * Reentrancy contract: these kernels run concurrently from many
 * threads while ctypes has released the GIL, over one shared CSR
 * graph.  Keep them stateless — no static/global storage, no
 * allocation, writes only to the caller-owned output buffers (and,
 * for FS, the caller's private frontier array).
 */

#include <stdint.h>

static inline int64_t scale_uniform(double u, int64_t range) {
    int64_t value = (int64_t)(u * (double)range);
    return value >= range ? range - 1 : value;
}

/* Simple random walk: `steps` transitions from `start`.
 * Draws: one uniform per step. */
void repro_rw_steps(const int64_t *indptr, const int64_t *indices,
                    int64_t start, int64_t steps, const double *uniforms,
                    int64_t *out_u, int64_t *out_v) {
    int64_t current = start;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t degree = indptr[current + 1] - row;
        int64_t next = indices[row + scale_uniform(uniforms[k], degree)];
        out_u[k] = current;
        out_v[k] = next;
        current = next;
    }
}

/* m-dimensional Frontier Sampling.
 *
 * degree_selection != 0 (Algorithm 1): each step consumes ONE uniform
 * u, scaled onto the frontier's total degree; the cumulative-weight
 * search over the frontier degree vector yields both the walker index
 * and the offset of the crossed edge inside that walker's neighbor
 * row.  (Picking a uniform point in the concatenated incident-edge
 * lists IS the degree-proportional walker pick followed by a uniform
 * neighbor pick.)
 *
 * degree_selection == 0 (uniform-walker ablation): two uniforms per
 * step — walker index, then neighbor offset.
 *
 * Returns 0, or -1 if the frontier's total degree is ever <= 0. */
int64_t repro_fs_steps(const int64_t *indptr, const int64_t *indices,
                       int64_t *frontier, int64_t m, int64_t steps,
                       int64_t degree_selection, const double *uniforms,
                       int64_t *out_u, int64_t *out_v, int64_t *out_idx) {
    int64_t total = 0;
    for (int64_t i = 0; i < m; i++)
        total += indptr[frontier[i] + 1] - indptr[frontier[i]];
    for (int64_t k = 0; k < steps; k++) {
        int64_t idx, offset;
        if (degree_selection) {
            if (total <= 0)
                return -1;
            int64_t target = scale_uniform(uniforms[k], total);
            int64_t acc = 0;
            idx = 0;
            for (;;) {
                int64_t vertex = frontier[idx];
                int64_t degree = indptr[vertex + 1] - indptr[vertex];
                if (target < acc + degree) {
                    offset = target - acc;
                    break;
                }
                acc += degree;
                idx++; /* target < total guarantees idx stays < m */
            }
        } else {
            idx = scale_uniform(uniforms[2 * k], m);
            int64_t vertex = frontier[idx];
            int64_t degree = indptr[vertex + 1] - indptr[vertex];
            if (degree <= 0)
                return -1;
            offset = scale_uniform(uniforms[2 * k + 1], degree);
        }
        int64_t current = frontier[idx];
        int64_t old_degree = indptr[current + 1] - indptr[current];
        int64_t next = indices[indptr[current] + offset];
        out_u[k] = current;
        out_v[k] = next;
        out_idx[k] = idx;
        frontier[idx] = next;
        total += (indptr[next + 1] - indptr[next]) - old_degree;
    }
    return 0;
}

/* Metropolis-Hastings walk targeting the uniform vertex law.
 * Draws: two uniforms per step (proposal offset, accept test).
 * Accept iff u2 * deg(proposal) < deg(current), i.e. with probability
 * min(1, deg(current) / deg(proposal)).
 * Returns the number of accepted transitions (edges written). */
int64_t repro_mh_steps(const int64_t *indptr, const int64_t *indices,
                       int64_t start, int64_t steps, const double *uniforms,
                       int64_t *out_eu, int64_t *out_ev,
                       int64_t *out_visited) {
    int64_t current = start;
    int64_t accepted = 0;
    for (int64_t k = 0; k < steps; k++) {
        int64_t row = indptr[current];
        int64_t deg_u = indptr[current + 1] - row;
        int64_t proposal =
            indices[row + scale_uniform(uniforms[2 * k], deg_u)];
        int64_t deg_v = indptr[proposal + 1] - indptr[proposal];
        if (uniforms[2 * k + 1] * (double)deg_v < (double)deg_u) {
            out_eu[accepted] = current;
            out_ev[accepted] = proposal;
            accepted++;
            current = proposal;
        }
        out_visited[k] = current;
    }
    return accepted;
}
