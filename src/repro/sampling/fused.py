"""Fused walk+accumulate blocks: the eq. (7)/(9) sufficient statistics.

The streaming estimators only ever reduce a trace increment down to a
handful of small statistics — per-degree visit counts, 1/deg-reweighted
sums, per-vertex visit counts, and the sampled edge multiset.  A
:class:`FusedBlock` is the exact-integer carrier for those statistics:
the fused C kernels (``repro_*_steps_acc`` in ``_kernels.c``) fold each
stat-bearing step straight into the block while advancing the walker,
so an anytime checkpoint costs O(max_degree) scratch instead of
materializing an O(steps) :class:`~repro.sampling.vectorized.ArrayWalkTrace`.

Bit-equality contract: every block field is an exact int64 count —

- ``deg_counts[d]``  — number of stat-bearing steps whose target has
  degree ``d`` (length ``max_degree + 1``),
- ``visit_counts[v]`` — number of stat-bearing steps targeting vertex
  ``v`` (length ``num_vertices``),
- ``edge_keys``      — append-order ``u * key_base + v`` keys with
  ``key_base = num_vertices``, so keys decode uniquely and sort in
  ``(u, v)`` order — the same order ``_unique_edges`` produces on the
  drained path.

Float statistics (Σ1/deg and friends) are deliberately *derived in
Python* from the integer counts rather than accumulated in C: summing
``count/degree`` per distinct degree is one float expression shared
verbatim by the drained and fused estimator paths, whereas a C-side
running float sum would re-associate additions and drift.  Integer
counts also make merging commutative, which is what lets the sharded
sessions fold per-shard blocks in any order.

``REPRO_NO_FUSED=1`` (checked per call, so tests can monkeypatch it)
disables fusion everywhere: sessions and the engine fall back to the
``take_trace()`` → ``update()`` drain path, which produces bit-identical
estimates by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np


def fusion_disabled() -> bool:
    """``True`` when ``REPRO_NO_FUSED`` is set (checked per call)."""
    return bool(os.environ.get("REPRO_NO_FUSED"))


@dataclass(frozen=True)
class FusedNeeds:
    """Which block statistics an accumulator consumes."""

    degree_counts: bool = False
    visit_counts: bool = False
    edge_keys: bool = False

    def merged_with(self, other: "FusedNeeds") -> "FusedNeeds":
        """The union of two accumulators' statistic requirements."""
        return FusedNeeds(
            degree_counts=self.degree_counts or other.degree_counts,
            visit_counts=self.visit_counts or other.visit_counts,
            edge_keys=self.edge_keys or other.edge_keys,
        )


def merge_needs(parts: Iterable[object]) -> Optional[FusedNeeds]:
    """The union of every part's needs, or ``None`` if any part cannot fuse.

    A part is fuse-capable when it exposes ``fused_needs()`` returning a
    :class:`FusedNeeds`; anything else (plain trace collectors,
    whole-trace estimators returning ``None``) forces the drain path.
    """
    merged = FusedNeeds()
    for part in parts:
        probe = getattr(part, "fused_needs", None)
        if probe is None:
            return None
        needs = probe()
        if needs is None:
            return None
        merged = merged.merged_with(needs)
    return merged


class FusedBlock:
    """One advance's worth of exact-integer sufficient statistics.

    Buffers not requested by ``needs`` stay ``None`` and are passed to
    the C kernels as NULL pointers — the peak scratch for the common
    degree-statistics bundle is the ``max_degree + 1`` count array
    alone.  Counts accumulate across multiple kernel calls (multi-walker
    sessions fold one call per walker into the same block).
    """

    def __init__(
        self, needs: FusedNeeds, num_vertices: int, max_degree: int
    ) -> None:
        self.needs = needs
        self.num_vertices = int(num_vertices)
        self.max_degree = int(max_degree)
        #: Edge keys are ``u * key_base + v``; ``key_base`` is the
        #: vertex count, which keeps the decoded (u, v) sort order
        #: identical to the drained path's ``_unique_edges``.
        self.key_base = int(num_vertices)
        #: Stat-bearing steps folded in so far (MH counts accepted
        #: proposals only, mirroring ``ArrayMetropolisTrace.step_targets``).
        self.steps = 0
        self.deg_counts: Optional[np.ndarray] = (
            np.zeros(self.max_degree + 1, dtype=np.int64)
            if needs.degree_counts
            else None
        )
        self.visit_counts: Optional[np.ndarray] = (
            np.zeros(self.num_vertices, dtype=np.int64)
            if needs.visit_counts
            else None
        )
        self._edge_key_chunks: List[np.ndarray] = []

    def new_edge_buffer(self, capacity: int) -> Optional[np.ndarray]:
        """A fresh kernel-owned key buffer, or ``None`` when not needed."""
        if not self.needs.edge_keys:
            return None
        return np.empty(capacity, dtype=np.int64)

    def commit_edge_keys(
        self, buffer: Optional[np.ndarray], filled: int
    ) -> None:
        """Adopt the first ``filled`` keys of a buffer from a kernel call."""
        if buffer is not None and filled:
            self._edge_key_chunks.append(buffer[:filled])

    def edge_key_array(self) -> np.ndarray:
        """All committed edge keys, in append (time) order."""
        if not self._edge_key_chunks:
            return np.empty(0, dtype=np.int64)
        if len(self._edge_key_chunks) == 1:
            return self._edge_key_chunks[0]
        return np.concatenate(self._edge_key_chunks)

    def fold_step_arrays(
        self,
        degrees: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """Fold a materialized step record into the block.

        The vectorized mirror of the C kernels' per-step increments
        (``np.bincount`` of int64 indices is the same exact integer
        arithmetic), used by the pure-Python fused fallback and by the
        sharded sessions, whose time-ordered merge already materializes
        the step arrays.
        """
        if self.deg_counts is not None:
            self.deg_counts += np.bincount(
                degrees[targets], minlength=self.deg_counts.size
            )
        if self.visit_counts is not None:
            self.visit_counts += np.bincount(
                targets, minlength=self.num_vertices
            )
        if self.needs.edge_keys and targets.size:
            self._edge_key_chunks.append(
                sources * np.int64(self.key_base) + targets
            )
        self.steps += int(targets.size)


def block_from_arrays(
    needs: FusedNeeds,
    degrees: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
) -> FusedBlock:
    """Build a block directly from a materialized step record."""
    max_degree = int(degrees.max()) if degrees.size else 0
    block = FusedBlock(needs, int(degrees.size), max_degree)
    block.fold_step_arrays(degrees, sources, targets)
    return block
