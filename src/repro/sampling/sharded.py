"""Multi-process frontier sharding over mmap'd CSR buffers.

Theorem 5.5 (Section 5.3) says FS needs no coordinator: ``m``
independent walkers with ``Exponential(deg(v))`` holding times produce,
when their jump streams are merged in time order, exactly the FS chain.
Independence is the whole point — so the frontier can be *sharded
across OS processes* with zero communication beyond the final merge.
This module assembles the pieces PR 3 built (picklable session state,
mmap'd ``save_csr_npy``/``load_csr_npy`` buffers, the batch walk
kernels) into that engine:

- :class:`ShardedFrontierSampler` — FS realized as per-process shards
  of exponential-clock walkers sharing the graph through read-only
  mmap'd CSR files (never pickled), merged into one time-ordered
  :class:`~repro.sampling.vectorized.ArrayWalkTrace`.
- :class:`ShardedSessionPool` — the generic fan-out: run many
  *independent* sampler sessions (SRW / MHRW / MultipleRW / FS
  replicates) across worker processes over one shared graph.

Determinism contract.  Every walker owns two private
``numpy.random.Generator`` streams derived from the root seed by
``SeedSequence`` spawn keys — ``(stream_tag, walker_index)`` — and
events are generated in fixed-size blocks of ``event_block`` steps
(one block = one contiguous ``rng.random`` draw for the walk plus one
``standard_exponential`` draw for the holdings, jump times accumulated
per block).  A walker's event stream is therefore a pure function of
``(seed, walker_index, graph, event_block)``: it does not depend on
the shard count, on which process generated it, on worker scheduling,
or on how a session's ``advance`` calls were chunked.  The merged
trace — the globally first ``n`` events in jump-time order — inherits
all four invariances, so a fixed ``(seed, n_procs)`` run is
bit-reproducible, and shard-count 1 and ``k`` produce identical
traces.

The clock realization also sidesteps Algorithm 1's per-step
degree-proportional walker pick (an O(m) scan even in the native FS
kernel): each sharded walker advances in O(1) per event through the
SRW kernel, which is what makes the engine outscale single-process FS
once real cores are available.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import shutil
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.graph.csr import CSRGraph, get_csr
from repro.graph.io import load_csr_npy, shared_csr_stem
from repro.sampling import _native
from repro.sampling.base import (
    Sampler,
    SeedingMode,
    check_pinned_seeds,
    check_seeding,
    require_walkable_seeds,
)
from repro.sampling.distributed import DistributedFrontierSampler
from repro.sampling.fused import (
    block_from_arrays,
    fusion_disabled,
    merge_needs,
)
from repro.sampling.session import (
    SamplerSession,
    _accumulator_parts,
    concat_chunks,
    default_session_starter,
    drain_session_checkpoints,
)
from repro.sampling.vectorized import (
    ArrayWalkTrace,
    make_seeds_np,
    run_random_walk,
)
from repro.util.reentrancy import non_reentrant, thread_core
from repro.util.rng import NpRngLike, child_rng

#: Default per-walker event-generation block (steps).  The block size
#: is part of the draw protocol: per-block time accumulation
#: (``clock + cumsum(holdings)``) is only bit-reproducible if block
#: boundaries fall at fixed per-walker event counts, so a session's
#: block size must never depend on shard count or advance chunking —
#: it is fixed at sampler construction (``event_block=``) and traces
#: are only comparable across runs with the same value.
EVENT_BLOCK = 128

#: SeedSequence spawn-key stream tags (first component of the key).
_SEED_STREAM = 0  # seed drawing, index 0
_WALK_STREAM = 1  # per-walker neighbor choices
_HOLD_STREAM = 2  # per-walker exponential holding times

#: Execution backends for the parallel coordinators.  ``None`` means
#: the legacy default (spawn).  The executor moves work around; it is
#: never part of the draw protocol — every replicate/walker stream is
#: a pure function of ``(root seed, index)``, so traces are
#: bit-identical across executors by construction.
VALID_EXECUTORS = ("auto", "thread", "spawn")


def threads_can_scale() -> bool:
    """Can a thread fan-out actually use more than one core?

    True when the native kernels are loadable — ``ctypes`` releases
    the GIL for the duration of every foreign call, so concurrent
    sessions overlap their kernel time — or when the interpreter
    itself runs without a GIL (a free-threaded 3.13+ build reports
    ``sys._is_gil_enabled() == False``).  The pure-Python kernels hold
    the GIL for their entire step loop, so without either escape hatch
    threads serialize and only add overhead.
    """
    if _native.available():
        return True
    gil_check = getattr(sys, "_is_gil_enabled", None)
    return gil_check is not None and not gil_check()


def resolve_executor(executor: Optional[str]) -> str:
    """Map an ``executor=`` argument to a concrete backend.

    ``None`` keeps the legacy spawn behavior.  ``"auto"`` picks
    ``"thread"`` exactly when :func:`threads_can_scale` says threads
    can overlap (native kernels available, or a no-GIL interpreter)
    and falls back to ``"spawn"`` otherwise — the documented heuristic
    for the pure-Python fallback, which cannot release the GIL.
    ``"thread"`` and ``"spawn"`` are always honored as given (an
    explicit thread request without native kernels is correct, just
    not faster).
    """
    if executor is None:
        return "spawn"
    if executor not in VALID_EXECUTORS:
        raise ValueError(
            f"executor must be one of {VALID_EXECUTORS} or None,"
            f" got {executor!r}"
        )
    if executor == "auto":
        return "thread" if threads_can_scale() else "spawn"
    return executor


def _root_entropy(rng: NpRngLike) -> int:
    """A 64-bit root entropy from any accepted RNG-ish input."""
    if rng is None:
        # repro-lint: disable=RPL005 -- rng=None explicitly requests a
        # fresh OS-entropy root; every deterministic path passes a seed.
        return int.from_bytes(os.urandom(8), "little")
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 1 << 63))
    if isinstance(rng, random.Random):
        return rng.getrandbits(64)
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError(
            "rng must be an int seed, random.Random, numpy Generator,"
            " or None"
        )
    if isinstance(rng, int):
        return rng
    raise TypeError(
        "rng must be an int seed, random.Random, numpy Generator, or"
        f" None, got {type(rng)!r}"
    )


def _stream_rng(entropy: int, tag: int, index: int = 0) -> np.random.Generator:
    """The spawn-key-derived generator for one (stream, walker) slot."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=entropy, spawn_key=(tag, index))
    )


@dataclass
class _WalkerClock:
    """One exponential-clock walker's spawn-safe, picklable state."""

    index: int
    position: int
    clock: float
    walk_rng: np.random.Generator
    hold_rng: np.random.Generator


def _advance_blocks(
    csr: CSRGraph,
    walker: _WalkerClock,
    blocks: int,
    block_size: int,
    native: Optional[bool],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``blocks`` more event blocks for one walker.

    Returns ``(times, sources, targets)`` for the new events and
    advances the walker's position/clock/streams in place.  Mirrors
    :class:`~repro.sampling.session.DistributedWalkSession` semantics:
    leaving vertex ``u`` takes ``Exponential(deg(u))`` — including the
    initial holding at the seed — and the jump crosses a uniform
    incident edge.

    The random draws for all blocks happen in two contiguous stream
    reads (one walk, one holding) — stream-equivalent to block-by-block
    draws, so any run that reaches event ``j`` of this walker computes
    it bit-identically.  Jump times are still accumulated strictly per
    block (the clock hand-off between blocks is a scalar read of the
    previous block's last time), which pins their floating-point
    association to block boundaries regardless of how many blocks one
    call requests.
    """
    steps = blocks * block_size
    sources, targets = run_random_walk(
        csr, walker.position, steps, walker.walk_rng, native
    )
    indptr = csr.indptr
    rates = (indptr[sources + 1] - indptr[sources]).astype(np.float64)
    holdings = walker.hold_rng.standard_exponential(steps) / rates
    times = np.empty(steps, dtype=np.float64)
    clock = walker.clock
    for k in range(blocks):
        block = slice(k * block_size, (k + 1) * block_size)
        np.cumsum(holdings[block], out=times[block])
        times[block] += clock
        clock = float(times[(k + 1) * block_size - 1])
    walker.position = int(targets[-1])
    walker.clock = clock
    return times, sources, targets


# ----------------------------------------------------------------------
# worker plumbing.  The core task functions take the graph and kernel
# choice as explicit arguments, so the inline and thread paths call
# them directly over the in-process CSR — no shared mutable module
# state, which is what lets many threads run tasks concurrently.  The
# spawn path wraps the same cores in module-level functions that read
# the per-process globals the pool initializer pins (spawn start
# method; graph shared via mmap, never pickled).  Inline, thread and
# spawn therefore execute the identical task code; only the transport
# differs, never the draw protocol.
# ----------------------------------------------------------------------
_WORKER_CSR: Optional[CSRGraph] = None
_WORKER_NATIVE: Optional[bool] = None


@non_reentrant("writes the per-process worker globals _WORKER_CSR/_WORKER_NATIVE")
def _worker_init(stem: str, native: Optional[bool]) -> None:
    """Pool initializer: reopen the shared graph read-only via mmap."""
    global _WORKER_CSR, _WORKER_NATIVE
    _WORKER_CSR = load_csr_npy(stem, mmap=True)
    _WORKER_NATIVE = native


@thread_core
def _shard_advance_task(
    csr: CSRGraph,
    native: Optional[bool],
    task: Tuple[int, List[Tuple[_WalkerClock, int]]],
) -> List[Tuple[_WalkerClock, np.ndarray, np.ndarray, np.ndarray]]:
    """Advance each ``(walker, blocks)`` in the shard."""
    block_size, shard = task
    out = []
    for walker, blocks in shard:
        times, sources, targets = _advance_blocks(
            csr, walker, blocks, block_size, native
        )
        out.append((walker, times, sources, targets))
    return out


@thread_core
def _sample_task(
    csr: CSRGraph,
    native: Optional[bool],
    args: Tuple[Any, float, int, int],
) -> Any:
    """One independent session run over the shared graph."""
    sampler, budget, root_seed, index = args
    session = sampler.start(csr, rng=child_rng(root_seed, index))
    try:
        session.advance_budget(budget)
        return session.trace()
    finally:
        closer = getattr(session, "close", None)
        if closer is not None:
            closer()


@thread_core
def _anytime_task(
    csr: CSRGraph,
    native: Optional[bool],
    args: Tuple[Any, Any, str, List[float], int, int],
) -> Tuple[List[Any], int]:
    """One anytime session drained at every checkpoint.

    Returns ``(increments, steps_taken)`` — the per-checkpoint trace
    increments (what ``take_trace`` handed out after each advance) and
    the session's final step count.  The advance/drain loop itself is
    :func:`~repro.sampling.session.drain_session_checkpoints` — the
    same function the experiment engine's in-process path runs, so
    the pooled and in-process paths cannot drift apart.
    """
    starter, sampler, schedule, checkpoints, root_seed, index = args
    session = starter(sampler, csr, root_seed, index)
    return drain_session_checkpoints(session, schedule, checkpoints)


def _shard_advance(
    task: Tuple[int, List[Tuple[_WalkerClock, int]]],
) -> List[Tuple[_WalkerClock, np.ndarray, np.ndarray, np.ndarray]]:
    """Spawn wrapper for :func:`_shard_advance_task`."""
    return _shard_advance_task(_WORKER_CSR, _WORKER_NATIVE, task)


def _pool_sample_one(args: Tuple[Any, float, int, int]) -> Any:
    """Spawn wrapper for :func:`_sample_task`."""
    return _sample_task(_WORKER_CSR, _WORKER_NATIVE, args)


def _pool_anytime_one(
    args: Tuple[Any, Any, str, List[float], int, int],
) -> Tuple[List[Any], int]:
    """Spawn wrapper for :func:`_anytime_task`."""
    return _anytime_task(_WORKER_CSR, _WORKER_NATIVE, args)


def _partition(items: List[Any], shards: int) -> List[List[Any]]:
    """Split ``items`` into ``shards`` contiguous, near-even groups."""
    shards = max(1, min(shards, len(items)))
    bounds = np.linspace(0, len(items), shards + 1).astype(int)
    return [
        items[bounds[i] : bounds[i + 1]]
        for i in range(shards)
        if bounds[i] < bounds[i + 1]
    ]


class _SpawnPoolMixin:
    """Shared executor + graph-spill lifecycle for the coordinators.

    Holds at most one live fan-out vehicle: a spawn process pool (with
    the graph spilled to mmap'd files for the workers) or a
    ``ThreadPoolExecutor`` (which needs neither spill nor pickling —
    threads read the coordinator's own ``CSRGraph``).
    """

    def _init_sharing(
        self,
        procs: Optional[int],
        native: Optional[bool],
        executor: Optional[str] = None,
    ) -> None:
        if procs is not None and procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.procs = int(procs) if procs is not None else (os.cpu_count() or 1)
        self.executor = resolve_executor(executor)
        self._native = native
        self._pool: Optional[Any] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._spill_dir: Optional[Path] = None
        self._stem: Optional[Path] = None

    def _ensure_stem(self, csr: CSRGraph) -> Path:
        if self._stem is None:
            self._stem, self._spill_dir = shared_csr_stem(csr)
        return self._stem

    def _ensure_pool(self, csr: CSRGraph) -> Any:
        if self._pool is None:
            context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                self.procs,
                initializer=_worker_init,
                initargs=(str(self._ensure_stem(csr)), self._native),
            )
        return self._pool

    def _ensure_threads(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.procs, thread_name_prefix="repro-shard"
            )
        return self._threads

    def close(self) -> None:
        """Shut down the workers and remove any temp-spilled graph."""
        pool, self._pool = getattr(self, "_pool", None), None
        if pool is not None:
            pool.terminate()
            pool.join()
        threads, self._threads = getattr(self, "_threads", None), None
        if threads is not None:
            threads.shutdown(wait=True, cancel_futures=True)
        spill, self._spill_dir = getattr(self, "_spill_dir", None), None
        if spill is not None:
            shutil.rmtree(spill, ignore_errors=True)
        self._stem = None

    def __enter__(self) -> "_SpawnPoolMixin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# the sharded FS engine
# ----------------------------------------------------------------------
class ShardedFrontierSession(_SpawnPoolMixin, SamplerSession):
    """FS as per-process shards of exponential-clock walkers.

    ``advance(n)`` extends the *merged* jump sequence by ``n`` events:
    shards generate per-walker event blocks (in workers when
    ``procs > 1`` and processes are enabled, inline otherwise), the
    coordinator merges everything generated so far by ``(jump_time,
    walker_index)`` and commits the first ``n`` uncommitted events to
    the trace; overshoot events stay buffered for the next advance, so
    chunking never re-draws randomness.  See the module docstring for
    the invariances this buys.

    The pool, the spilled graph files and the CSR handle are excluded
    from pickling — a checkpointed session carries only walker clocks,
    stream states and buffered events, and rebuilds the rest lazily
    after :func:`~repro.sampling.session.load_session`.
    """

    _UNPICKLED = ("_csr", "_pool", "_threads", "_spill_dir", "_stem")

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: NpRngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        entropy = _root_entropy(rng)
        csr = get_csr(graph)
        if initial_vertices is None:
            seeds = make_seeds_np(
                csr,
                sampler.dimension,
                sampler.seeding,
                _stream_rng(entropy, _SEED_STREAM),
            )
        else:
            seeds = [int(v) for v in initial_vertices]
        super(_SpawnPoolMixin, self).__init__(sampler, graph, seeds)
        require_walkable_seeds(csr, seeds, "FS cannot walk from it")
        self.entropy = entropy
        self._init_sharing(sampler.procs, sampler.native, sampler.executor)
        self._use_processes = sampler.use_processes
        self.event_block = int(sampler.event_block)
        self._walkers = [
            _WalkerClock(
                index=i,
                position=int(v),
                clock=0.0,
                walk_rng=_stream_rng(entropy, _WALK_STREAM, i),
                hold_rng=_stream_rng(entropy, _HOLD_STREAM, i),
            )
            for i, v in enumerate(seeds)
        ]
        # Generated-but-uncommitted events (chunks of parallel arrays).
        self._pending_times: List[np.ndarray] = []
        self._pending_walkers: List[np.ndarray] = []
        self._pending_sources: List[np.ndarray] = []
        self._pending_targets: List[np.ndarray] = []
        # Committed trace record (chunks, concatenated lazily).
        self._time_chunks: List[np.ndarray] = []
        self._walker_chunks: List[np.ndarray] = []
        self._source_chunks: List[np.ndarray] = []
        self._target_chunks: List[np.ndarray] = []
        self._csr = csr

    # ------------------------------------------------------------------
    # event generation
    # ------------------------------------------------------------------
    def _generate(self, blocks_by_walker: Dict[int, int]) -> None:
        """Extend the named walkers' event streams by the given blocks."""
        items = [
            (self._walkers[index], blocks)
            for index, blocks in sorted(blocks_by_walker.items())
        ]
        run_parallel = self._use_processes is not False and self.procs > 1
        tasks = [
            (self.event_block, shard)
            for shard in _partition(items, self.procs)
        ]
        if not run_parallel:
            shard_results = [
                _shard_advance_task(self._csr, self._native, task)
                for task in tasks
            ]
        elif self.executor == "thread":
            shard_results = list(
                self._ensure_threads().map(
                    partial(_shard_advance_task, self._csr, self._native),
                    tasks,
                )
            )
        else:
            pool = self._ensure_pool(self._csr)
            shard_results = pool.map(_shard_advance, tasks)
        for result in shard_results:
            for walker, times, sources, targets in result:
                # The pool round-trips walker state by value; adopt the
                # advanced copy as the authoritative one.
                self._walkers[walker.index] = walker
                self._pending_times.append(times)
                self._pending_walkers.append(
                    np.full(times.size, walker.index, dtype=np.int64)
                )
                self._pending_sources.append(sources)
                self._pending_targets.append(targets)

    def _pending_size(self) -> int:
        return sum(chunk.size for chunk in self._pending_times)

    def _ensure_coverage(self, need: int) -> np.ndarray:
        """Generate until the first ``need`` merged events are final.

        The merged prefix is final once (a) at least ``need`` events
        are buffered and (b) every walker's clock has passed the
        ``need``-th smallest buffered time — then no walker can still
        produce an event that belongs in the prefix.  All decisions
        here use only global, deterministic state, so the generated
        streams are identical for any shard count.  Returns the
        concatenated buffered times so the caller's merge does not
        re-walk the buffer.
        """
        m = len(self._walkers)
        block = self.event_block
        while True:
            total = self._pending_size()
            if total < need:
                blocks = max(1, math.ceil((need - total) / (m * block)))
                self._generate({i: blocks for i in range(m)})
                continue
            times = np.concatenate(self._pending_times)
            horizon = float(np.partition(times, need - 1)[need - 1])
            lagging = {
                walker.index: 1
                for walker in self._walkers
                if walker.clock < horizon
            }
            if not lagging:
                return times
            self._generate(lagging)

    # ------------------------------------------------------------------
    # session protocol
    # ------------------------------------------------------------------
    def _advance(self, steps: int) -> None:
        times = self._ensure_coverage(steps)
        walkers = np.concatenate(self._pending_walkers)
        sources = np.concatenate(self._pending_sources)
        targets = np.concatenate(self._pending_targets)
        # Stable sort on jump time: each buffered chunk is already an
        # ascending run, which the stable (tim)sort exploits — and its
        # tie-break (buffer position == walker order within each
        # deterministic generation round) is itself shard-count- and
        # scheduling-invariant, so exact-tie times cannot wobble the
        # merge.
        order = np.argsort(times, kind="stable")
        take, keep = order[:steps], order[steps:]
        # Commit the merged prefix in time order...
        self._time_chunks.append(times[take])
        self._walker_chunks.append(walkers[take])
        self._source_chunks.append(sources[take])
        self._target_chunks.append(targets[take])
        # ...and re-buffer the overshoot (restored to generation order
        # so buffered chunks stay deterministic regardless of `steps`).
        keep = np.sort(keep)
        self._pending_times = [times[keep]]
        self._pending_walkers = [walkers[keep]]
        self._pending_sources = [sources[keep]]
        self._pending_targets = [targets[keep]]

    _concat = staticmethod(concat_chunks)

    def trace(self) -> ArrayWalkTrace:
        trace = ArrayWalkTrace(
            method=self.method,
            step_sources=self._concat(self._source_chunks),
            step_targets=self._concat(self._target_chunks),
            initial_vertices=list(self.initial_vertices),
            budget=self._trace_budget(),
            seed_cost=self.seed_cost,
            step_walkers=self._concat(self._walker_chunks),
        )
        #: Continuous jump times of the merged events (float64,
        #: ascending) — the collector-side view Theorem 5.5 describes.
        trace.step_times = (
            np.concatenate(self._time_chunks)
            if self._time_chunks
            else np.empty(0, dtype=np.float64)
        )
        return trace

    def _clear_record(self) -> None:
        self._time_chunks = []
        self._walker_chunks = []
        self._source_chunks = []
        self._target_chunks = []

    def advance_into(
        self,
        accumulators: Any,
        steps: Optional[int] = None,
        budget: Optional[float] = None,
    ) -> int:
        """Advance, then fold the committed increment as fused blocks.

        The sharded session must materialize per-shard event arrays
        anyway (the time-ordered merge is what makes shard count a
        deployment knob), so its fused path folds each committed
        chunk into a :class:`~repro.sampling.fused.FusedBlock` with
        the vectorized integer kernels instead of running the C
        accumulators.  Because every block field is an exact int64
        count, the per-shard/per-chunk fold order cannot change the
        result — the merge is time-order-invariant by construction —
        and estimates stay bit-identical to the drain path.
        """
        parts = _accumulator_parts(accumulators)
        needs = merge_needs(parts)
        if needs is None or fusion_disabled():
            return super().advance_into(
                accumulators, steps=steps, budget=budget
            )
        taken = self._advance_for(steps, budget)
        increment = self.take_trace()
        if increment.step_targets.size:
            block = block_from_arrays(
                needs,
                self._csr.degrees(),
                increment.step_sources,
                increment.step_targets,
            )
            for part in parts:
                part.absorb_block(block)
        return taken

    def _reattach(self, graph: Any) -> None:
        self._csr = get_csr(graph)


class ShardedFrontierSampler(Sampler):
    """FS sharded across OS processes (Theorem 5.5, industrialized).

    Splits the ``dimension`` walkers into per-process shards of
    independent exponential-clock walkers; workers share the graph
    through read-only mmap'd CSR buffers (spilled to a temp directory
    automatically when the input graph is in-memory) and the
    coordinator merges jump streams by time into an
    :class:`~repro.sampling.vectorized.ArrayWalkTrace`.  Budget
    accounting matches :class:`~repro.sampling.frontier.FrontierSampler`
    exactly: ``m`` seeds at ``seed_cost`` each, one unit per merged
    jump.

    ``procs=None`` uses every CPU; ``use_processes=False`` runs the
    shard tasks inline (same draw protocol, no pool — useful for tests
    and single-core hosts).  ``executor`` picks the fan-out vehicle
    when ``procs > 1``: ``"spawn"`` (the default, ``None``) ships
    shards to worker processes over mmap'd CSR buffers, ``"thread"``
    drives them from a ``ThreadPoolExecutor`` over the in-process
    graph (no spill, no pickling — the native kernels release the GIL
    for the whole batch call), and ``"auto"`` picks threads exactly
    when they can scale (see
    :func:`~repro.sampling.sharded.resolve_executor`).  Traces are
    bit-identical across executors.  There is no ``walker_selection``
    knob: the exponential-clock realization *is* the
    degree-proportional pick (that is Theorem 5.5's content).
    Sessions returned by :meth:`start` hold worker resources and
    possibly temp files — call ``close()`` (or use the session as a
    context manager) when done.
    """

    name = "ShardedFS"

    def __init__(
        self,
        dimension: int,
        seeding: SeedingMode = "uniform",
        seed_cost: float = 1.0,
        procs: Optional[int] = None,
        native: Optional[bool] = None,
        use_processes: Optional[bool] = None,
        event_block: int = EVENT_BLOCK,
        executor: Optional[str] = None,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.seeding = check_seeding(seeding)
        if seed_cost < 0:
            raise ValueError(f"seed_cost must be >= 0, got {seed_cost}")
        self.seed_cost = seed_cost
        if procs is not None and procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.procs = procs
        self.native = native
        self.use_processes = use_processes
        if event_block < 1:
            raise ValueError(
                f"event_block must be >= 1, got {event_block}"
            )
        self.event_block = int(event_block)
        resolve_executor(executor)  # validate the name eagerly
        self.executor = executor

    def start(
        self,
        graph: Any,
        rng: NpRngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> ShardedFrontierSession:
        """Seed the sharded walkers and return their session."""
        if initial_vertices is not None:
            check_pinned_seeds(initial_vertices, self.dimension)
        return ShardedFrontierSession(
            self, graph, rng, initial_vertices=initial_vertices
        )

    def sample(
        self, graph: Any, budget: float, rng: NpRngLike = None
    ) -> ArrayWalkTrace:
        """One-shot sample; closes the session's pool before returning."""
        with self.start(graph, rng=rng) as session:
            session.advance_budget(budget)
            return session.trace()

    def sample_from(
        self,
        graph: Any,
        initial_vertices: Sequence[int],
        num_steps: int,
        rng: NpRngLike = None,
    ) -> ArrayWalkTrace:
        """Run from explicit initial positions for ``num_steps`` jumps."""
        with self.start(graph, rng, initial_vertices=initial_vertices) as s:
            s.advance(num_steps)
            return s.trace()

    def __repr__(self) -> str:
        return (
            f"ShardedFrontierSampler(dimension={self.dimension},"
            f" seeding={self.seeding!r}, seed_cost={self.seed_cost},"
            f" procs={self.procs})"
        )


# ----------------------------------------------------------------------
# generic independent-session fan-out
# ----------------------------------------------------------------------
class ShardedSessionPool(_SpawnPoolMixin):
    """Run independent sampler sessions across processes, one shared graph.

    The graph crosses the process boundary as mmap'd read-only CSR
    buffers (spilled to a temp directory unless already file-backed);
    each run derives its RNG as ``child_rng(root_seed, index)`` —
    exactly the stream :func:`repro.experiments.runner.replicate`
    hands out — so ``pool.run(sampler, budget, runs)`` reproduces the
    in-process replication bit for bit, just fanned out.

    Suited to samplers whose sessions run on the csr backend: SRW,
    MHRW, MultipleRW, FS.  :class:`DistributedFrontierSampler` is
    list-backend-only and is rejected up front — use
    :class:`ShardedFrontierSampler` for multi-process FS instead.
    Kernel selection is the sampler's own affair (its sessions resolve
    native availability per process), so the pool takes no ``native``
    knob.

    ``executor`` picks the fan-out vehicle when ``procs > 1``:
    ``"spawn"`` (the default) ships tasks to worker processes,
    ``"thread"`` runs the identical task functions in a
    ``ThreadPoolExecutor`` over this process's ``CSRGraph`` — zero
    startup, zero serialization — and ``"auto"`` chooses threads
    exactly when :func:`resolve_executor` says they can scale.
    Results are bit-identical across executors.
    """

    def __init__(
        self,
        graph: Any,
        procs: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> None:
        self._csr = get_csr(graph)
        self._init_sharing(procs, None, executor)

    @staticmethod
    def _check_run(sampler: Any, runs: int) -> None:
        if isinstance(sampler, DistributedFrontierSampler):
            raise TypeError(
                "DistributedFrontierSampler runs on the list backend only"
                " and cannot execute over shared CSR buffers; use"
                " ShardedFrontierSampler for multi-process FS"
            )
        if isinstance(sampler, ShardedFrontierSampler):
            # Its sessions would build a nested Pool inside daemonic
            # spawn workers, which multiprocessing forbids.
            raise TypeError(
                "ShardedFrontierSampler fans out its own worker"
                " processes (procs=...); run it directly instead of"
                " through ShardedSessionPool"
            )
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")

    def _map(
        self, task_fn: Any, spawn_fn: Any, tasks: List[Any]
    ) -> List[Any]:
        """Run ``task_fn(csr, native, task)`` over every task, eagerly.

        ``spawn_fn`` is the module-level wrapper the spawn workers run
        (same core, graph read from the per-process globals).
        """
        if self.procs <= 1:
            return [
                task_fn(self._csr, self._native, task) for task in tasks
            ]
        if self.executor == "thread":
            bound = partial(task_fn, self._csr, self._native)
            return list(self._ensure_threads().map(bound, tasks))
        pool = self._ensure_pool(self._csr)
        chunk = max(1, len(tasks) // (self.procs * 4))
        return pool.map(spawn_fn, tasks, chunksize=chunk)

    def _imap(
        self, task_fn: Any, spawn_fn: Any, tasks: List[Any]
    ) -> Iterator[Any]:
        """Lazy :meth:`_map`: an iterator over results in task order."""
        if self.procs <= 1:
            return (
                task_fn(self._csr, self._native, task) for task in tasks
            )
        if self.executor == "thread":
            bound = partial(task_fn, self._csr, self._native)
            return self._ensure_threads().map(bound, tasks)
        pool = self._ensure_pool(self._csr)
        chunk = max(1, len(tasks) // (self.procs * 4))
        return pool.imap(spawn_fn, tasks, chunksize=chunk)

    def run(
        self, sampler: Any, budget: float, runs: int, root_seed: int = 0
    ) -> List[Any]:
        """``runs`` independent ``sample(graph, budget)`` traces."""
        self._check_run(sampler, runs)
        tasks = [(sampler, budget, root_seed, index) for index in range(runs)]
        return self._map(_sample_task, _pool_sample_one, tasks)

    def run_anytime(
        self,
        sampler: Any,
        checkpoints: Sequence[float],
        runs: int,
        root_seed: int = 0,
        schedule: str = "budget",
        starter: Optional[Any] = None,
        lazy: bool = False,
    ) -> Union[List[Tuple[List[Any], int]], Iterator[Tuple[List[Any], int]]]:
        """``runs`` independent anytime sessions, drained at every
        checkpoint.

        Each run opens one session (via ``starter(sampler, graph,
        root_seed, index)``; default :func:`default_session_starter`),
        advances it through the ascending ``checkpoints`` —
        ``advance_budget`` for ``schedule="budget"``, cumulative
        ``advance`` steps for ``schedule="steps"`` — and returns the
        per-checkpoint trace increments plus the session's final step
        count.  This is the fan-out under
        :func:`repro.experiments.engine.run_plan`: each replicate
        walks once, whatever the number of checkpoints, and the
        result is bit-identical for any worker count and executor
        (inline at ``procs <= 1``, thread or spawn workers otherwise —
        same task function, same streams).  ``starter`` must be
        picklable (a module-level function or an instance of a
        module-level class) when the spawn executor runs it.

        ``lazy=True`` returns an iterator over the rows (task order)
        instead of a list, so a streaming consumer — the experiment
        engine accumulating replicate by replicate — never holds more
        than one replicate's increments at a time.
        """
        self._check_run(sampler, runs)
        if schedule not in ("budget", "steps"):
            raise ValueError(
                f"schedule must be 'budget' or 'steps', got {schedule!r}"
            )
        marks = [float(c) for c in checkpoints]
        if not marks or any(b > a for b, a in zip(marks, marks[1:])):
            raise ValueError(
                "checkpoints must be a non-empty ascending sequence,"
                f" got {checkpoints!r}"
            )
        if starter is None:
            starter = default_session_starter
        tasks = [
            (starter, sampler, schedule, marks, root_seed, index)
            for index in range(runs)
        ]
        if lazy:
            return self._imap(_anytime_task, _pool_anytime_one, tasks)
        return self._map(_anytime_task, _pool_anytime_one, tasks)
