"""Incremental sampling sessions — the resumable anytime protocol.

The paper's algorithms are *anytime* processes: walkers keep stepping
and every estimate sharpens as the budget grows.  A
:class:`SamplerSession` exposes that directly.  ``sampler.start(graph,
rng=...)`` draws the initial walker positions (paying their seed cost)
and returns a session that can

- :meth:`~SamplerSession.advance` a number of walk steps, or
  :meth:`~SamplerSession.advance_budget` up to a total budget,
- report the accumulated :meth:`~SamplerSession.trace` (exactly the
  trace the one-shot ``Sampler.sample`` API returns), or hand over
  increments via :meth:`~SamplerSession.take_trace` for streaming
  estimation in O(chunk) memory,
- checkpoint to disk with :meth:`~SamplerSession.save` and resume with
  :func:`load_session` — the :attr:`~SamplerSession.state` (walker
  positions, frontier weights, RNG state, retained step record) is
  picklable; only the graph itself is excluded and re-attached on load.

Determinism contract: both backends draw from their RNG in
protocol-defined units (one ``random.Random`` call per event on the
list backend; contiguous ``Generator.random`` blocks on the csr
backend), so *chunking is invisible* — a session advanced in any
sequence of increments consumes the identical stream and produces a
trace bit-identical to a single ``advance_budget`` call, except for
:class:`~repro.sampling.multiple.MultipleRandomWalk`, whose independent
walkers share one stream walker-by-walker (there, a chunked run is
bit-identical to any other run with the same chunk boundaries,
including a checkpoint/resume at any boundary).  ``Sampler.sample()``
performs exactly one ``advance_budget``, which is why its traces match
the pre-session goldens bit for bit.

The csr backend advances in array-sized strides: each ``advance`` is
one call into the kernels of :mod:`repro.sampling.vectorized` (native C
when available), never a Python per-step loop.
"""

from __future__ import annotations

import abc
import copy
import heapq
import pickle
from pathlib import Path
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sampling import vectorized
from repro.sampling.fused import (
    FusedBlock,
    FusedNeeds,
    fusion_disabled,
    merge_needs,
)
from repro.sampling.base import (
    Edge,
    VertexTrace,
    WalkTrace,
    make_seeds,
    require_walkable_seeds,
    steps_within_budget,
)
from repro.sampling.metropolis import MetropolisTrace
from repro.sampling.vectorized import (
    ArrayMetropolisTrace,
    ArrayWalkTrace,
    _fast_form,
)
from repro.util.alias import AliasTable
from repro.util.fenwick import FenwickTree
from repro.util.rng import RngLike, child_rng, ensure_np_rng, ensure_rng

PathLike = Union[str, Path]


def _graph_signature(graph: Any) -> Tuple[int, int, Optional[int]]:
    """(num_vertices, num_edges, version) — the resume compatibility check.

    ``version`` is the graph's mutation counter
    (:attr:`repro.graph.graph.Graph.version`; ``None`` for the
    immutable :class:`~repro.graph.csr.CSRGraph`, whose array shapes
    are already pinned by the first two fields).  Including it catches
    count-preserving mutations — a ``remove_edge`` + ``add_edge`` pair
    leaves ``(num_vertices, num_edges)`` untouched but reorders
    neighbor rows, which would silently corrupt a resumed walk.
    """
    version = getattr(graph, "version", None)
    return (graph.num_vertices, graph.num_edges, version)


def _signatures_compatible(
    expected: Sequence[Any], actual: Sequence[Any]
) -> bool:
    """Whether a checkpoint signature accepts the attach candidate.

    Counts must always match.  The version field is compared only when
    *both* sides carry a mutation counter: pre-version checkpoints
    stored a 2-tuple, and the immutable :class:`CSRGraph` has no
    counter (its ``None`` must not block reattaching a list-backend
    checkpoint to the structurally identical CSR form, or vice versa).
    """
    expected = tuple(expected)
    if expected[:2] != actual[:2]:
        return False
    if len(expected) < 3:
        return True
    return (
        expected[2] is None
        or actual[2] is None
        or expected[2] == actual[2]
    )


class SamplerSession(abc.ABC):
    """One resumable sampling run: walker state plus the step record.

    Subclasses implement ``_advance`` (take ``steps`` more walk steps,
    appending to the retained record) and ``trace`` (materialize the
    retained record as the sampler's trace type).  Everything else —
    budget accounting, draining, checkpointing — is shared here.
    """

    #: MultipleRW divides the budget per walker (Section 4.4); the
    #: coordinated samplers share it (Algorithm 1).
    _split_budget = False
    #: Derived attributes rebuilt from the graph on resume instead of
    #: being pickled (csr fast forms, alias tables, ...).
    _UNPICKLED: Tuple[str, ...] = ()

    def __init__(
        self, sampler: Any, graph: Any, initial_vertices: List[int]
    ) -> None:
        self.sampler = sampler
        self.method = sampler.name
        self.seed_cost = float(getattr(sampler, "seed_cost", 0.0))
        self._graph = graph
        self.initial_vertices = list(initial_vertices)
        #: Walk steps taken so far — *per walker* for split-budget
        #: sessions (MultipleRW), total otherwise.
        self.steps_taken = 0
        #: High-water requested budget (None until a budget is named;
        #: trace() then reports actual spend instead).
        self._budget: Optional[float] = None
        #: Whether plain advance() ever ran — then the reported budget
        #: must floor at actual spend (a named budget alone may
        #: legitimately sit below the seed cost it already paid).
        self._stepped_plainly = False

    # ------------------------------------------------------------------
    # core protocol
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Any:
        """The attached graph (``None`` on a detached checkpoint)."""
        return self._graph

    @property
    def num_walkers(self) -> int:
        return max(1, len(self.initial_vertices))

    @abc.abstractmethod
    def _advance(self, steps: int) -> None:
        """Take ``steps`` more walk steps, appending to the record."""

    @abc.abstractmethod
    def trace(self) -> Any:
        """The retained step record as this sampler's trace type.

        Covers every step since the session started — or since the
        last :meth:`take_trace` drain, if one happened.
        """

    @abc.abstractmethod
    def _clear_record(self) -> None:
        """Drop the retained step record (walker state is untouched)."""

    def advance(self, steps: int) -> int:
        """Take ``steps`` walk steps (per walker for MultipleRW).

        Returns the number of steps actually taken (== ``steps``).
        """
        self._take(steps)
        self._stepped_plainly = True
        return int(steps)

    def _take(self, steps: int) -> None:
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if self._graph is None:
            raise RuntimeError(
                "session is detached; attach a graph with load_session()"
            )
        if steps:
            self._advance(int(steps))
            self.steps_taken += int(steps)

    def _target_steps(self, budget: float) -> int:
        return steps_within_budget(
            budget, self.num_walkers, self.seed_cost, split=self._split_budget
        )

    def advance_budget(self, budget: float) -> int:
        """Advance until ``budget`` total units are spent.

        Idempotent beyond the high-water mark: re-requesting a budget
        the session already reached is a no-op, and budgets only ever
        extend a run — they never rewind it.  Returns the number of new
        steps taken (per walker for MultipleRW).
        """
        target = self._target_steps(budget)
        delta = max(0, target - self.steps_taken)
        self._take(delta)
        self._budget = (
            budget if self._budget is None else max(self._budget, budget)
        )
        return delta

    def advance_into(
        self,
        accumulators: Any,
        steps: Optional[int] = None,
        budget: Optional[float] = None,
    ) -> int:
        """Advance and fold the new steps straight into accumulators.

        ``accumulators`` is one accumulator or a sequence of them;
        exactly one of ``steps`` / ``budget`` selects the advance
        semantics of :meth:`advance` or :meth:`advance_budget`.  Any
        record still retained from earlier plain advances is folded in
        too (this method leaves the session drained).  Returns the
        number of new steps taken.

        This base implementation is the drain path — advance, then
        ``take_trace()`` → ``update()`` on every accumulator.  The csr
        sessions override it to run the fused walk+accumulate kernels
        when every accumulator can absorb a
        :class:`~repro.sampling.fused.FusedBlock` (and fall back here
        otherwise, or when ``REPRO_NO_FUSED`` is set); estimates are
        bit-identical on either path.
        """
        parts = _accumulator_parts(accumulators)
        taken = self._advance_for(steps, budget)
        increment = self.take_trace()
        for part in parts:
            part.update(increment)
        return taken

    def _advance_for(
        self, steps: Optional[int], budget: Optional[float]
    ) -> int:
        if (steps is None) == (budget is None):
            raise ValueError(
                "pass exactly one of steps= or budget= to advance_into()"
            )
        if steps is not None:
            return self.advance(int(steps))
        assert budget is not None
        return self.advance_budget(budget)

    def take_trace(self) -> Any:
        """Drain: return the trace increment since the last drain.

        Hands the retained step record to the caller (for streaming
        accumulators) and releases it, so a loop of ``advance`` +
        ``take_trace`` runs in O(chunk) memory however long the walk.
        After a drain, :meth:`trace` and checkpoints cover only steps
        taken since — walker state, budget accounting and the random
        stream continue seamlessly either way.
        """
        increment = self.trace()
        self._clear_record()
        return increment

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _units_spent(self) -> float:
        steps = self.steps_taken
        return float(steps * self.num_walkers if self._split_budget else steps)

    def spent(self) -> float:
        """Budget consumed so far: seeds plus every step taken."""
        return self.seed_cost * len(self.initial_vertices) + self._units_spent()

    def _trace_budget(self) -> float:
        if self._budget is None:
            return self.spent()
        if self._stepped_plainly:
            # Plain advance() can push spend past any named budget; the
            # reported budget must cover what was actually walked.
            return max(self._budget, self.spent())
        return self._budget

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    @property
    def state(self) -> Dict[str, Any]:
        """Picklable snapshot view of the session (graph excluded).

        Walker positions, frontier weights, RNG state and the retained
        step record — everything :meth:`save` writes.  The view shares
        mutable members with the live session; use :meth:`save` /
        :func:`load_session` for durable checkpoints.
        """
        return self.__getstate__()

    def snapshot(self) -> Dict[str, Any]:
        """A *deep-copied* picklable snapshot of the session.

        Unlike :attr:`state` — a cheap view sharing mutable members
        with the live session — the snapshot is fully independent:
        advancing the session afterwards cannot alias into it, and two
        restores from one snapshot cannot alias into each other.  Use
        it whenever a state dict outlives the live session (forking
        session state to another process, diffing a session against
        its earlier self); :meth:`save` already gets the same
        isolation from pickling.
        """
        return copy.deepcopy(self.__getstate__())

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        if self._graph is not None:
            state["_graph_signature"] = _graph_signature(self._graph)
        state["_graph"] = None
        for name in self._UNPICKLED:
            state[name] = None
        return state

    def save(self, path: PathLike) -> None:
        """Checkpoint the session to ``path`` (pickle, graph excluded)."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def attach(self, graph: Any) -> None:
        """Re-attach ``graph`` to a checkpoint loaded from disk.

        The graph must be the one the session was started on (same
        vertex/edge counts *and* the same neighbor order — traces are
        only reproducible against an identical graph).
        """
        expected = self.__dict__.get("_graph_signature")
        actual = _graph_signature(graph)
        if expected is not None and not _signatures_compatible(
            expected, actual
        ):
            # Leave the signature in place: a failed attach must not
            # disarm the check for a later attempt.
            raise ValueError(
                f"graph signature {actual} does not match the"
                f" checkpointed session's {tuple(expected)}; the graph"
                " mutated since save() (or is not the graph the session"
                " was started on) — resumed walks would silently produce"
                " garbage, so reattach is refused"
            )
        self.__dict__.pop("_graph_signature", None)
        self._graph = graph
        self._reattach(graph)

    def _reattach(self, graph: Any) -> None:
        """Hook: rebuild graph-derived state dropped by ``_UNPICKLED``."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(method={self.method!r},"
            f" steps_taken={self.steps_taken}, spent={self.spent():g})"
        )


def _accumulator_parts(accumulators: Any) -> List[Any]:
    """Normalize ``advance_into``'s accumulator argument to a list."""
    if isinstance(accumulators, (list, tuple)):
        return list(accumulators)
    return [accumulators]


def default_session_starter(
    sampler: Any, graph: Any, root_seed: int, index: int
) -> SamplerSession:
    """Open replicate ``index``'s session on its ``child_rng`` stream.

    THE replicate-stream derivation — the one
    :func:`repro.experiments.runner.replicate` hands out, the one
    :class:`~repro.sampling.sharded.ShardedSessionPool` workers use,
    and the experiment engine's default starter.  A single definition
    keeps in-process and pooled replication bit-identical by
    construction.
    """
    return sampler.start(graph, rng=child_rng(root_seed, index))


def drain_session_checkpoints(
    session: SamplerSession,
    schedule: str,
    checkpoints: Sequence[float],
) -> Tuple[List[Any], int]:
    """Advance ``session`` through ``checkpoints``, draining each one.

    ``schedule="budget"`` advances with ``advance_budget(checkpoint)``;
    ``schedule="steps"`` treats checkpoints as cumulative step counts
    (per-walker steps for MultipleRW) and uses plain ``advance``.
    Returns ``(increments, steps_taken)`` — the per-checkpoint
    ``take_trace()`` drains and the session's final step count.  The
    session is closed (when it owns resources) before returning.

    This is THE anytime replication loop: the experiment engine's
    in-process path and the :class:`~repro.sampling.sharded.
    ShardedSessionPool` spawn workers both run this exact function, so
    the two paths cannot drift apart — which is what makes ``procs``
    a statistics-invariant deployment knob.
    """
    try:
        increments: List[Any] = []
        for checkpoint in checkpoints:
            if schedule == "steps":
                session.advance(
                    max(0, int(checkpoint) - session.steps_taken)
                )
            else:
                session.advance_budget(checkpoint)
            increments.append(session.take_trace())
        return increments, int(session.steps_taken)
    finally:
        closer = getattr(session, "close", None)
        if closer is not None:
            closer()


def load_session(path: PathLike, graph: Any) -> SamplerSession:
    """Load a checkpoint written by :meth:`SamplerSession.save`.

    ``graph`` must be the graph the session was started on; resumed
    runs then reproduce the uninterrupted run's trace bit for bit.
    (Checkpoints are pickles — only load files you wrote.)
    """
    with open(path, "rb") as handle:
        session = pickle.load(handle)
    if not isinstance(session, SamplerSession):
        raise TypeError(
            f"{str(path)!r} does not contain a SamplerSession checkpoint"
        )
    session.attach(graph)
    return session


# ----------------------------------------------------------------------
# list backend: interpreted per-step walkers over adjacency lists
# ----------------------------------------------------------------------
class _ListSession(SamplerSession):
    """Shared record-keeping for the interpreted walk sessions."""

    _with_walkers = False  # record per-walker grouping + indices?

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        initial_vertices: List[int],
        rng: random.Random,
    ) -> None:
        super().__init__(sampler, graph, initial_vertices)
        self.rng = rng
        self._edges: List[Edge] = []
        self._indices: Optional[List[int]] = [] if self._with_walkers else None

    def _record(self, idx: int, edge: Edge) -> None:
        self._edges.append(edge)
        if self._indices is not None:
            self._indices.append(idx)

    def _per_walker(self) -> Optional[List[List[Edge]]]:
        if self._indices is None:
            return None
        grouped: List[List[Edge]] = [[] for _ in self.initial_vertices]
        for idx, edge in zip(self._indices, self._edges):
            grouped[idx].append(edge)
        return grouped

    def trace(self) -> WalkTrace:
        return WalkTrace(
            method=self.method,
            edges=list(self._edges),
            initial_vertices=list(self.initial_vertices),
            budget=self._trace_budget(),
            seed_cost=self.seed_cost,
            per_walker=self._per_walker(),
            walker_indices=(
                list(self._indices) if self._indices is not None else None
            ),
        )

    def _clear_record(self) -> None:
        self._edges = []
        if self._indices is not None:
            self._indices = []


class SingleWalkSession(_ListSession):
    """SingleRW: one walker, one ``random_neighbor`` draw per step.

    ``initial_vertices`` pins the walker's start instead of drawing a
    seed (no seed uniforms are consumed then) — the sample-path
    experiments pin SingleRW to the first of FS's seeds.
    """

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        generator = ensure_rng(rng)
        if initial_vertices is None:
            seeds = make_seeds(graph, 1, sampler.seeding, generator)
        else:
            seeds = [int(v) for v in initial_vertices]
        super().__init__(sampler, graph, seeds, generator)
        self.position = seeds[0]
        if graph.degree(self.position) == 0:
            raise ValueError(
                f"cannot walk from isolated vertex {self.position}"
            )

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        current = self.position
        for _ in range(steps):
            nxt = graph.random_neighbor(current, rng)
            self._record(0, (current, nxt))
            current = nxt
        self.position = current


class MultipleWalkSession(_ListSession):
    """MultipleRW: ``m`` independent walkers sharing one stream.

    ``advance(steps)`` gives every walker ``steps`` more steps,
    walker-by-walker in index order — the draw order of the one-shot
    sampler, so a single ``advance_budget`` reproduces it exactly.
    """

    _split_budget = True
    _with_walkers = True

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        generator = ensure_rng(rng)
        if initial_vertices is None:
            seeds = make_seeds(
                graph, sampler.num_walkers, sampler.seeding, generator
            )
        else:
            seeds = [int(v) for v in initial_vertices]
            require_walkable_seeds(
                graph, seeds, "MultipleRW cannot walk from it"
            )
        super().__init__(sampler, graph, seeds, generator)
        self.positions = list(seeds)

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        for idx, start in enumerate(self.positions):
            current = start
            for _ in range(steps):
                nxt = graph.random_neighbor(current, rng)
                self._record(idx, (current, nxt))
                current = nxt
            self.positions[idx] = current

    def trace(self) -> WalkTrace:
        # The one-shot MultipleRW trace groups edges per walker but
        # reports no interleaving (the walkers are independent).
        trace = super().trace()
        trace.walker_indices = None
        return trace


class FrontierWalkSession(_ListSession):
    """FS (Algorithm 1): frontier positions + Fenwick degree weights."""

    _with_walkers = True

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        generator = ensure_rng(rng)
        if initial_vertices is None:
            seeds = make_seeds(
                graph, sampler.dimension, sampler.seeding, generator
            )
        else:
            seeds = [int(v) for v in initial_vertices]
        super().__init__(sampler, graph, seeds, generator)
        self.walker_selection = sampler.walker_selection
        self.frontier = list(seeds)
        require_walkable_seeds(
            graph, self.frontier, "FS cannot walk from it"
        )
        self.weights = FenwickTree(
            [float(graph.degree(v)) for v in self.frontier]
        )

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        frontier, weights = self.frontier, self.weights
        degree_selection = self.walker_selection == "degree"
        for _ in range(steps):
            if degree_selection:
                idx = weights.sample(rng)
            else:
                idx = rng.randrange(len(frontier))
            u = frontier[idx]
            v = graph.random_neighbor(u, rng)
            self._record(idx, (u, v))
            frontier[idx] = v
            weights.update(idx, float(graph.degree(v)))


class DistributedWalkSession(_ListSession):
    """DistributedFS: exponential-clock walkers on an event heap."""

    _with_walkers = True

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        generator = ensure_rng(rng)
        if initial_vertices is not None:
            seeds = [int(v) for v in initial_vertices]
        else:
            seeds = make_seeds(
                graph, sampler.dimension, sampler.seeding, generator
            )
        super().__init__(sampler, graph, seeds, generator)
        self.positions = list(seeds)
        require_walkable_seeds(graph, self.positions)
        # Event queue of (next_jump_time, walker_index); the index
        # breaks ties deterministically.
        self.queue: List[Tuple[float, int]] = []
        for i, v in enumerate(self.positions):
            holding = generator.expovariate(graph.degree(v))
            heapq.heappush(self.queue, (holding, i))

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        positions, queue = self.positions, self.queue
        for _ in range(steps):
            now, idx = heapq.heappop(queue)
            u = positions[idx]
            v = graph.random_neighbor(u, rng)
            self._record(idx, (u, v))
            positions[idx] = v
            holding = rng.expovariate(graph.degree(v))
            heapq.heappush(queue, (now + holding, idx))


class MetropolisWalkSession(_ListSession):
    """MRW: accepted edges plus the full visit sequence (incl. holds)."""

    def __init__(
        self, sampler: Any, graph: Any, rng: RngLike = None
    ) -> None:
        generator = ensure_rng(rng)
        seeds = make_seeds(graph, 1, sampler.seeding, generator)
        super().__init__(sampler, graph, seeds, generator)
        self.position = seeds[0]
        self._visited: List[int] = []

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        current = self.position
        for _ in range(steps):
            proposal = graph.random_neighbor(current, rng)
            accept = graph.degree(current) / graph.degree(proposal)
            if rng.random() < accept:
                self._record(0, (current, proposal))
                current = proposal
            self._visited.append(current)
        self.position = current

    def _units_spent(self) -> float:
        # Rejected proposals cost their neighbor query too, so spend is
        # counted in proposals (== steps_taken), not accepted edges.
        return float(self.steps_taken)

    def trace(self) -> MetropolisTrace:
        trace = MetropolisTrace(
            method=self.method,
            edges=list(self._edges),
            initial_vertices=list(self.initial_vertices),
            budget=self._trace_budget(),
            seed_cost=self.seed_cost,
        )
        trace.visited = list(self._visited)
        return trace

    def _clear_record(self) -> None:
        super()._clear_record()
        self._visited = []


# ----------------------------------------------------------------------
# csr backend: each advance is one stride through the batch kernels
# ----------------------------------------------------------------------
def concat_chunks(chunks: List[np.ndarray]) -> np.ndarray:
    """Concatenate step-record chunks (empty list -> empty int64)."""
    if not chunks:
        return np.empty(0, dtype=np.int64)
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks)


class _ArraySession(SamplerSession):
    """Shared chunk bookkeeping for the vectorized sessions.

    Step records accumulate as lists of int64 array chunks — one chunk
    per ``advance`` — and concatenate lazily in :meth:`trace`, so a
    long session never round-trips through Python tuples.
    """

    _UNPICKLED = ("_fast",)
    _with_walkers = False

    def __init__(
        self, sampler: Any, graph: Any, rng: RngLike, native: Optional[bool]
    ) -> None:
        self._native = native
        self._fast = _fast_form(graph, native)
        generator = ensure_np_rng(rng)
        seeds = self._draw_seeds(sampler, generator)
        super().__init__(sampler, graph, seeds)
        self.rng = generator
        self._source_chunks: List[np.ndarray] = []
        self._target_chunks: List[np.ndarray] = []
        self._walker_chunks: Optional[List[np.ndarray]] = (
            [] if self._with_walkers else None
        )
        #: Cached max degree for sizing fused deg_counts blocks (the
        #: attach-time signature check guarantees it stays valid).
        self._max_degree: Optional[int] = None

    def _draw_seeds(
        self, sampler: Any, generator: np.random.Generator
    ) -> List[int]:
        return vectorized.make_seeds_np(
            self._fast, 1, sampler.seeding, generator
        )

    def _record_chunk(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        walkers: Optional[np.ndarray] = None,
    ) -> None:
        self._source_chunks.append(sources)
        self._target_chunks.append(targets)
        if self._walker_chunks is not None:
            self._walker_chunks.append(walkers)

    _concat = staticmethod(concat_chunks)

    def trace(self) -> ArrayWalkTrace:
        return ArrayWalkTrace(
            method=self.method,
            step_sources=self._concat(self._source_chunks),
            step_targets=self._concat(self._target_chunks),
            initial_vertices=list(self.initial_vertices),
            budget=self._trace_budget(),
            seed_cost=self.seed_cost,
            step_walkers=(
                self._concat(self._walker_chunks)
                if self._walker_chunks is not None
                else None
            ),
        )

    def _clear_record(self) -> None:
        self._source_chunks = []
        self._target_chunks = []
        if self._walker_chunks is not None:
            self._walker_chunks = []

    def _reattach(self, graph: Any) -> None:
        self._fast = _fast_form(graph, self._native)

    # ------------------------------------------------------------------
    # fused advance
    # ------------------------------------------------------------------
    def _has_record(self) -> bool:
        return bool(self._source_chunks)

    def _fused_block(self, needs: FusedNeeds) -> FusedBlock:
        if self._max_degree is None:
            degrees = vectorized.degrees_array(self._fast)
            self._max_degree = int(degrees.max()) if degrees.size else 0
        return FusedBlock(
            needs, int(self._fast.num_vertices), self._max_degree
        )

    def _advance_acc(self, steps: int, block: FusedBlock) -> None:
        """Advance ``steps`` via the fused runners, filling ``block``.

        Must leave the walker state (positions, frontier, RNG stream)
        exactly where :meth:`_advance` would — the fused runners share
        the plain runners' draw protocol, so this holds by construction.
        """
        raise NotImplementedError

    def advance_into(
        self,
        accumulators: Any,
        steps: Optional[int] = None,
        budget: Optional[float] = None,
    ) -> int:
        """Fused advance: walk and accumulate in one kernel pass.

        Engages when every accumulator absorbs fused blocks and
        ``REPRO_NO_FUSED`` is unset; otherwise defers to the base
        drain path.  Estimates are bit-identical either way — the
        estimators share one count-based reduction between their
        drained and fused paths.
        """
        parts = _accumulator_parts(accumulators)
        needs = merge_needs(parts)
        if needs is None or fusion_disabled():
            return super().advance_into(
                accumulators, steps=steps, budget=budget
            )
        if (steps is None) == (budget is None):
            raise ValueError(
                "pass exactly one of steps= or budget= to advance_into()"
            )
        if self._graph is None:
            raise RuntimeError(
                "session is detached; attach a graph with load_session()"
            )
        # Fold any record retained from earlier plain advances first,
        # so mixing advance() and advance_into() loses nothing and
        # double-counts nothing.
        if self._has_record():
            increment = self.take_trace()
            for part in parts:
                part.update(increment)
        if steps is not None:
            if steps < 0:
                raise ValueError(f"steps must be >= 0, got {steps}")
            delta = int(steps)
        else:
            delta = max(0, self._target_steps(budget) - self.steps_taken)
        if delta:
            block = self._fused_block(needs)
            self._advance_acc(delta, block)
            self.steps_taken += delta
            for part in parts:
                part.absorb_block(block)
        # Mirror advance()/advance_budget() budget bookkeeping exactly.
        if steps is not None:
            self._stepped_plainly = True
        else:
            assert budget is not None
            self._budget = (
                budget if self._budget is None else max(self._budget, budget)
            )
        return delta


class ArraySingleSession(_ArraySession):
    """SingleRW on the csr backend."""

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        native: Optional[bool] = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        self._pinned_seeds = (
            None
            if initial_vertices is None
            else [int(v) for v in initial_vertices]
        )
        super().__init__(sampler, graph, rng, native)
        self.position = self.initial_vertices[0]
        require_walkable_seeds(
            self._fast, [self.position], "SingleRW cannot walk from it"
        )

    def _draw_seeds(
        self, sampler: Any, generator: np.random.Generator
    ) -> List[int]:
        if self._pinned_seeds is not None:
            return self._pinned_seeds
        return super()._draw_seeds(sampler, generator)

    def _advance(self, steps: int) -> None:
        sources, targets = vectorized.run_random_walk(
            self._fast, self.position, steps, self.rng, self._native
        )
        self._record_chunk(sources, targets)
        self.position = int(targets[-1])

    def _advance_acc(self, steps: int, block: FusedBlock) -> None:
        self.position = vectorized.run_random_walk_acc(
            self._fast, self.position, steps, self.rng, block, self._native
        )


class ArrayMultipleSession(_ArraySession):
    """MultipleRW on the csr backend (walker-by-walker draw blocks)."""

    _split_budget = True
    _with_walkers = True

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        native: Optional[bool] = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        self._pinned_seeds = (
            None
            if initial_vertices is None
            else [int(v) for v in initial_vertices]
        )
        super().__init__(sampler, graph, rng, native)
        self.positions = list(self.initial_vertices)
        require_walkable_seeds(
            self._fast, self.positions, "MultipleRW cannot walk from it"
        )

    def _draw_seeds(
        self, sampler: Any, generator: np.random.Generator
    ) -> List[int]:
        if self._pinned_seeds is not None:
            return self._pinned_seeds
        return vectorized.make_seeds_np(
            self._fast, sampler.num_walkers, sampler.seeding, generator
        )

    def _advance(self, steps: int) -> None:
        for idx, start in enumerate(self.positions):
            sources, targets = vectorized.run_random_walk(
                self._fast, start, steps, self.rng, self._native
            )
            self._record_chunk(
                sources, targets, np.full(steps, idx, dtype=np.int64)
            )
            self.positions[idx] = int(targets[-1])

    def _advance_acc(self, steps: int, block: FusedBlock) -> None:
        # Walker-by-walker draw blocks, exactly as _advance; integer
        # block counts make the per-walker fold order-invariant.
        for idx, start in enumerate(self.positions):
            self.positions[idx] = vectorized.run_random_walk_acc(
                self._fast, start, steps, self.rng, block, self._native
            )


class ArrayFrontierSession(_ArraySession):
    """m-dimensional FS on the csr backend."""

    _with_walkers = True

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        native: Optional[bool] = None,
        initial_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        self._pinned_seeds = (
            None
            if initial_vertices is None
            else [int(v) for v in initial_vertices]
        )
        super().__init__(sampler, graph, rng, native)
        self.walker_selection = sampler.walker_selection
        self.frontier = list(self.initial_vertices)
        # Drawn seeds are walkable by construction; pinned ones must be
        # checked here, exactly as the list session does at start.
        require_walkable_seeds(
            self._fast, self.frontier, "FS cannot walk from it"
        )

    def _draw_seeds(
        self, sampler: Any, generator: np.random.Generator
    ) -> List[int]:
        if self._pinned_seeds is not None:
            return self._pinned_seeds
        return vectorized.make_seeds_np(
            self._fast, sampler.dimension, sampler.seeding, generator
        )

    def _advance(self, steps: int) -> None:
        sources, targets, walkers = vectorized.run_frontier(
            self._fast,
            self.frontier,
            steps,
            self.rng,
            self.walker_selection,
            self._native,
        )
        self._record_chunk(sources, targets, walkers)
        # Each walker's new position is its last target in the chunk.
        # Fancy assignment with repeated indices keeps the final write
        # (documented numpy semantics), which makes this O(steps) —
        # cheap enough to keep sample()'s kernel hot path intact.
        positions = np.asarray(self.frontier, dtype=np.int64)
        positions[walkers] = targets
        self.frontier = positions.tolist()

    def _advance_acc(self, steps: int, block: FusedBlock) -> None:
        self.frontier = vectorized.run_frontier_acc(
            self._fast,
            self.frontier,
            steps,
            self.rng,
            block,
            self.walker_selection,
            self._native,
        )


class ArrayMetropolisSession(_ArraySession):
    """MRW on the csr backend."""

    def __init__(
        self,
        sampler: Any,
        graph: Any,
        rng: RngLike = None,
        native: Optional[bool] = None,
    ) -> None:
        super().__init__(sampler, graph, rng, native)
        self.position = self.initial_vertices[0]
        self._visited_chunks: List[np.ndarray] = []

    def _advance(self, steps: int) -> None:
        edge_sources, edge_targets, visited = vectorized.run_metropolis(
            self._fast, self.position, steps, self.rng, self._native
        )
        self._record_chunk(edge_sources, edge_targets)
        self._visited_chunks.append(visited)
        self.position = int(visited[-1])

    def _advance_acc(self, steps: int, block: FusedBlock) -> None:
        self.position = vectorized.run_metropolis_acc(
            self._fast, self.position, steps, self.rng, block, self._native
        )

    def _units_spent(self) -> float:
        return float(self.steps_taken)  # proposals, not accepted edges

    def trace(self) -> ArrayMetropolisTrace:
        return ArrayMetropolisTrace(
            self.method,
            self._concat(self._source_chunks),
            self._concat(self._target_chunks),
            list(self.initial_vertices),
            self._trace_budget(),
            self.seed_cost,
            visited_array=self._concat(self._visited_chunks),
        )

    def _clear_record(self) -> None:
        super()._clear_record()
        self._visited_chunks = []


# ----------------------------------------------------------------------
# independent sampling (Section 3): probes instead of walk steps
# ----------------------------------------------------------------------
class VertexSampleSession(SamplerSession):
    """RandomVertex: ``advance(steps)`` spends that many id probes."""

    def __init__(
        self, sampler: Any, graph: Any, rng: RngLike = None
    ) -> None:
        if graph.num_vertices == 0:
            raise ValueError("graph has no vertices")
        super().__init__(sampler, graph, [])
        self.rng = ensure_rng(rng)
        self.hit_ratio = sampler.hit_ratio
        self._vertices: List[int] = []

    def _target_steps(self, budget: float) -> int:
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        return int(budget)

    def _advance(self, steps: int) -> None:
        graph, rng = self._graph, self.rng
        for _ in range(steps):
            if self.hit_ratio >= 1.0 or rng.random() < self.hit_ratio:
                self._vertices.append(graph.random_vertex(rng))

    def _units_spent(self) -> float:
        return float(self.steps_taken)  # one unit per probe, hit or miss

    def trace(self) -> VertexTrace:
        return VertexTrace(
            method=self.method,
            vertices=list(self._vertices),
            budget=self._trace_budget(),
            cost_per_sample=1.0 / self.hit_ratio,
        )

    def _clear_record(self) -> None:
        self._vertices = []


class EdgeSampleSession(SamplerSession):
    """RandomEdge: ``advance(steps)`` spends that many edge attempts."""

    _UNPICKLED = ("_degree_table",)

    def __init__(
        self, sampler: Any, graph: Any, rng: RngLike = None
    ) -> None:
        if graph.num_edges == 0:
            raise ValueError("graph has no edges")
        super().__init__(sampler, graph, [])
        self.rng = ensure_rng(rng)
        self.hit_ratio = sampler.hit_ratio
        self.cost_per_edge = sampler.cost_per_edge
        self._degree_table = AliasTable(graph.degrees())
        self._edges: List[Edge] = []

    def _target_steps(self, budget: float) -> int:
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        return int(budget / self.cost_per_edge)

    def _advance(self, steps: int) -> None:
        graph, rng, table = self._graph, self.rng, self._degree_table
        for _ in range(steps):
            if self.hit_ratio < 1.0 and rng.random() >= self.hit_ratio:
                continue
            # u proportional to degree then uniform neighbor == uniform
            # over directed edges.
            u = table.sample(rng)
            v = graph.random_neighbor(u, rng)
            self._edges.append((u, v))

    def _units_spent(self) -> float:
        return self.steps_taken * self.cost_per_edge

    def trace(self) -> WalkTrace:
        return WalkTrace(
            method=self.method,
            edges=list(self._edges),
            initial_vertices=[],
            budget=self._trace_budget(),
            seed_cost=0.0,
        )

    def _clear_record(self) -> None:
        self._edges = []

    def _reattach(self, graph: Any) -> None:
        self._degree_table = AliasTable(graph.degrees())
