"""Fused walk+accumulate parity: ``advance_into`` vs the drain path.

The contract under test: fusing the eq. (7)/(9) sufficient statistics
into the walk (``SamplerSession.advance_into`` feeding
``FusedBlock``s to the streaming estimators) is a memory/speed knob,
never a statistics change.  For every sampler family, backend kernel
(native C or the pure-Python ``REPRO_NO_NATIVE`` fallback), chunking,
advance mode (steps or budget) and executor:

- estimates from the fused path equal the drain path's **exactly**
  (``==``, not approx) when both absorb at the same chunk boundaries —
  the integer-count block design makes the two paths evaluate the very
  same float expressions;
- walker state is bit-identical afterwards: a session advanced via
  ``advance_into`` continues with the same trace a drained twin
  produces;
- ``REPRO_NO_FUSED=1`` forces the drain path everywhere with equal
  results, and non-fusable accumulators (``TraceCollector``) fall back
  automatically;
- checkpoints taken mid-fused-advance resume bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.estimators.streaming import (
    StreamingAverageDegree,
    StreamingDegreePMF,
    StreamingEdgeFunctional,
    StreamingGraphSize,
)
from repro.experiments.engine import ExperimentPlan, TraceCollector, run_plan
from repro.generators.ba import barabasi_albert
from repro.sampling import (
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    SingleRandomWalk,
    load_session,
)
from repro.sampling.fused import FusedBlock, FusedNeeds, merge_needs
from repro.sampling.sharded import ShardedFrontierSampler

_GRAPH = None


def fused_graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = barabasi_albert(300, 2, rng=5)
    return _GRAPH


SAMPLERS = {
    "srw": lambda: SingleRandomWalk(backend="csr"),
    "mhrw": lambda: MetropolisHastingsWalk(backend="csr"),
    "fs-degree": lambda: FrontierSampler(6, backend="csr"),
    "fs-uniform": lambda: FrontierSampler(
        6, walker_selection="uniform", backend="csr"
    ),
    "mrw": lambda: MultipleRandomWalk(4, backend="csr"),
}


def edge_weight(u: int, v: int) -> float:
    return float(2 * u + v)


def make_parts(graph):
    """A bundle needing all three block statistics."""
    return [
        StreamingDegreePMF(graph),
        StreamingAverageDegree(graph),
        StreamingGraphSize(graph),
        StreamingEdgeFunctional(edge_weight),
    ]


def estimates(parts):
    """Per-part estimates; short-walk refusals (StreamingGraphSize
    needs collisions) must at least refuse identically on both paths."""
    values = []
    for part in parts:
        try:
            values.append(part.estimate())
        except ValueError as error:
            values.append(("raised", str(error)))
    return values


def drain_into(session, parts):
    increment = session.take_trace()
    for part in parts:
        part.update(increment)


def assert_same_continuation(fused_session, drained_session, steps=30):
    """Both sessions walk the same post-advance trajectory."""
    fused_session.advance(steps)
    drained_session.advance(steps)
    a = fused_session.take_trace()
    b = drained_session.take_trace()
    assert np.array_equal(a.step_sources, b.step_sources)
    assert np.array_equal(a.step_targets, b.step_targets)


def run_parity(sampler_key, seed, chunks, budget_tail):
    """Fused vs drained twin at identical chunk boundaries."""
    graph = fused_graph()
    fused = SAMPLERS[sampler_key]().start(graph, rng=seed)
    drained = SAMPLERS[sampler_key]().start(graph, rng=seed)
    fused_parts, drained_parts = make_parts(graph), make_parts(graph)
    total = 0
    for chunk in chunks:
        total += chunk
        assert fused.advance_into(fused_parts, steps=chunk) == chunk
        drained.advance(chunk)
        drain_into(drained, drained_parts)
    if budget_tail is not None:
        fused.advance_into(fused_parts, budget=budget_tail)
        drained.advance_budget(budget_tail)
        drain_into(drained, drained_parts)
    assert fused.steps_taken == drained.steps_taken
    if fused.steps_taken:
        assert estimates(fused_parts) == estimates(drained_parts)
    assert_same_continuation(fused, drained)


class TestSessionParity:
    @given(
        sampler_key=st.sampled_from(sorted(SAMPLERS)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunks=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=4
        ),
        budget_tail=st.one_of(
            st.none(), st.floats(min_value=150.0, max_value=260.0)
        ),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimates_and_state_match_drained_twin(
        self, sampler_key, seed, chunks, budget_tail
    ):
        run_parity(sampler_key, seed, chunks, budget_tail)

    @pytest.mark.parametrize("sampler_key", sorted(SAMPLERS))
    def test_pure_python_fused_fallback(self, sampler_key, monkeypatch):
        """REPRO_NO_NATIVE keeps fusion on, via the vectorized
        fallback kernels — same exact-parity contract."""
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        run_parity(sampler_key, seed=11, chunks=[30, 0, 45], budget_tail=200.0)

    @pytest.mark.parametrize("sampler_key", sorted(SAMPLERS))
    def test_no_fused_env_forces_drain_path(self, sampler_key, monkeypatch):
        """REPRO_NO_FUSED=1 routes advance_into through take_trace()
        with identical estimates and walker state."""
        graph = fused_graph()
        disabled = SAMPLERS[sampler_key]().start(graph, rng=3)
        drained = SAMPLERS[sampler_key]().start(graph, rng=3)
        disabled_parts, drained_parts = make_parts(graph), make_parts(graph)
        monkeypatch.setenv("REPRO_NO_FUSED", "1")
        disabled.advance_into(disabled_parts, steps=80)
        monkeypatch.delenv("REPRO_NO_FUSED")
        drained.advance(80)
        drain_into(drained, drained_parts)
        assert estimates(disabled_parts) == estimates(drained_parts)
        assert_same_continuation(disabled, drained)

    def test_trace_collector_falls_back_to_drain(self):
        """A non-fusable accumulator still works: advance_into drains
        the increment into it and leaves the session record empty."""
        graph = fused_graph()
        session = SingleRandomWalk(backend="csr").start(graph, rng=1)
        collector = TraceCollector()
        assert session.advance_into(collector, steps=50) == 50
        assert collector.trace().step_targets.size == 50
        assert session.take_trace().step_targets.size == 0

    def test_zero_step_advance_is_a_no_op(self):
        graph = fused_graph()
        session = FrontierSampler(6, backend="csr").start(graph, rng=2)
        parts = make_parts(graph)
        session.advance_into(parts, steps=60)
        before = estimates(parts)
        assert session.advance_into(parts, steps=0) == 0
        assert estimates(parts) == before

    def test_requires_exactly_one_advance_mode(self):
        graph = fused_graph()
        session = SingleRandomWalk(backend="csr").start(graph, rng=1)
        parts = make_parts(graph)
        with pytest.raises(ValueError, match="exactly one"):
            session.advance_into(parts)
        with pytest.raises(ValueError, match="exactly one"):
            session.advance_into(parts, steps=5, budget=10.0)

    def test_checkpoint_mid_fused_advance_resumes_bit_identically(
        self, tmp_path
    ):
        graph = fused_graph()
        straight = FrontierSampler(6, backend="csr").start(graph, rng=9)
        interrupted = FrontierSampler(6, backend="csr").start(graph, rng=9)
        straight_parts = make_parts(graph)
        resumed_parts = make_parts(graph)
        straight.advance_into(straight_parts, steps=60)
        interrupted.advance_into(resumed_parts, steps=60)
        path = tmp_path / "fused.ckpt"
        interrupted.save(path)
        resumed = load_session(path, graph)
        straight.advance_into(straight_parts, budget=220.0)
        resumed.advance_into(resumed_parts, budget=220.0)
        assert resumed.steps_taken == straight.steps_taken
        assert estimates(resumed_parts) == estimates(straight_parts)
        assert_same_continuation(resumed, straight)

    def test_sharded_session_fused_parity(self):
        graph = fused_graph()
        fused = ShardedFrontierSampler(6, procs=2, executor="thread").start(
            graph, rng=4
        )
        drained = ShardedFrontierSampler(6, procs=2, executor="thread").start(
            graph, rng=4
        )
        fused_parts, drained_parts = make_parts(graph), make_parts(graph)
        fused.advance_into(fused_parts, steps=70)
        fused.advance_into(fused_parts, budget=260.0)
        drained.advance(70)
        drain_into(drained, drained_parts)
        drained.advance_budget(260.0)
        drain_into(drained, drained_parts)
        assert fused.steps_taken == drained.steps_taken
        assert estimates(fused_parts) == estimates(drained_parts)
        assert_same_continuation(fused, drained)
        fused.close()
        drained.close()


class TestBlockStructure:
    def test_needs_union_and_incapable_parts(self):
        graph = fused_graph()
        needs = merge_needs(
            [StreamingDegreePMF(graph), StreamingAverageDegree(graph)]
        )
        assert needs == FusedNeeds(degree_counts=True)
        assert merge_needs([StreamingDegreePMF(graph), TraceCollector()]) is None
        assert (
            merge_needs([StreamingDegreePMF(graph, degree_of=lambda v: 1)])
            is None
        )

    def test_degree_only_block_is_o_max_degree(self):
        """The bench's memory claim, structurally: a degree-statistics
        block allocates the (max_degree + 1) counts and nothing else."""
        block = FusedBlock(
            FusedNeeds(degree_counts=True), num_vertices=1000, max_degree=37
        )
        assert block.deg_counts is not None
        assert block.deg_counts.size == 38
        assert block.visit_counts is None
        assert block.new_edge_buffer(10_000) is None
        assert block.edge_key_array().size == 0


def streaming_accumulator(method):
    return StreamingAverageDegree(fused_graph())


def average_snapshot(method, accumulator, checkpoint):
    return accumulator.estimate()


class TestEngineParity:
    @pytest.mark.parametrize("schedule,marks", [
        ("budget", [120.0, 260.0]),
        ("steps", [60, 140]),
    ])
    def test_rows_identical_fused_drained_and_pooled(
        self, schedule, marks, monkeypatch
    ):
        plan = ExperimentPlan(
            title="fused-parity",
            graph=fused_graph(),
            samplers={
                "fs": FrontierSampler(6),
                "srw": SingleRandomWalk(),
                "mhrw": MetropolisHastingsWalk(),
            },
            budgets=marks,
            accumulator=streaming_accumulator,
            snapshot=average_snapshot,
            schedule=schedule,
            root_seed=13,
            backend="csr",
        )
        fused = run_plan(plan, replicates=2)
        monkeypatch.setenv("REPRO_NO_FUSED", "1")
        drained = run_plan(plan, replicates=2)
        monkeypatch.delenv("REPRO_NO_FUSED")
        legs = {
            "inline": run_plan(plan, replicates=2, procs=1),
            "thread": run_plan(
                plan, replicates=2, procs=2, executor="thread"
            ),
            "spawn": run_plan(plan, replicates=2, procs=2, executor="spawn"),
        }
        for method, run in fused.methods.items():
            assert run.rows == drained.methods[method].rows
            assert run.steps_taken == drained.methods[method].steps_taken
            for leg in legs.values():
                assert run.rows == leg.methods[method].rows
