"""Tests for the Barabási–Albert generator."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.graph.components import is_connected


class TestValidation:
    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestStructure:
    def test_vertex_count(self):
        graph = barabasi_albert(100, 2, rng=0)
        assert graph.num_vertices == 100

    def test_edge_count(self):
        """Seed star has k edges; each later vertex adds exactly k."""
        n, k = 120, 3
        graph = barabasi_albert(n, k, rng=1)
        assert graph.num_edges == k + (n - k - 1) * k

    def test_connected(self):
        assert is_connected(barabasi_albert(200, 1, rng=2))
        assert is_connected(barabasi_albert(200, 4, rng=3))

    def test_k1_is_tree(self):
        graph = barabasi_albert(150, 1, rng=4)
        assert graph.num_edges == graph.num_vertices - 1

    def test_average_degree_near_2k(self):
        graph = barabasi_albert(2000, 5, rng=5)
        assert graph.average_degree() == pytest.approx(10.0, rel=0.05)

    def test_min_degree_at_least_k(self):
        k = 3
        graph = barabasi_albert(300, k, rng=6)
        assert min(graph.degrees()) >= k

    def test_deterministic_given_seed(self):
        a = barabasi_albert(80, 2, rng=42)
        b = barabasi_albert(80, 2, rng=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_heavy_tail_present(self):
        """Preferential attachment should produce a hub far above the
        average degree."""
        graph = barabasi_albert(3000, 2, rng=7)
        assert graph.max_degree() > 5 * graph.average_degree()
