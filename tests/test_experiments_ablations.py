"""Structure tests for the ablation drivers (tiny scale)."""


from repro.experiments.ablations import (
    SweepResult,
    burn_in_ablation,
    dimension_sweep,
    fs_vs_distributed,
    metropolis_vs_rw,
    walker_selection_ablation,
)


class TestSweepResult:
    def test_render(self):
        result = SweepResult(title="t", errors={"a": 0.5, "b": 1.0})
        text = result.render()
        assert "t" in text
        assert "a" in text
        assert "0.5" in text


class TestDrivers:
    def test_dimension_sweep(self):
        result = dimension_sweep(scale=0.1, runs=4, dimensions=(1, 8))
        assert set(result.errors) == {"FS(m=1)", "FS(m=8)"}
        assert all(v > 0 for v in result.errors.values())

    def test_walker_selection(self):
        result = walker_selection_ablation(scale=0.1, runs=4, dimension=8)
        assert len(result.errors) == 2

    def test_metropolis_vs_rw(self):
        result = metropolis_vs_rw(scale=0.1, runs=4)
        assert set(result.errors) == {"RW + eq.(7)", "Metropolis-Hastings"}

    def test_burn_in(self):
        result = burn_in_ablation(scale=0.1, runs=4, burn_ins=(0, 20))
        assert "FS(m=64, no burn-in)" in result.errors
        assert "SingleRW(burn-in=0)" in result.errors
        assert "SingleRW(burn-in=20)" in result.errors

    def test_fs_vs_distributed(self):
        result = fs_vs_distributed(scale=0.1, runs=4, dimension=8)
        assert len(result.errors) == 2
