"""Tests for the alias table."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.alias import AliasTable


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, -0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_negative_count_rejected(self):
        table = AliasTable([1.0])
        with pytest.raises(ValueError):
            table.sample_many(random.Random(0), -1)


class TestSampling:
    def test_single_outcome(self):
        table = AliasTable([3.0])
        rng = random.Random(0)
        assert all(table.sample(rng) == 0 for _ in range(50))

    def test_len(self):
        assert len(AliasTable([1.0, 2.0, 3.0])) == 3

    def test_zero_weight_never_sampled(self):
        table = AliasTable([0.0, 1.0, 0.0])
        rng = random.Random(1)
        assert all(table.sample(rng) == 1 for _ in range(200))

    def test_uniform_weights(self):
        table = AliasTable([1.0] * 4)
        rng = random.Random(2)
        counts = Counter(table.sample_many(rng, 12000))
        for outcome in range(4):
            assert counts[outcome] / 12000 == pytest.approx(0.25, abs=0.02)

    def test_proportionality(self):
        table = AliasTable([1.0, 2.0, 7.0])
        rng = random.Random(3)
        counts = Counter(table.sample_many(rng, 20000))
        assert counts[2] / 20000 == pytest.approx(0.7, abs=0.02)
        assert counts[1] / 20000 == pytest.approx(0.2, abs=0.02)

    def test_unnormalized_weights_equivalent(self):
        rng_a = random.Random(4)
        rng_b = random.Random(4)
        a = AliasTable([1.0, 3.0])
        b = AliasTable([10.0, 30.0])
        assert a.sample_many(rng_a, 100) == b.sample_many(rng_b, 100)

    def test_sample_many_length(self):
        table = AliasTable([1.0, 1.0])
        assert len(table.sample_many(random.Random(5), 17)) == 17


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ).filter(lambda ws: sum(ws) > 0)
)
@settings(max_examples=50)
def test_empirical_matches_weights(weights):
    table = AliasTable(weights)
    rng = random.Random(99)
    n = 4000
    counts = Counter(table.sample_many(rng, n))
    total = sum(weights)
    for outcome, weight in enumerate(weights):
        expected = weight / total
        assert counts[outcome] / n == pytest.approx(expected, abs=0.06)
