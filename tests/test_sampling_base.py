"""Tests for sampler plumbing: traces, seeding, budget accounting."""

from collections import Counter

import pytest

from repro.graph.graph import Graph
from repro.sampling.base import (
    VertexTrace,
    WalkTrace,
    check_seeding,
    make_seeds,
    stationary_seeds,
    uniform_seeds,
    walk_steps,
)


class TestWalkTrace:
    def test_properties(self):
        trace = WalkTrace(
            method="x",
            edges=[(0, 1), (1, 2)],
            initial_vertices=[0],
            budget=10,
            seed_cost=1.0,
        )
        assert trace.num_steps == 2
        assert trace.visited_vertices == [1, 2]
        assert trace.spent() == 3.0

    def test_spent_with_seed_cost(self):
        trace = WalkTrace(
            method="x",
            edges=[(0, 1)] * 4,
            initial_vertices=[0, 1],
            budget=30,
            seed_cost=10.0,
        )
        assert trace.spent() == 24.0


class TestVertexTrace:
    def test_num_samples(self):
        trace = VertexTrace(
            method="rv", vertices=[1, 2, 2], budget=10, cost_per_sample=1.0
        )
        assert trace.num_samples == 3


class TestSeeding:
    def test_check_seeding_valid(self):
        assert check_seeding("uniform") == "uniform"
        assert check_seeding("stationary") == "stationary"

    def test_check_seeding_invalid(self):
        with pytest.raises(ValueError):
            check_seeding("magic")

    def test_uniform_seeds_skip_isolated(self, rng):
        graph = Graph(3)
        graph.add_edge(0, 1)  # vertex 2 is isolated
        seeds = uniform_seeds(graph, 200, rng)
        assert 2 not in seeds

    def test_uniform_seeds_uniform_over_walkable(self, rng):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        counts = Counter(uniform_seeds(graph, 9000, rng))
        for v in range(3):
            assert counts[v] / 9000 == pytest.approx(1 / 3, abs=0.03)

    def test_uniform_seeds_empty_graph_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_seeds(Graph(3), 1, rng)

    def test_uniform_negative_count_rejected(self, triangle, rng):
        with pytest.raises(ValueError):
            uniform_seeds(triangle, -1, rng)

    def test_stationary_seeds_degree_proportional(self, paw, rng):
        counts = Counter(stationary_seeds(paw, 16000, rng))
        volume = paw.volume()
        for v in paw.vertices():
            expected = paw.degree(v) / volume
            assert counts[v] / 16000 == pytest.approx(expected, abs=0.02)

    def test_stationary_seeds_no_edges_rejected(self, rng):
        with pytest.raises(ValueError):
            stationary_seeds(Graph(3), 1, rng)

    def test_make_seeds_dispatch(self, triangle, rng):
        assert len(make_seeds(triangle, 5, "uniform", rng)) == 5
        assert len(make_seeds(triangle, 5, "stationary", rng)) == 5
        with pytest.raises(ValueError):
            make_seeds(triangle, 5, "nope", rng)


class TestWalkSteps:
    def test_basic_accounting(self):
        assert walk_steps(100, 10, 1.0) == 90

    def test_floors_at_zero(self):
        assert walk_steps(5, 10, 1.0) == 0

    def test_fractional_budget(self):
        assert walk_steps(10.7, 1, 1.0) == 9

    def test_seed_cost_scaling(self):
        # the Section 6.4 regime: seeds cost 1/hit_ratio
        assert walk_steps(1000, 10, 10.0) == 900

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            walk_steps(-1, 1, 1.0)

    def test_negative_seed_cost_rejected(self):
        with pytest.raises(ValueError):
            walk_steps(10, 1, -1.0)


class TestStepsWithinBudget:
    """The consolidated budget→steps rule (shared + split accounting)."""

    def test_shared_matches_walk_steps(self):
        from repro.sampling.base import steps_within_budget

        for budget in (0, 5, 10.7, 1000, 12345.9):
            for walkers in (1, 3, 10):
                for cost in (0.0, 0.5, 1.0, 10.0):
                    assert steps_within_budget(
                        budget, walkers, cost
                    ) == walk_steps(budget, walkers, cost)

    def test_split_matches_multiple_walk_steps(self):
        from repro.sampling.base import (
            multiple_walk_steps,
            steps_within_budget,
        )

        for budget in (0, 5, 10.7, 1000, 12345.9):
            for walkers in (1, 3, 10):
                for cost in (0.0, 0.5, 1.0, 10.0):
                    assert steps_within_budget(
                        budget, walkers, cost, split=True
                    ) == multiple_walk_steps(budget, walkers, cost)

    def test_fractional_budget_truncates(self):
        from repro.sampling.base import steps_within_budget

        # shared: int(B - m*c) truncates toward zero
        assert steps_within_budget(10.9, 2, 1.0) == 8
        assert steps_within_budget(10.2, 2, 1.0) == 8
        # split: int(B/m - c) per walker
        assert steps_within_budget(10.9, 2, 1.0, split=True) == 4
        assert steps_within_budget(9.9, 2, 1.0, split=True) == 3

    def test_fractional_seed_cost(self):
        from repro.sampling.base import steps_within_budget

        # Section 6.4's seed_cost = 1/hit_ratio is rarely integral
        assert steps_within_budget(100, 8, 2.5) == 80
        assert steps_within_budget(100, 8, 2.5, split=True) == 10
        assert steps_within_budget(100, 8, 12.5, split=True) == 0

    def test_floors_at_zero_both_modes(self):
        from repro.sampling.base import steps_within_budget

        assert steps_within_budget(3, 10, 1.0) == 0
        assert steps_within_budget(3, 10, 1.0, split=True) == 0

    def test_invalid_arguments_rejected(self):
        from repro.sampling.base import steps_within_budget

        with pytest.raises(ValueError):
            steps_within_budget(-1, 1, 1.0)
        with pytest.raises(ValueError):
            steps_within_budget(10, 0, 1.0)
        with pytest.raises(ValueError):
            steps_within_budget(10, 1, -0.5)
