"""Tests for assortativity estimators, with networkx as oracle."""

import networkx as nx
import pytest

from repro.generators.ba import barabasi_albert
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace
from repro.sampling.single import SingleRandomWalk
from repro.estimators.assortativity import (
    assortativity_from_trace,
    directed_assortativity_from_trace,
)
from repro.metrics.exact import (
    true_directed_assortativity,
    true_undirected_assortativity,
)


def _star_path():
    """A disassortative graph: star + path tail."""
    graph = Graph(8)
    for leaf in range(1, 5):
        graph.add_edge(0, leaf)
    graph.add_edge(4, 5)
    graph.add_edge(5, 6)
    graph.add_edge(6, 7)
    return graph


class TestTrueUndirected:
    def test_matches_networkx(self):
        graph = _star_path()
        oracle = nx.Graph(list(graph.edges()))
        expected = nx.degree_pearson_correlation_coefficient(oracle)
        assert true_undirected_assortativity(graph) == pytest.approx(
            expected, abs=1e-9
        )

    def test_ba_graph_matches_networkx(self):
        graph = barabasi_albert(300, 2, rng=0)
        oracle = nx.Graph(list(graph.edges()))
        expected = nx.degree_pearson_correlation_coefficient(oracle)
        assert true_undirected_assortativity(graph) == pytest.approx(
            expected, abs=1e-9
        )

    def test_regular_graph_returns_zero(self, triangle):
        assert true_undirected_assortativity(triangle) == 0.0

    def test_no_edges_rejected(self):
        with pytest.raises(ValueError):
            true_undirected_assortativity(Graph(3))


class TestTrueDirected:
    def test_matches_networkx(self, small_digraph):
        oracle = nx.DiGraph(list(small_digraph.edges()))
        expected = nx.degree_pearson_correlation_coefficient(
            oracle, x="out", y="in"
        )
        assert true_directed_assortativity(small_digraph) == pytest.approx(
            expected, abs=1e-9
        )

    def test_no_edges_rejected(self):
        with pytest.raises(ValueError):
            true_directed_assortativity(DiGraph(3))


class TestEstimatorConvergence:
    def test_full_trace_equals_truth(self):
        """Feeding the estimator every directed orientation exactly once
        reproduces the true value (it's the same Pearson computation)."""
        graph = _star_path()
        trace = WalkTrace(
            "x", list(graph.directed_edges()), [0], 0, 1.0
        )
        assert assortativity_from_trace(graph, trace) == pytest.approx(
            true_undirected_assortativity(graph), abs=1e-12
        )

    def test_rw_estimate_converges(self):
        graph = _star_path()
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 60_000, rng=1
        )
        truth = true_undirected_assortativity(graph)
        assert assortativity_from_trace(graph, trace) == pytest.approx(
            truth, abs=0.03
        )

    def test_empty_trace_rejected(self, paw):
        with pytest.raises(ValueError):
            assortativity_from_trace(paw, WalkTrace("x", [], [0], 0, 1.0))

    def test_degenerate_degrees_return_zero(self, triangle):
        trace = SingleRandomWalk().sample(triangle, 200, rng=2)
        assert assortativity_from_trace(triangle, trace) == 0.0


class TestDirectedEstimator:
    def test_full_directed_edges_equal_truth(self, small_digraph):
        trace = WalkTrace("x", list(small_digraph.edges()), [0], 0, 1.0)
        assert directed_assortativity_from_trace(
            small_digraph, trace
        ) == pytest.approx(
            true_directed_assortativity(small_digraph), abs=1e-12
        )

    def test_skips_non_gd_orientations(self, small_digraph):
        """Orientations absent from G_d are outside E* and ignored."""
        trace = WalkTrace("x", [(1, 0), (0, 1)], [1], 2, 1.0)
        # only (0,1) is in Gd; a single relevant pair has zero variance
        assert directed_assortativity_from_trace(small_digraph, trace) == 0.0

    def test_no_relevant_edges_rejected(self, small_digraph):
        trace = WalkTrace("x", [(4, 3)], [4], 1, 1.0)  # reverse of (3,4)
        with pytest.raises(ValueError):
            directed_assortativity_from_trace(small_digraph, trace)
