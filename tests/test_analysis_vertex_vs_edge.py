"""Tests for the Section 3 closed-form NMSE model (eqs. 3-4)."""


import pytest

from repro.analysis.vertex_vs_edge import (
    analytic_nmse_curves,
    edge_sampling_nmse,
    predicted_crossover_degree,
    vertex_sampling_nmse,
)
from repro.generators.ba import barabasi_albert
from repro.metrics.errors import nmse
from repro.metrics.exact import true_degree_pmf
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler
from repro.estimators.degree import (
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.util.rng import child_rng


class TestClosedForms:
    def test_eq4_value(self):
        # theta = 0.2, B = 100: sqrt((5-1)/100) = 0.2
        assert vertex_sampling_nmse(0.2, 100) == pytest.approx(0.2)

    def test_eq3_value(self):
        # pi = i*theta/d = 4*0.1/2 = 0.2 -> same as above
        assert edge_sampling_nmse(0.1, 4, 2.0, 100) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            vertex_sampling_nmse(0.0, 10)
        with pytest.raises(ValueError):
            vertex_sampling_nmse(0.5, 0)
        with pytest.raises(ValueError):
            edge_sampling_nmse(0.5, 0, 2.0, 10)
        with pytest.raises(ValueError):
            edge_sampling_nmse(0.9, 10, 2.0, 10)  # pi > 1

    def test_crossover_at_mean_degree(self):
        assert predicted_crossover_degree(7.3) == 7.3
        with pytest.raises(ValueError):
            predicted_crossover_degree(0.0)

    def test_edge_beats_vertex_above_mean(self):
        """pi_i/theta_i = i/d: above the mean degree edge sampling has
        strictly smaller NMSE, below it strictly larger."""
        theta, d, budget = 0.01, 5.0, 1000
        above = 20
        below = 2
        assert edge_sampling_nmse(theta, above, d, budget) < (
            vertex_sampling_nmse(theta, budget)
        )
        assert edge_sampling_nmse(theta, below, d, budget) > (
            vertex_sampling_nmse(theta, budget)
        )


class TestCurves:
    def test_curves_cover_support(self):
        graph = barabasi_albert(300, 2, rng=0)
        vertex_curve, edge_curve = analytic_nmse_curves(graph, 500)
        pmf = true_degree_pmf(graph)
        support = {k for k, v in pmf.items() if v > 0}
        assert set(vertex_curve) == support
        assert set(edge_curve) == {k for k in support if k > 0}

    def test_crossover_visible_in_curves(self):
        graph = barabasi_albert(500, 3, rng=1)
        vertex_curve, edge_curve = analytic_nmse_curves(graph, 1000)
        d = graph.average_degree()
        above = [k for k in edge_curve if k > 2 * d and vertex_curve.get(k)]
        below = [k for k in edge_curve if 0 < k < 0.5 * d]
        assert above and any(
            edge_curve[k] < vertex_curve[k] for k in above
        )
        assert all(edge_curve[k] > vertex_curve[k] for k in below)


class TestModelMatchesSimulation:
    """Eq. 3/4 are exact binomial-variance statements; simulated NMSE
    of the independent samplers should land on them."""

    def _simulated_vertex_nmse(self, graph, degree, budget, runs):
        truth = true_degree_pmf(graph)[degree]
        estimates = []
        sampler = RandomVertexSampler()
        for run in range(runs):
            trace = sampler.sample(graph, budget, child_rng(17, run))
            pmf = degree_pmf_from_vertices(trace.vertices, graph.degree)
            estimates.append(pmf.get(degree, 0.0))
        return nmse(estimates, truth)

    def test_vertex_sampling_matches_eq4(self):
        graph = barabasi_albert(400, 2, rng=2)
        pmf = true_degree_pmf(graph)
        degree = 2  # high-mass degree for a stable comparison
        budget = 200
        predicted = vertex_sampling_nmse(pmf[degree], budget)
        simulated = self._simulated_vertex_nmse(graph, degree, budget, 400)
        assert simulated == pytest.approx(predicted, rel=0.15)

    def test_edge_sampling_matches_eq3(self):
        graph = barabasi_albert(400, 2, rng=3)
        pmf = true_degree_pmf(graph)
        degree = 3
        samples = 200
        d = graph.average_degree()
        predicted = edge_sampling_nmse(pmf[degree], degree, d, samples)
        sampler = RandomEdgeSampler(cost_per_edge=1.0)
        truth = pmf[degree]
        estimates = []
        for run in range(400):
            trace = sampler.sample(graph, samples, child_rng(23, run))
            estimate = degree_pmf_from_trace(graph, trace).get(degree, 0.0)
            estimates.append(estimate)
        simulated = nmse(estimates, truth)
        # The estimator self-normalizes (eq. 7), adding variance beyond
        # the idealized binomial model — allow a wider band.
        assert simulated == pytest.approx(predicted, rel=0.45)
