"""Tests for repro.util.stats."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    OnlineMoments,
    ccdf_from_pmf,
    empirical_pmf,
    histogram,
    mean_of_pmf,
    normalize_counts,
    quantile,
    total_variation,
)


class TestOnlineMoments:
    def test_empty_raises(self):
        moments = OnlineMoments()
        with pytest.raises(ValueError):
            _ = moments.mean

    def test_single_value(self):
        moments = OnlineMoments()
        moments.add(3.0)
        assert moments.mean == 3.0
        assert moments.count == 1
        with pytest.raises(ValueError):
            _ = moments.variance

    def test_matches_statistics_module(self):
        data = [1.5, 2.5, -3.0, 4.25, 0.0, 10.0]
        moments = OnlineMoments()
        moments.update(data)
        assert moments.mean == pytest.approx(statistics.mean(data))
        assert moments.variance == pytest.approx(statistics.variance(data))
        assert moments.std == pytest.approx(statistics.stdev(data))

    def test_population_variance(self):
        data = [1.0, 2.0, 3.0]
        moments = OnlineMoments()
        moments.update(data)
        assert moments.population_variance == pytest.approx(
            statistics.pvariance(data)
        )

    def test_mean_squared_about(self):
        moments = OnlineMoments()
        moments.update([1.0, 3.0])
        # E[(X-2)^2] = ((1-2)^2 + (3-2)^2)/2 = 1
        assert moments.mean_squared_about(2.0) == pytest.approx(1.0)

    def test_merge(self):
        left = OnlineMoments()
        right = OnlineMoments()
        data = [1.0, 5.0, -2.0, 8.0, 3.5]
        left.update(data[:2])
        right.update(data[2:])
        merged = left.merge(right)
        assert merged.count == 5
        assert merged.mean == pytest.approx(statistics.mean(data))
        assert merged.variance == pytest.approx(statistics.variance(data))

    def test_merge_with_empty(self):
        left = OnlineMoments()
        left.update([1.0, 2.0])
        merged = left.merge(OnlineMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestDistributions:
    def test_normalize_counts(self):
        pmf = normalize_counts({1: 2, 2: 6})
        assert pmf == {1: 0.25, 2: 0.75}

    def test_normalize_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts({})

    def test_empirical_pmf(self):
        pmf = empirical_pmf([1, 1, 2, 3])
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.25)

    def test_empirical_pmf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_pmf([])

    def test_ccdf_strictly_greater(self):
        # gamma_l = P(X > l), the paper's definition.
        ccdf = ccdf_from_pmf({0: 0.5, 1: 0.3, 2: 0.2})
        assert ccdf[0] == pytest.approx(0.5)
        assert ccdf[1] == pytest.approx(0.2)
        assert ccdf[2] == pytest.approx(0.0)

    def test_ccdf_gaps_in_support(self):
        ccdf = ccdf_from_pmf({1: 0.5, 5: 0.5})
        assert ccdf[1] == pytest.approx(0.5)
        assert ccdf[5] == pytest.approx(0.0)

    def test_ccdf_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_from_pmf({})

    def test_total_variation(self):
        p = {0: 0.5, 1: 0.5}
        q = {0: 1.0}
        assert total_variation(p, q) == pytest.approx(0.5)

    def test_total_variation_identical(self):
        p = {0: 0.3, 2: 0.7}
        assert total_variation(p, p) == 0.0

    def test_mean_of_pmf(self):
        assert mean_of_pmf({1: 0.5, 3: 0.5}) == pytest.approx(2.0)


class TestQuantile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [1.0, 5.0, 9.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 9.0


class TestHistogram:
    def test_basic(self):
        counts = histogram([0.5, 1.5, 1.7, 2.5], [0, 1, 2, 3])
        assert counts == [1, 2, 1]

    def test_out_of_range_ignored(self):
        counts = histogram([-1.0, 5.0], [0, 1])
        assert counts == [0]

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram([1.0], [0])


@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=60,
    )
)
@settings(max_examples=100)
def test_online_moments_match_naive(values):
    moments = OnlineMoments()
    moments.update(values)
    assert moments.mean == pytest.approx(statistics.mean(values), abs=1e-7)
    assert moments.variance == pytest.approx(
        statistics.variance(values), abs=1e-6
    )


@given(
    pmf_weights=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=20
    )
)
@settings(max_examples=100)
def test_ccdf_is_monotone_and_bounded(pmf_weights):
    total = sum(pmf_weights)
    pmf = {i: w / total for i, w in enumerate(pmf_weights)}
    ccdf = ccdf_from_pmf(pmf)
    keys = sorted(ccdf)
    values = [ccdf[k] for k in keys]
    assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))
    assert all(-1e-12 <= v <= 1.0 + 1e-12 for v in values)
    assert ccdf[keys[-1]] == pytest.approx(0.0, abs=1e-12)
