"""Tests for the RW chain helpers."""

import pytest

from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.markov.chain import (
    distribution_after,
    is_bipartite,
    rw_stationary_distribution,
    rw_transition_matrix,
    step_distribution,
    total_variation_distance,
    uniform_distribution,
)


class TestTransitionMatrix:
    def test_rows_stochastic(self, house):
        matrix = rw_transition_matrix(house)
        for row in matrix:
            assert sum(row) == pytest.approx(1.0)

    def test_entries(self, paw):
        matrix = rw_transition_matrix(paw)
        assert matrix[3][0] == pytest.approx(1.0)
        assert matrix[0][3] == pytest.approx(1 / 3)
        assert matrix[0][0] == 0.0

    def test_isolated_vertex_zero_row(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        matrix = rw_transition_matrix(graph)
        assert matrix[2] == [0.0, 0.0, 0.0]


class TestStationaryDistribution:
    def test_degree_proportional(self, paw):
        pi = rw_stationary_distribution(paw)
        assert pi == pytest.approx([3 / 8, 2 / 8, 2 / 8, 1 / 8])

    def test_no_edges_rejected(self):
        with pytest.raises(ValueError):
            rw_stationary_distribution(Graph(2))

    def test_fixed_point(self, house):
        pi = rw_stationary_distribution(house)
        stepped = step_distribution(house, pi)
        assert stepped == pytest.approx(pi)


class TestStepDistribution:
    def test_mass_conserved(self, house):
        dist = uniform_distribution(house)
        stepped = step_distribution(house, dist)
        assert sum(stepped) == pytest.approx(1.0)

    def test_wrong_length_rejected(self, house):
        with pytest.raises(ValueError):
            step_distribution(house, [1.0])

    def test_isolated_vertex_keeps_mass(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        stepped = step_distribution(graph, [0.0, 0.0, 1.0])
        assert stepped[2] == pytest.approx(1.0)

    def test_matches_matrix_product(self, house):
        matrix = rw_transition_matrix(house)
        dist = [0.2, 0.2, 0.2, 0.2, 0.2]
        stepped = step_distribution(house, dist)
        expected = [
            sum(dist[u] * matrix[u][v] for u in range(5)) for v in range(5)
        ]
        assert stepped == pytest.approx(expected)


class TestDistributionAfter:
    def test_zero_steps_identity(self, house):
        dist = uniform_distribution(house)
        assert distribution_after(house, dist, 0) == dist

    def test_negative_rejected(self, house):
        with pytest.raises(ValueError):
            distribution_after(house, uniform_distribution(house), -1)

    def test_converges_to_stationary(self, house):
        """Non-bipartite connected graph: uniform start mixes to pi."""
        pi = rw_stationary_distribution(house)
        mixed = distribution_after(house, uniform_distribution(house), 200)
        assert total_variation_distance(mixed, pi) < 1e-6

    def test_bipartite_oscillates(self):
        """P4 is bipartite: parity prevents convergence."""
        graph = path_graph(4)
        start = [1.0, 0.0, 0.0, 0.0]
        even = distribution_after(graph, start, 100)
        odd = distribution_after(graph, start, 101)
        assert total_variation_distance(even, odd) > 0.3


class TestTotalVariation:
    def test_identical(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            total_variation_distance([1.0], [0.5, 0.5])


class TestBipartiteness:
    def test_even_cycle_bipartite(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle_not(self):
        assert not is_bipartite(cycle_graph(5))

    def test_star_bipartite(self):
        assert is_bipartite(star_graph(4))

    def test_complete_graph_not(self):
        assert not is_bipartite(complete_graph(4))

    def test_disconnected_mixed(self, two_triangles):
        assert not is_bipartite(two_triangles)

    def test_empty_graph_bipartite(self):
        assert is_bipartite(Graph(3))
