"""Tests for Erdős–Rényi generators."""

import pytest

from repro.generators.er import erdos_renyi_gnm, erdos_renyi_gnp


class TestGnp:
    def test_p_zero(self):
        graph = erdos_renyi_gnp(50, 0.0, rng=0)
        assert graph.num_edges == 0

    def test_p_one_is_complete(self):
        graph = erdos_renyi_gnp(10, 1.0, rng=0)
        assert graph.num_edges == 45

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(10, 1.5)
        with pytest.raises(ValueError):
            erdos_renyi_gnp(10, -0.1)

    def test_expected_edge_count(self):
        n, p = 300, 0.05
        graph = erdos_renyi_gnp(n, p, rng=1)
        expected = p * n * (n - 1) / 2
        assert graph.num_edges == pytest.approx(expected, rel=0.15)

    def test_tiny_graph(self):
        graph = erdos_renyi_gnp(1, 0.5, rng=2)
        assert graph.num_edges == 0

    def test_no_self_loops_or_duplicates(self):
        graph = erdos_renyi_gnp(100, 0.1, rng=3)
        edges = list(graph.edges())
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)

    def test_deterministic(self):
        a = erdos_renyi_gnp(60, 0.1, rng=9)
        b = erdos_renyi_gnp(60, 0.1, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())


class TestGnm:
    def test_exact_edge_count(self):
        graph = erdos_renyi_gnm(40, 100, rng=0)
        assert graph.num_edges == 100

    def test_zero_edges(self):
        assert erdos_renyi_gnm(10, 0, rng=0).num_edges == 0

    def test_max_edges(self):
        graph = erdos_renyi_gnm(6, 15, rng=0)
        assert graph.num_edges == 15

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, 7)

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, -1)

    def test_deterministic(self):
        a = erdos_renyi_gnm(30, 40, rng=5)
        b = erdos_renyi_gnm(30, 40, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())
