"""Tests for the text rendering helpers."""

import pytest

from repro.experiments.render import format_float, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table("Title", ["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert lines[2].strip().startswith("-")
        assert len(lines) == 5

    def test_columns_align(self):
        text = render_table("t", ["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[3]) == len(lines[4])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table("t", ["a"], [])
        assert "a" in text


class TestFormatFloat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_normal_range(self):
        assert format_float(0.1234567, 4) == "0.1235"

    def test_large_values_scientific(self):
        assert "e" in format_float(123456.0)

    def test_tiny_values_scientific(self):
        assert "e" in format_float(1e-9)

    def test_negative(self):
        assert format_float(-1.5, 2) == "-1.50"
