"""Tests for NMSE / CNMSE / bias metrics."""

import math

import pytest

from repro.metrics.errors import (
    cnmse_curve,
    mean_curve,
    nmse,
    nmse_curve,
    relative_bias,
)


class TestNmse:
    def test_exact_estimates_zero_error(self):
        assert nmse([0.5, 0.5, 0.5], 0.5) == 0.0

    def test_hand_computed(self):
        # estimates 0.4 and 0.6 around truth 0.5:
        # MSE = 0.01, sqrt = 0.1, / 0.5 = 0.2
        assert nmse([0.4, 0.6], 0.5) == pytest.approx(0.2)

    def test_matches_eq1_form(self):
        estimates = [0.2, 0.3, 0.7]
        truth = 0.4
        mse = sum((x - truth) ** 2 for x in estimates) / 3
        assert nmse(estimates, truth) == pytest.approx(
            math.sqrt(mse) / truth
        )

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            nmse([0.1], 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nmse([], 1.0)


class TestRelativeBias:
    def test_unbiased(self):
        assert relative_bias([0.4, 0.6], 0.5) == pytest.approx(0.0)

    def test_underestimate_positive_bias(self):
        # Table 2's convention: bias = 1 - E[r_hat]/r
        assert relative_bias([0.25], 0.5) == pytest.approx(0.5)

    def test_overestimate_negative_bias(self):
        assert relative_bias([1.0], 0.5) == pytest.approx(-1.0)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_bias([0.1], 0.0)


class TestCurves:
    def test_nmse_curve_aggregates_runs(self):
        truth = {1: 0.5, 2: 0.5}
        runs = [{1: 0.4, 2: 0.5}, {1: 0.6, 2: 0.5}]
        curve = nmse_curve(runs, truth)
        assert curve[1] == pytest.approx(0.2)
        assert curve[2] == 0.0

    def test_missing_degree_counts_as_zero_estimate(self):
        truth = {3: 0.5}
        runs = [{}, {3: 0.5}]
        # estimates are 0.0 and 0.5 -> MSE = 0.125
        assert nmse_curve(runs, truth)[3] == pytest.approx(
            math.sqrt(0.125) / 0.5
        )

    def test_zero_truth_degrees_skipped(self):
        truth = {1: 0.0, 2: 1.0}
        curve = nmse_curve([{2: 1.0}], truth)
        assert 1 not in curve
        assert curve[2] == 0.0

    def test_no_runs_rejected(self):
        with pytest.raises(ValueError):
            nmse_curve([], {1: 0.5})

    def test_cnmse_is_nmse_on_ccdf(self):
        truth = {0: 0.8, 1: 0.2}
        runs = [{0: 0.7, 1: 0.25}]
        assert cnmse_curve(runs, truth) == nmse_curve(runs, truth)

    def test_mean_curve(self):
        runs = [{1: 0.2}, {1: 0.4, 2: 1.0}]
        mean = mean_curve(runs)
        assert mean[1] == pytest.approx(0.3)
        assert mean[2] == pytest.approx(0.5)

    def test_mean_curve_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_curve([])
