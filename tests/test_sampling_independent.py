"""Tests for random vertex and random edge sampling."""

from collections import Counter

import pytest

from repro.graph.graph import Graph
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler


class TestRandomVertexSampler:
    def test_hit_ratio_validation(self):
        with pytest.raises(ValueError):
            RandomVertexSampler(hit_ratio=0.0)
        with pytest.raises(ValueError):
            RandomVertexSampler(hit_ratio=1.2)

    def test_full_hit_ratio_sample_count(self, house):
        trace = RandomVertexSampler().sample(house, 500, rng=0)
        assert trace.num_samples == 500

    def test_partial_hit_ratio_mean(self, house):
        trace = RandomVertexSampler(hit_ratio=0.2).sample(house, 5000, rng=1)
        assert trace.num_samples == pytest.approx(1000, abs=120)
        assert trace.cost_per_sample == pytest.approx(5.0)

    def test_uniform_over_all_vertices(self, paw):
        trace = RandomVertexSampler().sample(paw, 20_000, rng=2)
        counts = Counter(trace.vertices)
        for v in paw.vertices():
            assert counts[v] / trace.num_samples == pytest.approx(
                0.25, abs=0.02
            )

    def test_includes_isolated_vertices(self):
        """Random id probing hits *all* valid ids, including degree-0
        vertices (unlike walker seeding)."""
        graph = Graph(3)
        graph.add_edge(0, 1)
        trace = RandomVertexSampler().sample(graph, 3000, rng=3)
        assert 2 in trace.vertices

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            RandomVertexSampler().sample(Graph(), 10, rng=0)

    def test_deterministic(self, house):
        a = RandomVertexSampler(0.5).sample(house, 100, rng=7)
        b = RandomVertexSampler(0.5).sample(house, 100, rng=7)
        assert a.vertices == b.vertices


class TestRandomEdgeSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomEdgeSampler(hit_ratio=0.0)
        with pytest.raises(ValueError):
            RandomEdgeSampler(cost_per_edge=0.0)

    def test_cost_per_edge_accounting(self, house):
        trace = RandomEdgeSampler(cost_per_edge=2.0).sample(house, 100, rng=0)
        assert trace.num_steps == 50

    def test_hit_ratio_thins_samples(self, house):
        trace = RandomEdgeSampler(hit_ratio=0.1, cost_per_edge=2.0).sample(
            house, 20_000, rng=1
        )
        assert trace.num_steps == pytest.approx(1000, abs=150)

    def test_uniform_over_orientations(self, paw):
        trace = RandomEdgeSampler().sample(paw, 60_000, rng=2)
        counts = Counter(trace.edges)
        expected = 1.0 / paw.volume()
        assert len(counts) == paw.volume()
        for _edge, count in counts.items():
            assert count / trace.num_steps == pytest.approx(
                expected, rel=0.15
            )

    def test_no_edges_rejected(self):
        with pytest.raises(ValueError):
            RandomEdgeSampler().sample(Graph(3), 10, rng=0)

    def test_deterministic(self, house):
        a = RandomEdgeSampler().sample(house, 60, rng=8)
        b = RandomEdgeSampler().sample(house, 60, rng=8)
        assert a.edges == b.edges
