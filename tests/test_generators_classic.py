"""Tests for deterministic classic generators."""

import pytest

from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.components import is_connected


class TestPath:
    def test_structure(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_single_vertex(self):
        assert path_graph(1).num_edges == 0

    def test_empty(self):
        assert path_graph(0).num_vertices == 0


class TestCycle:
    def test_structure(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert all(graph.degree(v) == 2 for v in graph.vertices())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            cycle_graph(2)


class TestStar:
    def test_structure(self):
        graph = star_graph(4)
        assert graph.num_vertices == 5
        assert graph.degree(0) == 4
        assert all(graph.degree(v) == 1 for v in range(1, 5))

    def test_no_leaves_rejected(self):
        with pytest.raises(ValueError):
            star_graph(0)


class TestComplete:
    def test_edge_count(self):
        assert complete_graph(7).num_edges == 21

    def test_regular(self):
        graph = complete_graph(5)
        assert all(graph.degree(v) == 4 for v in graph.vertices())


class TestGrid:
    def test_structure(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        # edges: 3*(4-1) horizontal + (3-1)*4 vertical
        assert graph.num_edges == 9 + 8

    def test_corner_degrees(self):
        graph = grid_graph(3, 3)
        assert graph.degree(0) == 2  # corner
        assert graph.degree(4) == 4  # center

    def test_connected(self):
        assert is_connected(grid_graph(4, 5))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)
