"""Tests for the Appendix B / Table 4 transient machinery."""

import pytest

from repro.generators.classic import complete_graph
from repro.markov.transient import (
    multiple_rw_worst_case_gap,
    single_rw_edge_probabilities,
    single_rw_worst_case_gap,
    walk_trace_final_edge_gap,
    worst_case_gap,
)
from repro.sampling.frontier import FrontierSampler
from repro.sampling.single import SingleRandomWalk


class TestSingleRwEdgeProbabilities:
    def test_probabilities_sum_to_one(self, house):
        probabilities = single_rw_edge_probabilities(house, 5)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_steps_validation(self, house):
        with pytest.raises(ValueError):
            single_rw_edge_probabilities(house, 0)

    def test_one_step_from_uniform(self, paw):
        """After one step from a uniform start, edge (u, v) has
        probability (1/n) / deg(u)."""
        probabilities = single_rw_edge_probabilities(paw, 1)
        n = paw.num_vertices
        for (u, _v), p in probabilities.items():
            assert p == pytest.approx(1.0 / (n * paw.degree(u)))

    def test_regular_graph_is_stationary_immediately(self):
        """On a regular graph the uniform start *is* stationary, so the
        gap is zero at every horizon."""
        graph = complete_graph(5)
        for steps in (1, 3, 10):
            assert single_rw_worst_case_gap(graph, steps) == pytest.approx(
                0.0, abs=1e-12
            )

    def test_gap_decreases_with_steps(self, paw):
        gaps = [single_rw_worst_case_gap(paw, steps) for steps in (1, 4, 16, 64)]
        assert gaps[0] > gaps[-1]
        assert gaps[-1] == pytest.approx(0.0, abs=1e-6)

    def test_bipartite_graph_never_converges(self):
        """A *non-regular* bipartite graph oscillates forever (on a
        regular one the uniform start is already edge-stationary)."""
        from repro.generators.classic import star_graph

        graph = star_graph(3)
        assert single_rw_worst_case_gap(graph, 101) > 0.1
        assert single_rw_worst_case_gap(graph, 102) > 0.1


class TestWorstCaseGap:
    def test_stationary_probabilities_zero_gap(self, paw):
        volume = paw.volume()
        probabilities = {
            edge: 1.0 / volume
            for edge in paw.directed_edges()
        }
        assert worst_case_gap(probabilities, volume) == pytest.approx(0.0)

    def test_missing_edge_dominates(self, paw):
        volume = paw.volume()
        probabilities = {
            edge: 1.0 / volume for edge in paw.directed_edges()
        }
        first = next(iter(probabilities))
        probabilities[first] = 0.0
        assert worst_case_gap(probabilities, volume) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_case_gap({}, 4)


class TestMultipleRw:
    def test_reduces_to_single_with_fewer_steps(self, paw):
        """K walkers split the budget: each gets (B-K)/K steps, so MRW's
        gap at budget B equals SRW's gap at (B-K)/K steps."""
        budget, k = 41, 4
        expected = single_rw_worst_case_gap(paw, (budget - k) // k)
        assert multiple_rw_worst_case_gap(paw, budget, k) == expected

    def test_validation(self, paw):
        with pytest.raises(ValueError):
            multiple_rw_worst_case_gap(paw, 10, 0)


class TestMonteCarloGap:
    def test_matches_exact_for_single_rw(self, paw):
        """Monte Carlo over SingleRW traces approximates the exact gap."""
        budget = 6
        exact = single_rw_worst_case_gap(paw, budget - 1)
        estimated = walk_trace_final_edge_gap(
            paw, SingleRandomWalk(), budget, runs=40_000, root_seed=1
        )
        assert estimated == pytest.approx(exact, abs=0.08)

    def test_fs_gap_smaller_than_single(self, paw):
        """The Appendix B claim, on a tiny graph: FS's final-edge law is
        closer to uniform than SingleRW's at the same budget."""
        budget = 8
        fs_gap = walk_trace_final_edge_gap(
            paw, FrontierSampler(4), budget, runs=40_000, root_seed=2
        )
        srw_gap = single_rw_worst_case_gap(paw, budget - 1)
        assert fs_gap < srw_gap

    def test_runs_validation(self, paw):
        with pytest.raises(ValueError):
            walk_trace_final_edge_gap(paw, SingleRandomWalk(), 5, runs=0)
