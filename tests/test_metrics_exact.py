"""Tests for ground-truth metric computation."""

import pytest

from repro.graph.graph import Graph
from repro.graph.labels import VertexLabeling
from repro.metrics.exact import (
    true_degree_ccdf,
    true_degree_pmf,
    true_group_densities,
    true_vertex_label_density,
)


class TestDegreePmf:
    def test_paw(self, paw):
        pmf = true_degree_pmf(paw)
        assert pmf[1] == pytest.approx(0.25)
        assert pmf[2] == pytest.approx(0.5)
        assert pmf[3] == pytest.approx(0.25)
        assert pmf[0] == 0.0

    def test_dense_support(self, star5):
        pmf = true_degree_pmf(star5)
        assert set(pmf) == {0, 1, 2, 3, 4, 5}
        assert pmf[5] == pytest.approx(1 / 6)
        assert pmf[1] == pytest.approx(5 / 6)

    def test_custom_label(self, paw):
        pmf = true_degree_pmf(paw, degree_of=lambda v: v % 2)
        assert pmf[0] == pytest.approx(0.5)
        assert pmf[1] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            true_degree_pmf(Graph())

    def test_sums_to_one(self, house):
        assert sum(true_degree_pmf(house).values()) == pytest.approx(1.0)


class TestDegreeCcdf:
    def test_strictly_greater_semantics(self, paw):
        ccdf = true_degree_ccdf(paw)
        assert ccdf[0] == pytest.approx(1.0)  # all degrees > 0
        assert ccdf[1] == pytest.approx(0.75)
        assert ccdf[3] == pytest.approx(0.0)

    def test_monotone(self, house):
        ccdf = true_degree_ccdf(house)
        keys = sorted(ccdf)
        for a, b in zip(keys, keys[1:]):
            assert ccdf[a] >= ccdf[b]


class TestLabelDensity:
    def test_density(self, paw):
        labels = VertexLabeling()
        labels.add(0, "x")
        labels.add(2, "x")
        assert true_vertex_label_density(paw, labels, "x") == pytest.approx(
            0.5
        )

    def test_missing_label(self, paw):
        assert true_vertex_label_density(paw, VertexLabeling(), "x") == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            true_vertex_label_density(Graph(), VertexLabeling(), "x")

    def test_group_densities(self, paw):
        labels = VertexLabeling()
        labels.add(0, "a")
        labels.add(1, "a")
        labels.add(1, "b")
        densities = true_group_densities(paw, labels, ["a", "b", "c"])
        assert densities == {
            "a": pytest.approx(0.5),
            "b": pytest.approx(0.25),
            "c": 0.0,
        }
