"""Tests for disjoint unions, bridges and dust (the GAB machinery)."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.generators.classic import complete_graph, star_graph
from repro.generators.composite import (
    disjoint_union,
    join_by_bridge,
    with_component_dust,
)
from repro.graph.components import connected_components, is_connected
from repro.graph.graph import Graph


class TestDisjointUnion:
    def test_counts(self):
        a = complete_graph(3)
        b = complete_graph(4)
        union, offsets = disjoint_union([a, b])
        assert union.num_vertices == 7
        assert union.num_edges == 3 + 6
        assert offsets == [0, 3]

    def test_no_cross_edges(self):
        union, offsets = disjoint_union([complete_graph(3), complete_graph(3)])
        assert len(connected_components(union)) == 2

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            disjoint_union([])

    def test_single_graph(self):
        g = complete_graph(3)
        union, offsets = disjoint_union([g])
        assert union.num_edges == 3
        assert offsets == [0]


class TestJoinByBridge:
    def test_gab_construction(self):
        """Exactly the paper's recipe: one extra edge, connected result."""
        a = barabasi_albert(60, 1, rng=0)
        b = barabasi_albert(60, 5, rng=1)
        joined = join_by_bridge(a, b)
        assert joined.num_vertices == 120
        assert joined.num_edges == a.num_edges + b.num_edges + 1
        assert is_connected(joined)

    def test_bridge_attaches_min_degree_vertices(self):
        a = star_graph(3)  # leaves have degree 1
        b = star_graph(4)
        joined = join_by_bridge(a, b)
        bridge_endpoints = [
            (u, v)
            for u, v in joined.edges()
            if u < a.num_vertices <= v
        ]
        # exactly one bridge, between two former leaves
        assert len(bridge_endpoints) == 1
        u, v = bridge_endpoints[0]
        assert joined.degree(u) == 2  # leaf + bridge
        assert joined.degree(v) == 2

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValueError):
            join_by_bridge(Graph(3), complete_graph(3))


class TestComponentDust:
    def test_dust_counts(self):
        core = complete_graph(10)
        dusty = with_component_dust(core, 5, 4, rng=0)
        assert dusty.num_vertices == 10 + 20
        components = connected_components(dusty)
        assert len(components) == 6
        assert len(components[0]) == 10

    def test_dust_components_connected(self):
        dusty = with_component_dust(complete_graph(10), 3, 6, rng=1)
        for component in connected_components(dusty)[1:]:
            assert len(component) == 6

    def test_zero_dust(self):
        core = complete_graph(4)
        dusty = with_component_dust(core, 0, 5, rng=2)
        assert dusty.num_vertices == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            with_component_dust(complete_graph(3), -1, 4)

    def test_tiny_component_rejected(self):
        with pytest.raises(ValueError):
            with_component_dust(complete_graph(3), 2, 1)

    def test_dust_not_a_tree(self):
        """Dust components carry at least one extra (cycle) edge."""
        dusty = with_component_dust(complete_graph(3), 4, 8, rng=3)
        for component in connected_components(dusty)[1:]:
            edges_inside = sum(
                1
                for u, v in dusty.edges()
                if u in set(component) and v in set(component)
            )
            assert edges_inside >= len(component)  # tree would be size-1
