"""Property-based tests: estimator invariants over random graphs and
random walks.

Whatever the graph and however short the walk, the estimators must
produce structurally valid outputs (correct ranges, normalization,
monotonicity).  Hypothesis drives both the topology and the walk seed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.configuration import configuration_model
from repro.graph.components import largest_connected_component
from repro.graph.graph import Graph
from repro.graph.labels import VertexLabeling
from repro.sampling.frontier import FrontierSampler
from repro.sampling.single import SingleRandomWalk
from repro.estimators.assortativity import assortativity_from_trace
from repro.estimators.clustering import global_clustering_from_trace
from repro.estimators.degree import (
    degree_ccdf_from_trace,
    degree_pmf_from_trace,
)
from repro.estimators.vertex_density import (
    vertex_label_densities_from_trace,
)


@st.composite
def walkable_graphs(draw):
    """A connected graph with >= 4 vertices and >= 4 edges."""
    n = draw(st.integers(min_value=8, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    degrees = [rng.randint(1, 5) for _ in range(n)]
    graph = configuration_model(degrees, rng=rng)
    lcc, _ = largest_connected_component(graph)
    if lcc.num_vertices < 4 or lcc.num_edges < 4:
        # fall back to a cycle with chords — always valid
        lcc = Graph(8)
        for v in range(8):
            lcc.add_edge(v, (v + 1) % 8)
        lcc.add_edge(0, 4)
    return lcc


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
    budget=st.integers(min_value=20, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_degree_pmf_is_a_distribution(graph, seed, budget):
    trace = SingleRandomWalk().sample(graph, budget, rng=seed)
    pmf = degree_pmf_from_trace(graph, trace)
    assert sum(pmf.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in pmf.values())
    assert set(pmf) == set(range(max(pmf) + 1))


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_degree_ccdf_monotone_and_bounded(graph, seed):
    trace = FrontierSampler(4).sample(graph, 100, rng=seed)
    ccdf = degree_ccdf_from_trace(graph, trace)
    keys = sorted(ccdf)
    values = [ccdf[k] for k in keys]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    assert all(-1e-12 <= v <= 1 + 1e-12 for v in values)


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_assortativity_in_range(graph, seed):
    trace = SingleRandomWalk().sample(graph, 150, rng=seed)
    value = assortativity_from_trace(graph, trace)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_clustering_in_unit_interval(graph, seed):
    trace = SingleRandomWalk().sample(graph, 150, rng=seed)
    try:
        value = global_clustering_from_trace(graph, trace)
    except ValueError:
        return  # no degree>=2 vertex sampled: estimator undefined
    assert -1e-9 <= value <= 1.0 + 1e-9


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
    label_seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_label_densities_partition_sums_to_one(graph, seed, label_seed):
    """Labels that partition V have estimated densities summing to 1."""
    rng = random.Random(label_seed)
    labels = VertexLabeling()
    names = ["a", "b", "c"]
    for v in graph.vertices():
        labels.add(v, names[rng.randrange(3)])
    trace = FrontierSampler(3).sample(graph, 80, rng=seed)
    densities = vertex_label_densities_from_trace(graph, trace, labels, names)
    assert sum(densities.values()) == pytest.approx(1.0)
    assert all(0.0 <= v <= 1.0 for v in densities.values())


@given(
    graph=walkable_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
    m=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_fs_and_single_same_estimator_support(graph, seed, m):
    """FS and SingleRW traces feed the same estimator machinery: the
    estimated supports are subsets of the true degree range."""
    fs_trace = FrontierSampler(m).sample(graph, 80, rng=seed)
    pmf = degree_pmf_from_trace(graph, fs_trace)
    assert max(pmf) <= graph.max_degree()
