"""Tests for the eq. (5) edge label density estimator."""

import pytest

from repro.graph.labels import EdgeLabeling
from repro.sampling.base import WalkTrace
from repro.sampling.single import SingleRandomWalk
from repro.estimators.edge_density import (
    edge_label_densities_from_trace,
    edge_label_density_from_trace,
)


class TestEdgeDensity:
    def test_no_labeled_edges_rejected(self, paw):
        trace = SingleRandomWalk().sample(paw, 100, rng=0)
        with pytest.raises(ValueError):
            edge_label_density_from_trace(trace, EdgeLabeling(), "x")

    def test_hand_computed(self):
        labels = EdgeLabeling()
        labels.add((0, 1), "a")
        labels.add((1, 2), "b")
        trace = WalkTrace(
            "x", [(0, 1), (1, 2), (2, 0), (0, 1)], [0], 4, 1.0
        )
        # labeled samples: (0,1), (1,2), (0,1) -> 2/3 carry "a"
        assert edge_label_density_from_trace(trace, labels, "a") == (
            pytest.approx(2 / 3)
        )

    def test_orientation_sensitivity(self):
        """Only the sampled orientation is looked up — labeling (0,1)
        does not label (1,0) (E* = E_d semantics)."""
        labels = EdgeLabeling()
        labels.add((0, 1), "a")
        labels.add((1, 0), "b")
        trace = WalkTrace("x", [(1, 0)], [1], 1, 1.0)
        assert edge_label_density_from_trace(trace, labels, "b") == 1.0
        assert edge_label_density_from_trace(trace, labels, "a") == 0.0

    def test_converges_to_truth(self, paw):
        """Label each orientation of each edge; density of one label
        converges to its fraction among labeled orientations."""
        labels = EdgeLabeling()
        directed = list(paw.directed_edges())
        special = {(0, 1), (1, 0)}
        for edge in directed:
            labels.add(edge, "special" if edge in special else "plain")
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 40_000, rng=1
        )
        estimate = edge_label_density_from_trace(trace, labels, "special")
        assert estimate == pytest.approx(len(special) / len(directed), abs=0.02)

    def test_batch_matches_single(self, paw):
        labels = EdgeLabeling()
        for i, edge in enumerate(paw.directed_edges()):
            labels.add(edge, f"l{i % 3}")
        trace = SingleRandomWalk().sample(paw, 3000, rng=2)
        batch = edge_label_densities_from_trace(
            trace, labels, ["l0", "l1", "l2"]
        )
        for label in ("l0", "l1", "l2"):
            assert batch[label] == pytest.approx(
                edge_label_density_from_trace(trace, labels, label)
            )

    def test_batch_no_labels_rejected(self, paw):
        trace = SingleRandomWalk().sample(paw, 100, rng=3)
        with pytest.raises(ValueError):
            edge_label_densities_from_trace(trace, EdgeLabeling(), ["x"])
