"""Smoke + structure tests for the figure drivers (tiny scale)."""

import pytest

from repro.experiments import figures


class TestDescriptiveFigures:
    def test_fig3(self):
        result = figures.fig3(scale=0.05)
        assert result.ccdf
        assert "Figure 3" in result.render()

    def test_fig7(self):
        result = figures.fig7(scale=0.05)
        assert result.ccdf
        assert "Figure 7" in result.render()

    def test_ccdf_values_monotone(self):
        result = figures.fig3(scale=0.05)
        keys = sorted(result.ccdf)
        for a, b in zip(keys, keys[1:]):
            assert result.ccdf[a] >= result.ccdf[b] - 1e-12


class TestErrorFigures:
    def test_fig1_structure(self):
        result = figures.fig1(scale=0.05, runs=4)
        assert set(result.curves) == {"SingleRW", "MultipleRW(m=10)"}
        assert result.metric == "ccdf"

    def test_fig4_runs_on_lcc(self):
        result = figures.fig4(scale=0.05, runs=3, dimension=10)
        assert len(result.curves) == 3

    def test_fig5_full_graph(self):
        result = figures.fig5(scale=0.05, runs=3, dimension=10)
        assert any(name.startswith("FS") for name in result.curves)

    def test_fig8_out_degree(self):
        result = figures.fig8(scale=0.05, runs=3, dimension=10)
        assert result.curves

    def test_fig10_gab(self):
        result = figures.fig10(scale=0.05, runs=3, dimension=10)
        assert result.curves

    def test_fig11_stationary_baselines(self):
        result = figures.fig11(scale=0.05, runs=3, dimension=10)
        assert any("stationary" in name for name in result.curves)

    def test_fig12_pmf_metric_with_analytic(self):
        result = figures.fig12(scale=0.05, runs=3, dimension=10)
        assert result.metric == "pmf"
        assert "analytic RV (eq.4)" in result.curves
        assert "analytic RE (eq.3)" in result.curves

    def test_fig12_without_analytic(self):
        result = figures.fig12(
            scale=0.05, runs=3, dimension=10, include_analytic=False
        )
        assert "analytic RV (eq.4)" not in result.curves

    def test_fig13_hit_ratios(self):
        result = figures.fig13(scale=0.05, runs=3, dimension=10)
        assert any("hit" in name for name in result.curves)


class TestSamplePathFigures:
    def test_fig6(self):
        result = figures.fig6(scale=0.05, dimension=10, num_paths=2)
        assert result.target_degree == 1
        assert len(result.paths["FS"]) == 2

    def test_fig9(self):
        result = figures.fig9(scale=0.05, dimension=10, num_paths=2)
        assert result.target_degree == 10


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig14(scale=0.05, runs=4, dimension=10, top_groups=10)

    def test_structure(self, result):
        assert result.group_truth
        assert len(result.curves) == 3

    def test_groups_scored_have_positive_truth(self, result):
        assert all(v > 0 for v in result.group_truth.values())

    def test_mean_error(self, result):
        for method in result.curves:
            assert result.mean_error(method) > 0

    def test_render(self, result):
        text = result.render()
        assert "Figure 14" in text
        assert "theta_l" in text
