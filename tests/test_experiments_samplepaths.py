"""Tests for the sample-path experiment (Figures 6 and 9)."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.experiments.samplepaths import (
    _interleave,
    default_checkpoints,
    sample_paths,
)
from repro.metrics.exact import true_degree_pmf


class TestCheckpoints:
    def test_log_spacing(self):
        marks = default_checkpoints(1000, count=5)
        assert marks[0] == 1
        assert marks[-1] == 1000
        assert marks == sorted(set(marks))

    def test_small_total(self):
        marks = default_checkpoints(3)
        assert marks[-1] == 3

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            default_checkpoints(0)


class TestInterleave:
    def test_round_robin(self):
        merged = _interleave([[("a", 1), ("a", 2)], [("b", 1), ("b", 2)]])
        assert merged == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_uneven_lengths(self):
        merged = _interleave([[1, 2, 3], [4]])
        assert merged == [1, 4, 2, 3]

    def test_empty(self):
        assert _interleave([[], []]) == []


class TestSamplePaths:
    @pytest.fixture(scope="class")
    def result(self):
        graph = barabasi_albert(300, 2, rng=0)
        pmf = true_degree_pmf(graph)
        return sample_paths(
            graph,
            target_degree=2,
            true_value=pmf[2],
            dimension=10,
            total_steps=2000,
            num_paths=3,
            root_seed=1,
        )

    def test_methods_present(self, result):
        assert set(result.paths) == {"FS", "SingleRW", "MultipleRW"}

    def test_path_shapes(self, result):
        for paths in result.paths.values():
            assert len(paths) == 3
            for path in paths:
                assert len(path) == len(result.checkpoints)

    def test_estimates_in_unit_interval(self, result):
        for paths in result.paths.values():
            for path in paths:
                assert all(0.0 <= value <= 1.0 for value in path)

    def test_fs_converges_to_truth(self, result):
        """On a connected BA graph all FS paths approach theta_2."""
        for final in result.final_values("FS"):
            assert final == pytest.approx(result.true_value, abs=0.1)

    def test_render(self, result):
        text = result.render()
        assert "FS" in text
        assert "steps" in text
