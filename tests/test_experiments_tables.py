"""Smoke + structure tests for the Table 1-4 drivers (tiny scale)."""

import pytest

from repro.experiments.tables import table1, table2, table3, table4


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1(scale=0.05)

    def test_all_datasets_summarized(self, result):
        names = [s.name for s in result.summaries]
        assert "flickr-like" in names
        assert "gab" in names
        assert len(names) == 6

    def test_render(self, result):
        text = result.render()
        assert "Table 1" in text
        assert "flickr-like" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.datasets.registry import gab, internet_rlt_like

        return table2(
            scale=0.05,
            runs=6,
            dimension=10,
            datasets=[internet_rlt_like(0.05), gab(0.05)],
        )

    def test_rows(self, result):
        assert len(result.rows) == 2
        for row in result.rows:
            assert set(row.bias) == {"FS", "MultipleRW", "SingleRW"}
            assert set(row.error) == {"FS", "MultipleRW", "SingleRW"}

    def test_errors_positive(self, result):
        for row in result.rows:
            for value in row.error.values():
                assert value >= 0 or value != value  # allow NaN truth

    def test_render(self, result):
        text = result.render()
        assert "Table 2" in text
        assert "bias" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.datasets.registry import flickr_like

        return table3(
            scale=0.05, runs=6, dimension=10, datasets=[flickr_like(0.05)]
        )

    def test_row_structure(self, result):
        row = result.rows[0]
        assert row.true_c > 0
        for method in ("FS", "MultipleRW", "SingleRW"):
            assert 0 <= row.mean_estimate[method] <= 1
            assert row.error[method] >= 0

    def test_render(self, result):
        assert "Table 3" in result.render()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4(graph_size=40, num_walkers=4, mc_runs=2000)

    def test_rows(self, result):
        assert len(result.rows) == 3
        for row in result.rows:
            assert set(row.gaps) == {"FS", "MRW", "SRW"}

    def test_gaps_non_negative(self, result):
        """The metric is an absolute relative difference: >= 0, and it
        can exceed 1 for oversampled edges (the paper reports 257%)."""
        for row in result.rows:
            for gap in row.gaps.values():
                assert gap >= 0.0

    def test_render(self, result):
        text = result.render()
        assert "Table 4" in text
        assert "%" in text
