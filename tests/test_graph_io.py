"""Tests for edge-list I/O."""

import pytest

from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_undirected(self, tmp_path, house):
        path = tmp_path / "house.txt"
        write_edge_list(house, path)
        loaded = read_edge_list(path, num_vertices=house.num_vertices)
        assert sorted(loaded.edges()) == sorted(house.edges())

    def test_directed(self, tmp_path, small_digraph):
        path = tmp_path / "digraph.txt"
        write_edge_list(small_digraph, path)
        loaded = read_edge_list(
            path, directed=True, num_vertices=small_digraph.num_vertices
        )
        assert sorted(loaded.edges()) == sorted(small_digraph.edges())

    def test_header_written(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, path, header="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert "# vertices=3 edges=3" in text


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n   \n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 weight=3\n")
        graph = read_edge_list(path)
        assert graph.has_edge(0, 1)

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-integer"):
            read_edge_list(path)

    def test_size_inferred(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 10


class TestCsrNpyPersistence:
    """mmap-able binary CSR files: <stem>.indptr.npy + <stem>.indices.npy."""

    def test_round_trip_from_graph(self, tmp_path, house):
        from repro.graph.io import load_csr_npy, save_csr_npy

        indptr_path, indices_path = save_csr_npy(house, tmp_path / "house")
        assert indptr_path.name == "house.indptr.npy"
        assert indices_path.name == "house.indices.npy"
        loaded = load_csr_npy(tmp_path / "house")
        assert loaded.num_vertices == house.num_vertices
        assert loaded.num_edges == house.num_edges
        assert sorted(loaded.edges()) == sorted(house.edges())
        # neighbor order preserved, so walks are reproducible
        for v in house.vertices():
            assert loaded.neighbors(v).tolist() == house.neighbors(v)

    def test_round_trip_from_csr(self, tmp_path, house):
        from repro.graph.csr import get_csr
        from repro.graph.io import load_csr_npy, save_csr_npy

        csr = get_csr(house)
        save_csr_npy(csr, tmp_path / "g")
        loaded = load_csr_npy(tmp_path / "g", mmap=False)
        assert (loaded.indptr == csr.indptr).all()
        assert (loaded.indices == csr.indices).all()

    def test_mmap_stem_recorded_only_for_mmap_loads(self, tmp_path, house):
        """An mmap=False load is an independent in-memory copy; it must
        not claim to be backed by the files (the multi-process sharing
        layer would otherwise hand workers a stem that can diverge
        from the arrays in hand)."""
        from repro.graph.csr import get_csr
        from repro.graph.io import load_csr_npy, save_csr_npy

        save_csr_npy(get_csr(house), tmp_path / "g")
        assert load_csr_npy(tmp_path / "g", mmap=False).mmap_stem is None
        mapped = load_csr_npy(tmp_path / "g", mmap=True)
        assert mapped.mmap_stem == str((tmp_path / "g").resolve())

    def test_shared_csr_stem_spills_and_reuses(self, tmp_path, house):
        import shutil

        from repro.graph.csr import get_csr
        from repro.graph.io import (
            load_csr_npy,
            save_csr_npy,
            shared_csr_stem,
        )

        csr = get_csr(house)
        stem, owned = shared_csr_stem(csr)  # in-memory graph: spilled
        assert owned is not None and owned.exists()
        respilled = load_csr_npy(stem, mmap=False)
        assert (respilled.indptr == csr.indptr).all()
        shutil.rmtree(owned)

        save_csr_npy(csr, tmp_path / "g")
        mapped = load_csr_npy(tmp_path / "g", mmap=True)
        stem, owned = shared_csr_stem(mapped)  # file-backed: in place
        assert owned is None
        assert stem == tmp_path / "g"

    def test_mmap_arrays_are_read_only_file_views(self, tmp_path, house):
        import mmap as mmap_module

        import numpy as np

        from repro.graph.io import load_csr_npy, save_csr_npy

        save_csr_npy(house, tmp_path / "g")
        loaded = load_csr_npy(tmp_path / "g", mmap=True)
        for array in (loaded.indptr, loaded.indices):
            assert array.dtype == np.int64
            # backed by the file, not a heap copy
            assert not array.flags.owndata
            base = array
            while isinstance(base, np.ndarray) and base.base is not None:
                base = base.base
            assert isinstance(base, (np.memmap, mmap_module.mmap))
            assert not array.flags.writeable
            with pytest.raises((ValueError, OSError)):
                array[0] = 99

    def test_mmap_graph_is_walkable(self, tmp_path):
        from repro.generators.ba import barabasi_albert
        from repro.graph.io import load_csr_npy, save_csr_npy
        from repro.sampling import FrontierSampler

        graph = barabasi_albert(500, 3, rng=1)
        save_csr_npy(graph, tmp_path / "ba")
        mmapped = load_csr_npy(tmp_path / "ba")
        trace = FrontierSampler(8).sample(mmapped, 300, rng=7)
        reference = FrontierSampler(8, backend="csr").sample(
            graph, 300, rng=7
        )
        assert trace.edges == reference.edges

    def test_missing_files_raise(self, tmp_path):
        from repro.graph.io import load_csr_npy

        with pytest.raises(FileNotFoundError):
            load_csr_npy(tmp_path / "nope")

    def test_validate_flag_catches_corrupt_indices(self, tmp_path, house):
        import numpy as np

        from repro.graph.io import load_csr_npy, save_csr_npy

        indptr_path, indices_path = save_csr_npy(house, tmp_path / "g")
        corrupt = np.load(indices_path)
        corrupt[0] = 10_000  # out-of-range vertex id
        np.save(indices_path, corrupt)
        # in-memory loads validate by default
        with pytest.raises(ValueError, match="out-of-range"):
            load_csr_npy(tmp_path / "g", mmap=False)
        # mmap loads skip the scan by default but can opt in
        load_csr_npy(tmp_path / "g", mmap=True)
        with pytest.raises(ValueError, match="out-of-range"):
            load_csr_npy(tmp_path / "g", mmap=True, validate=True)
