"""Tests for edge-list I/O."""

import pytest

from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_undirected(self, tmp_path, house):
        path = tmp_path / "house.txt"
        write_edge_list(house, path)
        loaded = read_edge_list(path, num_vertices=house.num_vertices)
        assert sorted(loaded.edges()) == sorted(house.edges())

    def test_directed(self, tmp_path, small_digraph):
        path = tmp_path / "digraph.txt"
        write_edge_list(small_digraph, path)
        loaded = read_edge_list(
            path, directed=True, num_vertices=small_digraph.num_vertices
        )
        assert sorted(loaded.edges()) == sorted(small_digraph.edges())

    def test_header_written(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, path, header="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert "# vertices=3 edges=3" in text


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n   \n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 weight=3\n")
        graph = read_edge_list(path)
        assert graph.has_edge(0, 1)

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-integer"):
            read_edge_list(path)

    def test_size_inferred(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 10
