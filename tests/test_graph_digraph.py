"""Tests for repro.graph.digraph.DiGraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-2)

    def test_from_edges(self, small_digraph):
        assert small_digraph.num_vertices == 5
        assert small_digraph.num_edges == 6

    def test_add_vertex(self):
        graph = DiGraph(1)
        assert graph.add_vertex() == 1


class TestEdges:
    def test_directedness(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_duplicate_collapses(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        assert graph.add_edge(0, 1) is False
        assert graph.num_edges == 1

    def test_reciprocal_pair_counts_twice(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(1).add_edge(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            DiGraph(1).add_edge(0, 1)

    def test_edges_iteration(self, small_digraph):
        edges = list(small_digraph.edges())
        assert len(edges) == small_digraph.num_edges
        assert (3, 0) in edges


class TestDegrees:
    def test_in_out_degree(self, small_digraph):
        assert small_digraph.out_degree(0) == 2
        assert small_digraph.in_degree(0) == 2
        assert small_digraph.out_degree(3) == 2
        assert small_digraph.in_degree(3) == 0
        assert small_digraph.in_degree(4) == 1

    def test_degree_sequences(self, small_digraph):
        assert sum(small_digraph.out_degrees()) == small_digraph.num_edges
        assert sum(small_digraph.in_degrees()) == small_digraph.num_edges

    def test_neighbors(self, small_digraph):
        assert sorted(small_digraph.out_neighbors(0)) == [1, 2]
        assert sorted(small_digraph.in_neighbors(0)) == [2, 3]

    def test_repr(self, small_digraph):
        assert "num_edges=6" in repr(small_digraph)


class TestSymmetrization:
    def test_reciprocal_pair_collapses(self):
        graph = DiGraph.from_edges([(0, 1), (1, 0)])
        symmetric = graph.to_symmetric()
        assert symmetric.num_edges == 1

    def test_section2_definition(self, small_digraph):
        """E = union of both orientations of every directed edge."""
        symmetric = small_digraph.to_symmetric()
        for u, v in small_digraph.edges():
            assert symmetric.has_edge(u, v)
        # (0,2) and (2,0) both exist directed -> one undirected edge
        assert symmetric.num_edges == 5

    def test_symmetric_degrees(self, small_digraph):
        symmetric = small_digraph.to_symmetric()
        # vertex 0 touches 1, 2, 3
        assert symmetric.degree(0) == 3


@st.composite
def arc_lists(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=60,
        )
    )
    return n, arcs


@given(data=arc_lists())
@settings(max_examples=100)
def test_degree_sums_equal_edge_count(data):
    n, arcs = data
    graph = DiGraph(n)
    for u, v in arcs:
        graph.add_edge(u, v)
    assert sum(graph.out_degrees()) == graph.num_edges
    assert sum(graph.in_degrees()) == graph.num_edges


@given(data=arc_lists())
@settings(max_examples=100)
def test_symmetrization_covers_both_orientations(data):
    n, arcs = data
    graph = DiGraph(n)
    for u, v in arcs:
        graph.add_edge(u, v)
    symmetric = graph.to_symmetric()
    for u, v in graph.edges():
        assert symmetric.has_edge(u, v)
        assert symmetric.has_edge(v, u)
    # every undirected edge is backed by at least one arc
    for u, v in symmetric.edges():
        assert graph.has_edge(u, v) or graph.has_edge(v, u)
