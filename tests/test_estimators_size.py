"""Tests for RW-based graph size estimation."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.generators.classic import complete_graph
from repro.sampling.base import WalkTrace
from repro.sampling.frontier import FrontierSampler
from repro.sampling.single import SingleRandomWalk
from repro.estimators.size import (
    estimate_num_edges,
    estimate_num_vertices,
    estimate_volume,
)


class TestValidation:
    def test_too_few_samples(self, paw):
        trace = WalkTrace("x", [(0, 1)], [0], 1, 1.0)
        with pytest.raises(ValueError):
            estimate_num_vertices(paw, trace)

    def test_no_collisions_rejected(self):
        """A collision-free trace cannot calibrate the scale."""
        graph = barabasi_albert(5000, 2, rng=0)
        # 3 steps on a 5000-vertex graph: collisions essentially never.
        trace = SingleRandomWalk().sample(graph, 4, rng=1)
        if len(set(trace.visited_vertices)) == len(trace.visited_vertices):
            with pytest.raises(ValueError):
                estimate_num_vertices(graph, trace)


class TestAccuracy:
    def test_vertex_count_on_ba(self):
        graph = barabasi_albert(400, 3, rng=2)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 2500, rng=3
        )
        estimate = estimate_num_vertices(graph, trace)
        assert estimate == pytest.approx(graph.num_vertices, rel=0.25)

    def test_volume_on_ba(self):
        graph = barabasi_albert(400, 3, rng=4)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 2500, rng=5
        )
        assert estimate_volume(graph, trace) == pytest.approx(
            graph.volume(), rel=0.25
        )

    def test_edge_count_is_half_volume(self):
        graph = barabasi_albert(300, 2, rng=6)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 2000, rng=7
        )
        assert estimate_num_edges(graph, trace) == pytest.approx(
            estimate_volume(graph, trace) / 2
        )

    def test_works_with_fs_trace(self):
        """FS samples edges uniformly in steady state, so the same
        collision estimator applies to its traces."""
        graph = barabasi_albert(400, 3, rng=8)
        trace = FrontierSampler(16).sample(graph, 2500, rng=9)
        estimate = estimate_num_vertices(graph, trace)
        assert estimate == pytest.approx(graph.num_vertices, rel=0.3)

    def test_unbiased_over_replications(self):
        graph = barabasi_albert(250, 3, rng=10)
        estimates = []
        for seed in range(30):
            trace = SingleRandomWalk(seeding="stationary").sample(
                graph, 1500, rng=seed
            )
            estimates.append(estimate_num_vertices(graph, trace))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(graph.num_vertices, rel=0.12)

    def test_complete_graph(self):
        graph = complete_graph(30)
        trace = SingleRandomWalk().sample(graph, 3000, rng=11)
        assert estimate_num_vertices(graph, trace) == pytest.approx(
            30, rel=0.15
        )
