"""Tests for the degree-error experiment workhorse."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.experiments.degree_errors import degree_error_experiment
from repro.sampling.frontier import FrontierSampler
from repro.sampling.independent import RandomVertexSampler
from repro.sampling.single import SingleRandomWalk


@pytest.fixture(scope="module")
def small_graph():
    return barabasi_albert(200, 2, rng=0)


@pytest.fixture(scope="module")
def result(small_graph):
    return degree_error_experiment(
        small_graph,
        {"FS": FrontierSampler(10), "SingleRW": SingleRandomWalk()},
        budget=100,
        runs=8,
        root_seed=1,
        metric="ccdf",
        title="test experiment",
    )


class TestExperiment:
    def test_curves_per_method(self, result):
        assert set(result.curves) == {"FS", "SingleRW"}

    def test_curve_support_subset_of_truth(self, result):
        positive = {k for k, v in result.truth.items() if v > 0}
        for curve in result.curves.values():
            assert set(curve) <= positive

    def test_metric_validation(self, small_graph):
        with pytest.raises(ValueError):
            degree_error_experiment(
                small_graph, {}, budget=10, runs=1, metric="nope"
            )

    def test_vertex_sampler_supported(self, small_graph):
        result = degree_error_experiment(
            small_graph,
            {"RV": RandomVertexSampler()},
            budget=100,
            runs=4,
            metric="pmf",
        )
        assert "RV" in result.curves
        assert result.curves["RV"]

    def test_pmf_metric_uses_pmf_truth(self, small_graph):
        result = degree_error_experiment(
            small_graph,
            {"RV": RandomVertexSampler()},
            budget=50,
            runs=2,
            metric="pmf",
        )
        # pmf truth sums to 1; ccdf truth starts at 1 for degree 0
        assert sum(result.truth.values()) == pytest.approx(1.0)

    def test_errors_decrease_with_budget(self, small_graph):
        """More budget, smaller mean CNMSE — basic consistency."""
        small = degree_error_experiment(
            small_graph,
            {"SingleRW": SingleRandomWalk()},
            budget=30,
            runs=12,
            root_seed=3,
        )
        large = degree_error_experiment(
            small_graph,
            {"SingleRW": SingleRandomWalk()},
            budget=3000,
            runs=12,
            root_seed=3,
        )
        assert large.mean_error("SingleRW") < small.mean_error("SingleRW")


class TestResultHelpers:
    def test_degrees_log_spaced_subset(self, result):
        degrees = result.degrees(max_points=5)
        support = [k for k, v in sorted(result.truth.items()) if v > 0]
        assert set(degrees) <= set(support)
        assert degrees[-1] == support[-1]
        assert len(degrees) <= 7

    def test_render_contains_methods(self, result):
        text = result.render()
        assert "FS" in text
        assert "SingleRW" in text
        assert "CNMSE" in text

    def test_mean_error(self, result):
        value = result.mean_error("FS")
        assert value > 0

    def test_mean_error_unknown_method(self, result):
        with pytest.raises(KeyError):
            result.mean_error("nope")

    def test_tail_mean_error(self, result):
        tail = result.tail_mean_error("FS", result.average_degree)
        assert tail > 0

    def test_tail_threshold_too_high_rejected(self, result):
        with pytest.raises(ValueError):
            result.tail_mean_error("FS", 10_000_000)


class TestBackendThreading:
    def test_csr_backend_runs_end_to_end(self, small_graph):
        """backend="csr" pins the fast path for the whole experiment."""
        from repro.sampling.base import get_default_backend

        result = degree_error_experiment(
            small_graph,
            {"FS": FrontierSampler(10), "SingleRW": SingleRandomWalk()},
            budget=100,
            runs=4,
            root_seed=1,
            metric="ccdf",
            backend="csr",
        )
        assert set(result.curves) == {"FS", "SingleRW"}
        assert all(result.curves[m] for m in result.curves)
        assert get_default_backend() == "list"  # restored afterwards

    def test_backends_agree_statistically(self, small_graph):
        """Same chain law on both backends: comparable mean errors."""
        samplers = {"FS": FrontierSampler(10)}
        results = {
            backend: degree_error_experiment(
                small_graph,
                samplers,
                budget=400,
                runs=12,
                root_seed=3,
                backend=backend,
            ).mean_error("FS")
            for backend in ("list", "csr")
        }
        assert results["csr"] == pytest.approx(results["list"], rel=1.0)

    def test_invalid_backend_rejected(self, small_graph):
        with pytest.raises(ValueError):
            degree_error_experiment(
                small_graph,
                {"FS": FrontierSampler(10)},
                budget=100,
                runs=2,
                backend="gpu",
            )


class TestBudgetSweep:
    """MSE-vs-budget curves from one resumed session per replicate."""

    def test_final_budget_matches_one_shot_experiment(self, sweep_graph=None):
        from repro.experiments.degree_errors import (
            degree_error_budget_sweep,
            degree_error_experiment,
        )
        from repro.generators.ba import barabasi_albert
        from repro.sampling import (
            FrontierSampler,
            RandomVertexSampler,
            SingleRandomWalk,
        )

        graph = barabasi_albert(600, 2, rng=4)
        samplers = {
            "FS": FrontierSampler(8),
            "SingleRW": SingleRandomWalk(),
            "RV": RandomVertexSampler(),
        }
        sweep = degree_error_budget_sweep(
            graph, samplers, [200, 800], runs=4, backend="csr"
        )
        single = degree_error_experiment(
            graph, samplers, 800, runs=4, backend="csr"
        )
        for method in samplers:
            assert sweep.at(800).mean_error(method) == pytest.approx(
                single.mean_error(method), abs=1e-9
            )

    def test_error_curve_shape_and_render(self):
        from repro.experiments.degree_errors import (
            degree_error_budget_sweep,
        )
        from repro.generators.ba import barabasi_albert
        from repro.sampling import FrontierSampler

        graph = barabasi_albert(500, 2, rng=4)
        budgets = [100, 400, 1600]
        sweep = degree_error_budget_sweep(
            graph, {"FS": FrontierSampler(8)}, budgets, runs=6
        )
        curve = sweep.mean_error_curve("FS")
        assert list(curve) == [float(b) for b in budgets]
        # more budget, better estimate (the paper's qualitative claim)
        assert curve[1600.0] < curve[100.0]
        rendered = sweep.render()
        assert "FS" in rendered and "one resumed session" in rendered

    def test_invalid_arguments_rejected(self):
        from repro.experiments.degree_errors import (
            degree_error_budget_sweep,
        )
        from repro.generators.ba import barabasi_albert
        from repro.sampling import SingleRandomWalk

        graph = barabasi_albert(100, 2, rng=4)
        samplers = {"SingleRW": SingleRandomWalk()}
        with pytest.raises(ValueError, match="metric"):
            degree_error_budget_sweep(
                graph, samplers, [10], 1, metric="median"
            )
        with pytest.raises(ValueError, match="ascending"):
            degree_error_budget_sweep(graph, samplers, [100, 50], 1)
        with pytest.raises(ValueError, match="ascending"):
            degree_error_budget_sweep(graph, samplers, [], 1)
