"""Thread-stress: 16 concurrent sessions over one shared CSRGraph.

The parity suites prove executors agree under tame scheduling; this
test is the hostile half of the contract.  Sixteen sessions of mixed
sampler families all hammer the *same* ``CSRGraph`` from a thread
pool for repeated rounds — maximal interleaving of kernel calls (the
GIL is released inside every native batch), RNG draws, and lazy
caches — and after every round each session's cumulative trace
fingerprint must equal the one a solo, single-threaded run of the
same seed produces.  Any shared mutable scratch (a module global, a
cache mutated non-atomically, hidden kernel state) shows up as a
fingerprint mismatch or a deadlock; a ``faulthandler`` watchdog turns
the deadlock case into a stack dump instead of a hung CI job.
"""

from __future__ import annotations

import faulthandler
import hashlib
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.sampling import (
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    ShardedFrontierSampler,
    SingleRandomWalk,
)

SESSIONS = 16
ROUNDS = 4
CHUNK = 300
#: Generous wall-clock bound: the workload is ~small; a healthy run
#: finishes in seconds, so hitting this means a deadlock/livelock.
WATCHDOG_SECONDS = 300.0

#: Mixed sampler families, cycled across the 16 sessions.  The
#: ShardedFrontierSampler runs its shard tasks inline *inside* the
#: stress threads — exactly the path that would race if the inline
#: task runner still pinned module globals.
FACTORIES = (
    lambda: SingleRandomWalk(),
    lambda: MetropolisHastingsWalk(),
    lambda: MultipleRandomWalk(4),
    lambda: FrontierSampler(8),
    lambda: ShardedFrontierSampler(4, use_processes=False, procs=1),
)


def _fingerprint(trace) -> str:
    digest = hashlib.sha256()
    for name in (
        "step_sources",
        "step_targets",
        "step_walkers",
        "visited_array",
        "step_times",
    ):
        part = getattr(trace, name, None)
        if part is None:
            continue
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(part).tobytes())
    return digest.hexdigest()


def _start_session(graph, index: int):
    sampler = FACTORIES[index % len(FACTORIES)]()
    return sampler.start(graph, rng=1000 + index)


def _advance_and_fingerprint(session) -> str:
    session.advance(CHUNK)
    return _fingerprint(session.trace())


def _close(session) -> None:
    closer = getattr(session, "close", None)
    if closer is not None:
        closer()


def test_concurrent_sessions_reproduce_solo_fingerprints():
    graph = get_csr(barabasi_albert(3000, 3, rng=7))

    # Solo reference: each session advanced round by round, serially,
    # in a single thread — the ground truth fingerprint per round.
    expected = []
    for index in range(SESSIONS):
        session = _start_session(graph, index)
        try:
            expected.append(
                [_advance_and_fingerprint(session) for _ in range(ROUNDS)]
            )
        finally:
            _close(session)

    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    sessions = []
    try:
        sessions = [
            _start_session(graph, index) for index in range(SESSIONS)
        ]
        with ThreadPoolExecutor(max_workers=SESSIONS) as pool:
            for round_index in range(ROUNDS):
                futures = [
                    pool.submit(_advance_and_fingerprint, session)
                    for session in sessions
                ]
                got = [future.result() for future in futures]
                for index in range(SESSIONS):
                    assert got[index] == expected[index][round_index], (
                        f"session {index} diverged from its solo run in"
                        f" round {round_index}"
                    )
    finally:
        faulthandler.cancel_dump_traceback_later()
        for session in sessions:
            _close(session)
