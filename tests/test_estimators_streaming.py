"""Streaming accumulators vs their batch twins (≤1e-12 parity).

Every accumulator consumes the same walk split into irregular
increments (via ``session.take_trace()``) and must agree with the
batch ``*_from_trace`` estimator applied to the full trace, on both
backends.
"""

from __future__ import annotations

import pytest

from repro.estimators import (
    StreamingAverageDegree,
    StreamingDegreePMF,
    StreamingEdgeDensity,
    StreamingEdgeFunctional,
    StreamingGraphSize,
    StreamingVertexDensity,
    StreamingVertexFunctional,
    degree_ccdf_from_trace,
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
    edge_functional_from_trace,
    edge_label_densities_from_trace,
    estimate_num_edges,
    estimate_num_vertices,
    vertex_functional_from_trace,
    vertex_label_densities_from_trace,
)
from repro.generators.ba import barabasi_albert
from repro.graph.labels import EdgeLabeling, VertexLabeling
from repro.sampling import (
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    RandomVertexSampler,
    SingleRandomWalk,
)

BUDGET = 4_000
CHECKPOINTS = (137, 950, 2_400, BUDGET)
TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(2_000, 3, rng=42)


@pytest.fixture(scope="module")
def vertex_labeling(graph):
    labeling = VertexLabeling()
    for v in graph.vertices():
        labeling.add(v, "even" if v % 2 == 0 else "odd")
    return labeling


@pytest.fixture(scope="module")
def edge_labeling(graph):
    labeling = EdgeLabeling()
    for u, v in graph.edges():
        label = "near" if abs(u - v) < 100 else "far"
        labeling.add((u, v), label)
        labeling.add((v, u), label)
    return labeling


def run_streamed(graph, sampler, accumulators, rng=7):
    """Advance one session through the checkpoints, draining into
    every accumulator; returns the identical-stream full trace (from a
    twin session with the same chunk boundaries, which matters for
    MultipleRW's shared-stream walkers)."""
    session = sampler.start(graph, rng=rng)
    reference = sampler.start(graph, rng=rng)
    for budget in CHECKPOINTS:
        session.advance_budget(budget)
        reference.advance_budget(budget)
        increment = session.take_trace()
        for accumulator in accumulators:
            accumulator.update(increment)
    return reference.trace()


SAMPLERS = [
    SingleRandomWalk(),
    MetropolisHastingsWalk(),
    FrontierSampler(16),
    FrontierSampler(16, backend="csr"),
    MetropolisHastingsWalk(backend="csr"),
    MultipleRandomWalk(8, backend="csr"),
]


class TestWalkTraceParity:
    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_degree_pmf_and_ccdf(self, graph, sampler):
        accumulator = StreamingDegreePMF(graph)
        full = run_streamed(graph, sampler, [accumulator])
        batch = degree_pmf_from_trace(graph, full)
        streamed = accumulator.estimate()
        assert set(batch) == set(streamed)
        assert all(
            abs(batch[k] - streamed[k]) <= TOLERANCE for k in batch
        )
        batch_ccdf = degree_ccdf_from_trace(graph, full)
        streamed_ccdf = accumulator.ccdf()
        assert all(
            abs(batch_ccdf[k] - streamed_ccdf[k]) <= 10 * TOLERANCE
            for k in batch_ccdf
        )

    @pytest.mark.parametrize("sampler", SAMPLERS[:3], ids=lambda s: repr(s))
    def test_degree_relabeling(self, graph, sampler):
        """``degree_of`` relabels the histogram, not the reweighting."""
        relabel = lambda v: min(graph.degree(v), 10)  # noqa: E731
        accumulator = StreamingDegreePMF(graph, degree_of=relabel)
        full = run_streamed(graph, sampler, [accumulator])
        batch = degree_pmf_from_trace(graph, full, degree_of=relabel)
        streamed = accumulator.estimate()
        assert set(batch) == set(streamed)
        assert all(
            abs(batch[k] - streamed[k]) <= TOLERANCE for k in batch
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_average_degree_eq7(self, graph, sampler):
        accumulator = StreamingAverageDegree(graph)
        full = run_streamed(graph, sampler, [accumulator])
        batch = vertex_functional_from_trace(
            graph, full, lambda v: float(graph.degree(v))
        )
        assert accumulator.estimate() == pytest.approx(
            batch, abs=TOLERANCE
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_vertex_functional(self, graph, sampler):
        g = lambda v: (v % 13) * 0.77  # noqa: E731
        accumulator = StreamingVertexFunctional(graph, g)
        full = run_streamed(graph, sampler, [accumulator])
        batch = vertex_functional_from_trace(graph, full, g)
        assert accumulator.estimate() == pytest.approx(
            batch, abs=TOLERANCE
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_vertex_label_density(self, graph, vertex_labeling, sampler):
        labels = ["even", "odd"]
        accumulator = StreamingVertexDensity(graph, vertex_labeling, labels)
        full = run_streamed(graph, sampler, [accumulator])
        batch = vertex_label_densities_from_trace(
            graph, full, vertex_labeling, labels
        )
        streamed = accumulator.estimate()
        assert all(
            abs(batch[label] - streamed[label]) <= TOLERANCE
            for label in labels
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_edge_label_density_exact(self, graph, edge_labeling, sampler):
        labels = ["near", "far"]
        accumulator = StreamingEdgeDensity(edge_labeling, labels)
        full = run_streamed(graph, sampler, [accumulator])
        batch = edge_label_densities_from_trace(full, edge_labeling, labels)
        # integer counting: exact, not just 1e-12
        assert accumulator.estimate() == batch

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_edge_functional_with_membership(self, graph, sampler):
        f = lambda u, v: abs(u - v) ** 0.5  # noqa: E731
        member = lambda u, v: (u + v) % 2 == 0  # noqa: E731
        accumulator = StreamingEdgeFunctional(f, membership=member)
        full = run_streamed(graph, sampler, [accumulator])
        batch = edge_functional_from_trace(full, f, membership=member)
        assert accumulator.estimate() == pytest.approx(
            batch, abs=100 * TOLERANCE
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: repr(s))
    def test_graph_size(self, graph, sampler):
        accumulator = StreamingGraphSize(graph)
        full = run_streamed(graph, sampler, [accumulator])
        assert accumulator.num_vertices() == pytest.approx(
            estimate_num_vertices(graph, full), rel=1e-12
        )
        assert accumulator.num_edges() == pytest.approx(
            estimate_num_edges(graph, full), rel=1e-12
        )
        assert accumulator.estimate() == accumulator.num_vertices()


class TestVertexTraceMode:
    def test_uniform_vertex_samples_use_plain_counts(self, graph):
        sampler = RandomVertexSampler(0.9)
        accumulator = StreamingDegreePMF(graph)
        full = run_streamed(graph, sampler, [accumulator])
        batch = degree_pmf_from_vertices(full.vertices, graph.degree)
        streamed = accumulator.estimate()
        assert set(batch) == set(streamed)
        assert all(
            abs(batch[k] - streamed[k]) <= TOLERANCE for k in batch
        )

    def test_mixing_laws_raises(self, graph):
        accumulator = StreamingDegreePMF(graph)
        accumulator.update(SingleRandomWalk().sample(graph, 50, rng=1))
        with pytest.raises(TypeError, match="mix"):
            accumulator.update(
                RandomVertexSampler().sample(graph, 50, rng=1)
            )

    def test_non_degree_accumulators_reject_vertex_traces(self, graph):
        trace = RandomVertexSampler().sample(graph, 50, rng=1)
        with pytest.raises(TypeError):
            StreamingAverageDegree(graph).update(trace)


class TestProtocol:
    def test_estimate_requires_samples(self, graph):
        with pytest.raises(ValueError):
            StreamingDegreePMF(graph).estimate()
        with pytest.raises(ValueError):
            StreamingAverageDegree(graph).estimate()
        with pytest.raises(ValueError):
            StreamingGraphSize(graph).estimate()

    def test_empty_increment_is_a_noop(self, graph):
        sampler = FrontierSampler(8, backend="csr")
        session = sampler.start(graph, rng=3)
        accumulator = StreamingAverageDegree(graph)
        accumulator.update(session.take_trace())  # zero steps so far
        with pytest.raises(ValueError):
            accumulator.estimate()
        session.advance(100)
        accumulator.update(session.take_trace())
        accumulator.update(session.take_trace())  # drained: another noop
        assert accumulator._steps == 100

    def test_update_returns_self_for_chaining(self, graph):
        trace = SingleRandomWalk().sample(graph, 60, rng=2)
        accumulator = StreamingAverageDegree(graph)
        assert accumulator.update(trace) is accumulator

    def test_rejects_unknown_increment_type(self, graph):
        with pytest.raises(TypeError):
            StreamingAverageDegree(graph).update([1, 2, 3])

    def test_accumulator_checkpoint_drops_graph(self, graph):
        import pickle

        accumulator = StreamingDegreePMF(graph)
        accumulator.update(SingleRandomWalk().sample(graph, 80, rng=2))
        clone = pickle.loads(pickle.dumps(accumulator))
        assert clone.graph is None
        clone.attach(graph)
        assert clone.estimate() == accumulator.estimate()
