"""Tests for FrontierSampler — Algorithm 1's invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.classic import complete_graph, cycle_graph
from repro.graph.graph import Graph
from repro.sampling.frontier import FrontierSampler


class TestValidation:
    def test_dimension_positive(self):
        with pytest.raises(ValueError):
            FrontierSampler(0)

    def test_bad_seeding(self):
        with pytest.raises(ValueError):
            FrontierSampler(2, seeding="nope")

    def test_bad_walker_selection(self):
        with pytest.raises(ValueError):
            FrontierSampler(2, walker_selection="random")

    def test_negative_seed_cost(self):
        with pytest.raises(ValueError):
            FrontierSampler(2, seed_cost=-1)

    def test_sample_from_wrong_seed_count(self, house):
        with pytest.raises(ValueError):
            FrontierSampler(3).sample_from(house, [0, 1], 10, rng=0)

    def test_isolated_seed_rejected(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            FrontierSampler(2).sample_from(graph, [0, 2], 5, rng=0)


class TestAlgorithmOne:
    def test_budget_accounting(self, house):
        trace = FrontierSampler(5).sample(house, 100, rng=0)
        assert trace.num_steps == 95  # B - m*c
        assert trace.spent() == 100

    def test_seed_cost_reduces_steps(self, house):
        trace = FrontierSampler(5, seed_cost=4.0).sample(house, 100, rng=0)
        assert trace.num_steps == 80

    def test_edges_are_real(self, house):
        trace = FrontierSampler(3).sample(house, 200, rng=1)
        for u, v in trace.edges:
            assert house.has_edge(u, v)

    def test_per_walker_paths_consistent(self, house):
        """Each walker's sub-trace is itself a contiguous walk starting
        at its seed (line 6 replaces u by v in L)."""
        trace = FrontierSampler(4).sample(house, 150, rng=2)
        for seed, edges in zip(trace.initial_vertices, trace.per_walker):
            if not edges:
                continue
            assert edges[0][0] == seed
            for (_u1, v1), (u2, _) in zip(edges, edges[1:]):
                assert v1 == u2

    def test_per_walker_partition(self, house):
        trace = FrontierSampler(4).sample(house, 150, rng=3)
        flat = [e for edges in trace.per_walker for e in edges]
        assert Counter(flat) == Counter(trace.edges)

    def test_deterministic(self, house):
        a = FrontierSampler(3).sample(house, 90, rng=13)
        b = FrontierSampler(3).sample(house, 90, rng=13)
        assert a.edges == b.edges
        assert a.initial_vertices == b.initial_vertices

    def test_dimension_one_is_single_walk(self, house):
        """FS with m=1 degenerates to a plain random walk."""
        trace = FrontierSampler(1).sample(house, 100, rng=4)
        for (_u1, v1), (u2, _) in zip(trace.edges, trace.edges[1:]):
            assert v1 == u2


class TestStationaryBehaviour:
    def test_uniform_edge_sampling_in_steady_state(self, paw):
        """Theorem 5.2(I): in steady state FS samples directed edges
        uniformly.  Start from stationary seeds and run long."""
        sampler = FrontierSampler(3, seeding="stationary")
        trace = sampler.sample(paw, 60_000, rng=5)
        counts = Counter(trace.edges)
        expected = 1.0 / paw.volume()
        assert len(counts) == paw.volume()
        for _edge, count in counts.items():
            assert count / trace.num_steps == pytest.approx(
                expected, rel=0.15
            )

    def test_covers_disconnected_components(self, two_triangles):
        trace = FrontierSampler(20).sample(two_triangles, 400, rng=6)
        visited = {v for _, v in trace.edges}
        assert visited & set(range(3))
        assert visited & set(range(3, 6))

    def test_walker_selection_degree_proportional(self):
        """On a star + far clique frontier, the high-degree walker moves
        much more often — line 4 of Algorithm 1."""
        graph = Graph(12)
        # hub 0 with 9 leaves (degree 9); plus an edge (10, 11)
        for leaf in range(1, 10):
            graph.add_edge(0, leaf)
        graph.add_edge(10, 11)
        sampler = FrontierSampler(2)
        trace = sampler.sample_from(graph, [0, 10], 4000, rng=7)
        hub_moves = len(trace.per_walker[0])
        lone_moves = len(trace.per_walker[1])
        # The star walker alternates between hub (weight 9) and leaf
        # (weight 1) positions while the lone walker's weight is pinned
        # at 1, so the star walker must win clearly more than half the
        # moves — impossible under uniform walker selection.
        assert hub_moves > 1.5 * lone_moves

    def test_uniform_walker_selection_differs(self):
        """The ablation mode picks walkers uniformly, so the move split
        becomes even — showing degree-proportional choice matters."""
        graph = Graph(12)
        for leaf in range(1, 10):
            graph.add_edge(0, leaf)
        graph.add_edge(10, 11)
        sampler = FrontierSampler(2, walker_selection="uniform")
        trace = sampler.sample_from(graph, [0, 10], 4000, rng=8)
        hub_moves = len(trace.per_walker[0])
        assert hub_moves / trace.num_steps == pytest.approx(0.5, abs=0.05)


@given(
    m=st.integers(min_value=1, max_value=8),
    budget=st.integers(min_value=10, max_value=300),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_fs_budget_invariants(m, budget, seed):
    graph = cycle_graph(9)
    trace = FrontierSampler(m).sample(graph, budget, rng=seed)
    assert trace.num_steps == max(0, budget - m)
    assert len(trace.initial_vertices) == m
    for u, v in trace.edges:
        assert graph.has_edge(u, v)


@given(
    m=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_fs_frontier_positions_consistent(m, seed):
    """Replaying the per-walker traces recovers each walker's final
    position; the multiset of final positions is the final frontier."""
    graph = complete_graph(5)
    sampler = FrontierSampler(m)
    trace = sampler.sample_from(
        graph, [i % 5 for i in range(m)], 100, rng=seed
    )
    finals = []
    for seed_vertex, edges in zip(trace.initial_vertices, trace.per_walker):
        finals.append(edges[-1][1] if edges else seed_vertex)
    assert len(finals) == m
