"""Tests for degree distribution estimators."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.sampling.base import WalkTrace
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler
from repro.sampling.single import SingleRandomWalk
from repro.estimators.degree import (
    degree_ccdf_from_trace,
    degree_ccdf_from_vertices,
    degree_pmf_from_trace,
    degree_pmf_from_vertices,
)
from repro.metrics.exact import true_degree_pmf
from repro.util.stats import total_variation


class TestFromTrace:
    def test_empty_trace_rejected(self, paw):
        with pytest.raises(ValueError):
            degree_pmf_from_trace(paw, WalkTrace("x", [], [0], 0, 1.0))

    def test_pmf_sums_to_one(self, paw):
        trace = SingleRandomWalk().sample(paw, 1000, rng=0)
        pmf = degree_pmf_from_trace(paw, trace)
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_dense_support(self, paw):
        trace = SingleRandomWalk().sample(paw, 1000, rng=1)
        pmf = degree_pmf_from_trace(paw, trace)
        assert set(pmf) == set(range(max(pmf) + 1))

    def test_converges_to_truth(self, paw):
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 50_000, rng=2
        )
        pmf = degree_pmf_from_trace(paw, trace)
        truth = true_degree_pmf(paw)
        assert total_variation(pmf, truth) < 0.02

    def test_ccdf_consistent_with_pmf(self, paw):
        trace = SingleRandomWalk().sample(paw, 2000, rng=3)
        pmf = degree_pmf_from_trace(paw, trace)
        ccdf = degree_ccdf_from_trace(paw, trace)
        for k in ccdf:
            tail = sum(v for d, v in pmf.items() if d > k)
            assert ccdf[k] == pytest.approx(tail)

    def test_custom_degree_label(self, paw):
        """Walking degree reweights; an arbitrary label is histogrammed."""
        label = {0: 7, 1: 7, 2: 9, 3: 9}
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 40_000, rng=4
        )
        pmf = degree_pmf_from_trace(paw, trace, degree_of=lambda v: label[v])
        assert pmf[7] == pytest.approx(0.5, abs=0.03)
        assert pmf[9] == pytest.approx(0.5, abs=0.03)

    def test_ba_graph_convergence(self):
        graph = barabasi_albert(400, 2, rng=5)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 80_000, rng=6
        )
        pmf = degree_pmf_from_trace(graph, trace)
        truth = true_degree_pmf(graph)
        assert total_variation(pmf, truth) < 0.05


class TestFromVertices:
    def test_empty_rejected(self, paw):
        with pytest.raises(ValueError):
            degree_pmf_from_vertices([], paw.degree)

    def test_empirical_pmf(self, paw):
        pmf = degree_pmf_from_vertices([0, 3, 3, 1], paw.degree)
        assert pmf[3] == pytest.approx(0.25)  # vertex 0 has degree 3
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.25)

    def test_converges_uniform_sampling(self, paw):
        trace = RandomVertexSampler().sample(paw, 40_000, rng=7)
        pmf = degree_pmf_from_vertices(trace.vertices, paw.degree)
        truth = true_degree_pmf(paw)
        assert total_variation(pmf, truth) < 0.02

    def test_ccdf_from_vertices(self, paw):
        ccdf = degree_ccdf_from_vertices([0, 3], paw.degree)
        assert ccdf[1] == pytest.approx(0.5)


class TestEdgeSamplesUseSameEstimator:
    def test_random_edge_trace_converges(self, paw):
        """RandomEdgeSampler's trace is exchangeable with a stationary
        RW trace for this estimator (both are uniform edge samples)."""
        trace = RandomEdgeSampler().sample(paw, 80_000, rng=8)
        pmf = degree_pmf_from_trace(paw, trace)
        truth = true_degree_pmf(paw)
        assert total_variation(pmf, truth) < 0.02
