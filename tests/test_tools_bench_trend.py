"""The benchmark-trend gate must fail readably, never with a traceback."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_bench_trend.py"


def run_tool(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def report(path: Path, fs_list: float, fs_csr: float) -> Path:
    payload = {
        "benchmarks": [
            {"name": "test_fs_list_backend", "stats": {"min": fs_list}},
            {"name": "test_fs_csr_backend", "stats": {"min": fs_csr}},
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestMissingReport:
    def test_missing_current_report_is_a_readable_error(self, tmp_path):
        """Satellite: no BENCH_ci.json -> clear message, exit 1."""
        result = run_tool("--current", str(tmp_path / "BENCH_ci.json"))
        assert result.returncode == 1
        assert "not found" in result.stderr
        assert "pytest benchmarks" in result.stderr  # tells you the fix
        assert "Traceback" not in result.stderr
        assert "Traceback" not in result.stdout

    def test_corrupt_report_is_a_readable_error(self, tmp_path):
        bad = tmp_path / "BENCH_ci.json"
        bad.write_text("{not json", encoding="utf-8")
        result = run_tool("--current", str(bad))
        assert result.returncode == 1
        assert "unreadable" in result.stderr
        assert "Traceback" not in result.stderr


class TestTrendGate:
    def test_update_then_pass_then_regress(self, tmp_path):
        current = report(tmp_path / "current.json", 1.0, 0.1)
        baseline = tmp_path / "baseline.json"
        updated = run_tool(
            "--current", str(current), "--baseline", str(baseline), "--update"
        )
        assert updated.returncode == 0
        assert baseline.exists()

        ok = run_tool("--current", str(current), "--baseline", str(baseline))
        assert ok.returncode == 0, ok.stderr
        assert "OK" in ok.stdout

        regressed = report(tmp_path / "slow.json", 1.0, 0.2)  # 2x slower
        failed = run_tool(
            "--current", str(regressed), "--baseline", str(baseline)
        )
        assert failed.returncode == 1
        assert "REGRESSED" in failed.stdout
