"""Tests for connected components, checked against networkx as oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    is_connected,
    largest_connected_component,
)
from repro.graph.graph import Graph


class TestConnectedComponents:
    def test_single_component(self, triangle):
        components = connected_components(triangle)
        assert components == [[0, 1, 2]]

    def test_two_components(self, two_triangles):
        components = connected_components(two_triangles)
        assert len(components) == 2
        assert components[0] == [0, 1, 2]

    def test_isolated_vertices_are_components(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        components = connected_components(graph)
        assert [2] in components

    def test_largest_first_ordering(self):
        graph = Graph(5)
        graph.add_edge(3, 4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        components = connected_components(graph)
        assert components[0] == [0, 1, 2]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_component_sizes(self, two_triangles):
        assert component_sizes(two_triangles) == [3, 3]


class TestIsConnected:
    def test_connected(self, bridge_graph):
        assert is_connected(bridge_graph)

    def test_disconnected(self, two_triangles):
        assert not is_connected(two_triangles)

    def test_empty_graph_vacuously_connected(self):
        assert is_connected(Graph())

    def test_single_vertex(self):
        assert is_connected(Graph(1))


class TestInducedSubgraph:
    def test_relabeling(self, two_triangles):
        sub, mapping = induced_subgraph(two_triangles, [3, 4, 5])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert mapping == {3: 0, 4: 1, 5: 2}

    def test_partial_edges_dropped(self, triangle):
        sub, _ = induced_subgraph(triangle, [0, 1])
        assert sub.num_edges == 1

    def test_duplicate_vertices_collapsed(self, triangle):
        sub, _ = induced_subgraph(triangle, [0, 0, 1])
        assert sub.num_vertices == 2

    def test_empty_selection(self, triangle):
        sub, mapping = induced_subgraph(triangle, [])
        assert sub.num_vertices == 0
        assert mapping == {}


class TestLargestConnectedComponent:
    def test_lcc_of_disconnected(self):
        graph = Graph(7)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            graph.add_edge(u, v)
        graph.add_edge(5, 6)
        lcc, mapping = largest_connected_component(graph)
        assert lcc.num_vertices == 4
        assert lcc.num_edges == 3
        assert set(mapping) == {0, 1, 2, 3}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            largest_connected_component(Graph())

    def test_connected_graph_is_its_own_lcc(self, house):
        lcc, _ = largest_connected_component(house)
        assert lcc.num_vertices == house.num_vertices
        assert lcc.num_edges == house.num_edges


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=100,
        )
    )
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def _to_networkx(graph: Graph) -> nx.Graph:
    oracle = nx.Graph()
    oracle.add_nodes_from(graph.vertices())
    oracle.add_edges_from(graph.edges())
    return oracle


@given(graph=random_graphs())
@settings(max_examples=100)
def test_components_match_networkx(graph):
    ours = {frozenset(c) for c in connected_components(graph)}
    oracle = {
        frozenset(c) for c in nx.connected_components(_to_networkx(graph))
    }
    assert ours == oracle


@given(graph=random_graphs())
@settings(max_examples=100)
def test_is_connected_matches_networkx(graph):
    oracle_graph = _to_networkx(graph)
    if graph.num_vertices == 0:
        return
    assert is_connected(graph) == nx.is_connected(oracle_graph)
