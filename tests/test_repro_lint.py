"""repro-lint: every rule fires on a minimal fixture and stays quiet
on the clean twin, suppressions silence with a mandatory reason, and
the whole repo lints clean (the CI contract).

The fixtures are written to ``tmp_path`` trees and linted through the
public :func:`tools.repro_lint.run` engine — the same code path the
CLI drives — so these tests pin the diagnostics' rule ids, positions
and file scoping, not just "something was printed".
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import run  # noqa: E402
from tools.repro_lint.diagnostics import (  # noqa: E402
    TOOL_RULE,
    parse_suppressions,
)

CPROTO = REPO_ROOT / "src" / "repro" / "sampling" / "_cproto.py"


def lint_file(tmp_path: Path, code: str, name: str = "mod.py"):
    """Write one module and return its diagnostics."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    return run([target])


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


# ---------------------------------------------------------------------
# RPL001 — unseeded global RNG
# ---------------------------------------------------------------------
class TestRPL001:
    def test_flags_unseeded_global_rng(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import random
            import numpy as np

            a = np.random.default_rng()
            b = np.random.random(5)
            c = random.random()
            d = random.Random()
            """,
        )
        assert rules_of(diagnostics) == ["RPL001"] * 4
        assert [d.line for d in diagnostics] == [5, 6, 7, 8]

    def test_seeded_instances_are_clean(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import random
            import numpy as np

            a = np.random.default_rng(42)
            b = np.random.default_rng(np.random.SeedSequence(7))
            c = random.Random(12345)

            def draw(rng: np.random.Generator, r: random.Random):
                return rng.random(), r.random()
            """,
        )
        assert diagnostics == []

    def test_tracks_import_aliases(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import numpy.random as npr

            x = npr.randint(0, 10)
            """,
        )
        assert rules_of(diagnostics) == ["RPL001"]
        assert "numpy.random.randint" in diagnostics[0].message

    def test_local_variable_named_random_is_not_the_module(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            def draw(random):
                return random.random()
            """,
        )
        assert diagnostics == []


# ---------------------------------------------------------------------
# RPL002 — picklable pool tasks
# ---------------------------------------------------------------------
class TestRPL002:
    def test_flags_lambda_closure_and_local_def(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            bound = lambda t: t

            def fan_out(pool, tasks, run_anytime):
                def local(t):
                    return t
                pool.map(local, tasks)
                pool.imap(lambda t: t, tasks)
                pool.map(bound, tasks)
                run_anytime(starter=lambda s, g, r, i: None)
            """,
        )
        assert rules_of(diagnostics) == ["RPL002"] * 4
        assert "'local'" in diagnostics[0].message
        assert "starter=" in diagnostics[3].message

    def test_module_level_tasks_and_partial_are_clean(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            from functools import partial

            def task(csr, native, t):
                return t

            def fan_out(pool, tasks):
                pool.map(partial(task, None, None), tasks)
                pool.map(task, tasks)
            """,
        )
        assert diagnostics == []


# ---------------------------------------------------------------------
# RPL003 — thread-core reentrancy registry
# ---------------------------------------------------------------------
class TestRPL003:
    def test_flags_global_write_and_non_reentrant_call(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            from repro.util.reentrancy import non_reentrant, thread_core

            @non_reentrant("swaps the process default")
            def set_backend(name):
                global _backend
                _backend = name

            @thread_core
            def core(task):
                global _STATE
                set_backend("csr")
                return task
            """,
        )
        assert rules_of(diagnostics) == ["RPL003", "RPL003"]
        assert "global _STATE" in diagnostics[0].message
        assert "set_backend()" in diagnostics[1].message
        assert "@non_reentrant" in diagnostics[1].message

    def test_registry_spans_files(self, tmp_path):
        (tmp_path / "helpers.py").write_text(
            textwrap.dedent(
                """
                from repro.util.reentrancy import non_reentrant

                @non_reentrant("writes the worker globals")
                def init_worker(stem):
                    global _CSR
                    _CSR = stem
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "tasks.py").write_text(
            textwrap.dedent(
                """
                from repro.util.reentrancy import thread_core
                from helpers import init_worker

                @thread_core
                def core(task):
                    init_worker("x")
                    return task
                """
            ),
            encoding="utf-8",
        )
        diagnostics = run([tmp_path])
        assert rules_of(diagnostics) == ["RPL003"]
        assert "helpers.py:5" in diagnostics[0].message

    def test_clean_thread_core_passes(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            from repro.util.reentrancy import thread_core

            @thread_core
            def core(csr, native, task):
                return (csr, native, task)
            """,
        )
        assert diagnostics == []


# ---------------------------------------------------------------------
# RPL004 — cross-language signature drift
# ---------------------------------------------------------------------
KERNELS_C = """
#include <stdint.h>

void repro_demo_steps(const int64_t *indptr, int64_t n, double *out) {
    (void)indptr; (void)n; (void)out;
}
"""


def native_tree(tmp_path: Path, native_source: str) -> Path:
    """A fixture `sampling/` dir with _kernels.c, _cproto.py, _native.py."""
    package = tmp_path / "sampling"
    package.mkdir(parents=True, exist_ok=True)
    (package / "_kernels.c").write_text(KERNELS_C, encoding="utf-8")
    shutil.copy(CPROTO, package / "_cproto.py")
    (package / "_native.py").write_text(
        textwrap.dedent(native_source), encoding="utf-8"
    )
    return package


class TestRPL004:
    def test_matching_declarations_are_clean(self, tmp_path):
        package = native_tree(
            tmp_path,
            """
            _DECLARATIONS = {
                "repro_demo_steps": ("void", ("i64*", "i64", "f64*")),
            }
            """,
        )
        diagnostics = run([package])
        assert [d for d in diagnostics if d.rule == "RPL004"] == []

    def test_catches_injected_arity_mismatch(self, tmp_path):
        package = native_tree(
            tmp_path,
            """
            _DECLARATIONS = {
                "repro_demo_steps": ("void", ("i64*", "i64")),
            }
            """,
        )
        diagnostics = run([package])
        assert rules_of(diagnostics) == ["RPL004"]
        message = diagnostics[0].message
        assert "arity mismatch" in message
        # ...naming both signatures:
        assert "void repro_demo_steps(i64*, i64)" in message
        assert "void repro_demo_steps(i64*, i64, f64*)" in message

    def test_catches_injected_argtype_mismatch_classic_style(self, tmp_path):
        package = native_tree(
            tmp_path,
            """
            import ctypes

            _I64P = ctypes.POINTER(ctypes.c_int64)

            def declare(lib):
                lib.repro_demo_steps.restype = None
                lib.repro_demo_steps.argtypes = [
                    _I64P, ctypes.c_double,
                    ctypes.POINTER(ctypes.c_double),
                ]
            """,
        )
        diagnostics = run([package])
        assert rules_of(diagnostics) == ["RPL004"]
        assert "type mismatch" in diagnostics[0].message
        assert "void repro_demo_steps(i64*, f64, f64*)" in diagnostics[0].message

    def test_flags_undeclared_and_phantom_kernels(self, tmp_path):
        package = native_tree(
            tmp_path,
            """
            _DECLARATIONS = {
                "repro_phantom": ("void", ("i64",)),
            }
            """,
        )
        diagnostics = run([package])
        assert rules_of(diagnostics) == ["RPL004", "RPL004"]
        messages = " | ".join(d.message for d in diagnostics)
        assert "no such kernel prototype" in messages
        assert "never declares it" in messages

    def test_real_tree_is_in_agreement(self):
        sampling = REPO_ROOT / "src" / "repro" / "sampling"
        diagnostics = run([sampling / "_native.py"])
        assert [d for d in diagnostics if d.rule == "RPL004"] == []


# ---------------------------------------------------------------------
# RPL005 — wall-clock / entropy / set-order, scoped packages only
# ---------------------------------------------------------------------
NONDETERMINISTIC = """
import os
import time
from datetime import datetime

def stamp(values):
    t = time.time()
    n = datetime.now()
    e = os.urandom(8)
    for v in {1, 2, 3}:
        pass
    order = [x for x in set(values)]
    return t, n, e, order
"""


class TestRPL005:
    def test_flags_inside_sampling_package(self, tmp_path):
        diagnostics = lint_file(
            tmp_path, NONDETERMINISTIC, name="repro/sampling/mod.py"
        )
        assert rules_of(diagnostics) == ["RPL005"] * 5
        messages = " | ".join(d.message for d in diagnostics)
        assert "wall-clock" in messages
        assert "OS entropy" in messages
        assert "order is salted" in messages

    def test_flags_inside_estimators_package(self, tmp_path):
        diagnostics = lint_file(
            tmp_path, NONDETERMINISTIC, name="repro/estimators/mod.py"
        )
        assert rules_of(diagnostics) == ["RPL005"] * 5

    def test_out_of_scope_files_are_exempt(self, tmp_path):
        diagnostics = lint_file(
            tmp_path, NONDETERMINISTIC, name="benchmarks/mod.py"
        )
        assert diagnostics == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            def visit(vertices):
                return [v for v in sorted(set(vertices))]
            """,
            name="repro/sampling/mod.py",
        )
        assert diagnostics == []


# ---------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable_with_reason_silences(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import random

            x = random.random()  # repro-lint: disable=RPL001 -- demo site
            """,
        )
        assert diagnostics == []

    def test_comment_above_governs_next_code_line(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import random

            # repro-lint: disable=RPL001 -- reason spans this line
            # and continues on a plain comment line below it.
            x = random.random()
            """,
        )
        assert diagnostics == []

    def test_disable_only_silences_named_rules(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import os

            def stamp():
                return os.urandom(8)  # repro-lint: disable=RPL001 -- wrong id
            """,
            name="repro/sampling/mod.py",
        )
        assert rules_of(diagnostics) == ["RPL005"]

    def test_multiple_rules_one_comment(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import os
            import random

            def stamp():
                # repro-lint: disable=RPL001,RPL005 -- both intentional
                return random.random(), os.urandom(8)
            """,
            name="repro/sampling/mod.py",
        )
        assert diagnostics == []

    def test_missing_reason_is_malformed_and_does_not_silence(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            import random

            x = random.random()  # repro-lint: disable=RPL001
            """,
        )
        assert sorted(rules_of(diagnostics)) == [TOOL_RULE, "RPL001"]
        malformed = [d for d in diagnostics if d.rule == TOOL_RULE][0]
        assert "requires a reason" in malformed.message

    def test_bad_rule_id_is_malformed(self, tmp_path):
        diagnostics = lint_file(
            tmp_path,
            """
            x = 1  # repro-lint: disable=BOGUS -- whatever
            """,
        )
        assert rules_of(diagnostics) == [TOOL_RULE]

    def test_disable_inside_string_literal_is_ignored(self):
        suppressions = parse_suppressions(
            "mod.py",
            'text = "# repro-lint: disable=RPL001"\n',
        )
        assert suppressions.by_line == {}
        assert suppressions.malformed == []


# ---------------------------------------------------------------------
# engine + CLI
# ---------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_is_a_tool_diagnostic(self, tmp_path):
        diagnostics = lint_file(tmp_path, "def broken(:\n")
        assert rules_of(diagnostics) == [TOOL_RULE]
        assert "syntax error" in diagnostics[0].message

    def test_whole_repo_lints_clean(self):
        paths = [
            REPO_ROOT / name
            for name in ("src", "tests", "benchmarks", "examples")
            if (REPO_ROOT / name).exists()
        ]
        diagnostics = run(paths, root=REPO_ROOT)
        assert diagnostics == [], "\n".join(
            d.render() for d in diagnostics
        )


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert rule_id in result.stdout

    def test_missing_path_exits_2(self):
        result = self.run_cli("no/such/dir")
        assert result.returncode == 2
        assert "no such path" in result.stderr

    def test_violations_exit_1_with_locations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert "bad.py:2:4: RPL001" in result.stdout


# ---------------------------------------------------------------------
# the audit sites actually adopted the registry
# ---------------------------------------------------------------------
class TestRegistryAdoption:
    def test_sharded_task_cores_are_marked(self):
        from repro.sampling import sharded
        from repro.util.reentrancy import is_thread_core

        assert is_thread_core(sharded._shard_advance_task)
        assert is_thread_core(sharded._sample_task)
        assert is_thread_core(sharded._anytime_task)

    def test_global_mutators_are_marked_non_reentrant(self):
        from repro.sampling import base, sharded
        from repro.util.reentrancy import non_reentrant_reason

        assert "worker globals" in non_reentrant_reason(sharded._worker_init)
        assert "default backend" in non_reentrant_reason(
            base.set_default_backend
        )
        assert non_reentrant_reason(base.use_backend) is not None

    def test_non_reentrant_requires_a_reason(self):
        from repro.util.reentrancy import non_reentrant

        with pytest.raises(ValueError, match="reason"):
            non_reentrant("")
        with pytest.raises(ValueError, match="reason"):
            non_reentrant(None)  # type: ignore[arg-type]


# ---------------------------------------------------------------------
# the runtime mirror: KernelSignatureError at load time
# ---------------------------------------------------------------------
class TestRuntimeSignatureCheck:
    def test_real_declarations_verify_against_real_source(self):
        from repro.sampling import _native

        source = (
            REPO_ROOT / "src" / "repro" / "sampling" / "_kernels.c"
        ).read_text(encoding="utf-8")
        _native._check_declarations(_native._DECLARATIONS, source)

    def test_tampered_arity_raises_readable_error(self):
        from repro.sampling import _native

        source = (
            REPO_ROOT / "src" / "repro" / "sampling" / "_kernels.c"
        ).read_text(encoding="utf-8")
        tampered = dict(_native._DECLARATIONS)
        tampered["repro_rw_steps"] = ("void", ("i64*", "i64*"))
        with pytest.raises(_native.KernelSignatureError) as excinfo:
            _native._check_declarations(tampered, source)
        message = str(excinfo.value)
        assert "repro_rw_steps" in message
        assert "void repro_rw_steps(i64*, i64*)" in message  # declared
        assert "f64*" in message  # the C side's uniforms argument

    def test_tampered_type_raises_readable_error(self):
        from repro.sampling import _native

        source = (
            REPO_ROOT / "src" / "repro" / "sampling" / "_kernels.c"
        ).read_text(encoding="utf-8")
        tampered = dict(_native._DECLARATIONS)
        restype, argtypes = tampered["repro_mh_steps"]
        drifted = ("f64",) + argtypes[1:]
        tampered["repro_mh_steps"] = (restype, drifted)
        with pytest.raises(
            _native.KernelSignatureError, match="type mismatch"
        ):
            _native._check_declarations(tampered, source)

    def test_unknown_kernel_raises(self):
        from repro.sampling import _native

        source = (
            REPO_ROOT / "src" / "repro" / "sampling" / "_kernels.c"
        ).read_text(encoding="utf-8")
        with pytest.raises(
            _native.KernelSignatureError, match="no such prototype"
        ):
            _native._check_declarations(
                {"repro_missing": ("void", ())}, source
            )

    def test_cproto_parses_all_kernels(self):
        from repro.sampling import _cproto

        source = (
            REPO_ROOT / "src" / "repro" / "sampling" / "_kernels.c"
        ).read_text(encoding="utf-8")
        prototypes = _cproto.parse_prototypes(source)
        assert set(prototypes) == {
            "repro_rw_steps", "repro_fs_steps", "repro_mh_steps",
            "repro_rw_steps_acc", "repro_fs_steps_acc",
            "repro_mh_steps_acc",
        }
        assert prototypes["repro_rw_steps"].restype == "void"
        assert prototypes["repro_fs_steps"].argtypes[0] == "i64*"
        # The fused FS kernel's trailing arg is the optional Fenwick
        # scratch (NULL -> linear scan).
        assert prototypes["repro_fs_steps_acc"].argtypes[-1] == "i64*"
