"""The documented public API must exist and be importable."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart, verbatim."""
        from repro import FrontierSampler, barabasi_albert
        from repro.estimators import degree_ccdf_from_trace

        graph = barabasi_albert(500, 3, rng=42)
        trace = FrontierSampler(dimension=16).sample(graph, budget=200, rng=1)
        ccdf = degree_ccdf_from_trace(graph, trace)
        assert ccdf


@pytest.mark.parametrize(
    "module",
    [
        "repro.util",
        "repro.graph",
        "repro.generators",
        "repro.sampling",
        "repro.estimators",
        "repro.metrics",
        "repro.markov",
        "repro.analysis",
        "repro.datasets",
        "repro.experiments",
        "repro.experiments.ablations",
        "repro.experiments.cli",
        "repro.experiments.figures",
        "repro.experiments.tables",
        "repro.estimators.diagnostics",
        "repro.estimators.size",
        "repro.sampling.burnin",
        "repro.generators.rewiring",
        "repro.markov.spectral",
    ],
)
def test_module_imports(module):
    importlib.import_module(module)


@pytest.mark.parametrize(
    "package",
    [
        "repro.util",
        "repro.graph",
        "repro.generators",
        "repro.sampling",
        "repro.estimators",
        "repro.metrics",
        "repro.markov",
        "repro.analysis",
        "repro.datasets",
    ],
)
def test_package_all_resolves(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name}"
