"""Tests for repro.util.rng."""

import random

import pytest

from repro.util.rng import child_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = ensure_rng(1)
        b = ensure_rng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_existing_rng_passes_through(self):
        source = random.Random(7)
        assert ensure_rng(source) is source

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestChildRng:
    def test_reproducible(self):
        a = child_rng(99, 3)
        b = child_rng(99, 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_children_distinct(self):
        streams = [
            tuple(child_rng(0, i).random() for _ in range(3))
            for i in range(20)
        ]
        assert len(set(streams)) == 20

    def test_children_distinct_across_roots(self):
        a = child_rng(0, 0)
        b = child_rng(1, 0)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            child_rng(0, -1)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(5, 7)) == 7

    def test_zero_count(self):
        assert spawn_rngs(5, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)

    def test_matches_child_rng(self):
        spawned = spawn_rngs(11, 3)
        direct = [child_rng(11, i) for i in range(3)]
        for s, d in zip(spawned, direct):
            assert s.random() == d.random()
