"""Tests for the replication engine."""

import pytest

from repro.experiments.runner import replicate


class TestReplicate:
    def test_count(self):
        results = replicate(lambda rng: rng.random(), 5, root_seed=0)
        assert len(results) == 5

    def test_runs_independent_and_reproducible(self):
        a = replicate(lambda rng: rng.random(), 4, root_seed=1)
        b = replicate(lambda rng: rng.random(), 4, root_seed=1)
        assert a == b
        assert len(set(a)) == 4

    def test_prefix_stability(self):
        """Adding runs never changes earlier runs' results."""
        short = replicate(lambda rng: rng.random(), 3, root_seed=2)
        long = replicate(lambda rng: rng.random(), 6, root_seed=2)
        assert long[:3] == short

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda rng: 1, 0)
