"""Tests for the replication engine."""

import pytest

from repro.experiments.runner import replicate


class TestReplicate:
    def test_count(self):
        results = replicate(lambda rng: rng.random(), 5, root_seed=0)
        assert len(results) == 5

    def test_runs_independent_and_reproducible(self):
        a = replicate(lambda rng: rng.random(), 4, root_seed=1)
        b = replicate(lambda rng: rng.random(), 4, root_seed=1)
        assert a == b
        assert len(set(a)) == 4

    def test_prefix_stability(self):
        """Adding runs never changes earlier runs' results."""
        short = replicate(lambda rng: rng.random(), 3, root_seed=2)
        long = replicate(lambda rng: rng.random(), 6, root_seed=2)
        assert long[:3] == short

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda rng: 1, 0)


class TestReplicateIncremental:
    @staticmethod
    def _start_counter(rng):
        class Counter:
            def __init__(self):
                self.budget = 0.0
                self.advances = 0

            def advance_budget(self, budget):
                assert budget >= self.budget  # never rewound
                self.budget = budget
                self.advances += 1

        return Counter()

    def test_one_session_per_run_advanced_through_checkpoints(self):
        from repro.experiments.runner import replicate_incremental

        rows = replicate_incremental(
            self._start_counter,
            lambda session, budget: (session.advances, budget),
            budgets=[10, 20, 50],
            runs=3,
        )
        assert rows == [[(1, 10.0), (2, 20.0), (3, 50.0)]] * 3

    def test_sessions_resume_not_rewalk(self):
        """Each budget checkpoint only pays the incremental steps."""
        from repro.experiments.runner import replicate_incremental
        from repro.generators.ba import barabasi_albert
        from repro.sampling import FrontierSampler

        graph = barabasi_albert(400, 2, rng=3)
        sampler = FrontierSampler(8, backend="csr")
        rows = replicate_incremental(
            lambda rng: sampler.start(graph, rng),
            lambda session, budget: session.steps_taken,
            budgets=[100, 300, 600],
            runs=2,
        )
        for row in rows:
            assert row == [92, 292, 592]  # 8 seed units once, ever

    def test_reproducible_and_prefix_stable(self):
        from repro.experiments.runner import replicate_incremental
        from repro.generators.ba import barabasi_albert
        from repro.sampling import SingleRandomWalk

        graph = barabasi_albert(300, 2, rng=3)
        sampler = SingleRandomWalk()

        def start(rng):
            return sampler.start(graph, rng)

        def measure(session, budget):
            return tuple(session.trace().edges[-3:])

        a = replicate_incremental(start, measure, [50, 120], 3, root_seed=9)
        b = replicate_incremental(start, measure, [50, 120], 3, root_seed=9)
        assert a == b
        longer = replicate_incremental(
            start, measure, [50, 120], 5, root_seed=9
        )
        assert longer[:3] == a

    def test_invalid_budgets_rejected(self):
        from repro.experiments.runner import replicate_incremental

        with pytest.raises(ValueError):
            replicate_incremental(
                self._start_counter, lambda s, b: None, [], 2
            )
        with pytest.raises(ValueError):
            replicate_incremental(
                self._start_counter, lambda s, b: None, [50, 20], 2
            )
        with pytest.raises(ValueError):
            replicate_incremental(
                self._start_counter, lambda s, b: None, [10], 0
            )
