"""Tests for the session-native replication engine."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.engine import (
    METHOD_SEED_STRIDE,
    ExperimentPlan,
    TraceCollector,
    concat_traces,
    default_budget_schedule,
    run_plan,
)
from repro.generators.ba import barabasi_albert
from repro.sampling import (
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    RandomVertexSampler,
    SingleRandomWalk,
)
from repro.sampling.base import VertexTrace, walk_steps
from repro.util.rng import child_rng

#: Worker count for the real-spawn tests (CI's smoke leg sets 4).
SPAWN_PROCS = int(os.environ.get("REPRO_SHARD_PROCS", "2"))
#: Executor override for the fan-out tests (CI's thread leg sets
#: "thread"); None keeps the legacy spawn default.
EXECUTOR = os.environ.get("REPRO_EXECUTOR") or None


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(400, 2, rng=3)


class TestPlanValidation:
    def test_bad_schedule_rejected(self, graph):
        with pytest.raises(ValueError, match="schedule"):
            ExperimentPlan(
                title="t", graph=graph, samplers={}, schedule="sideways"
            )

    def test_bad_backend_rejected(self, graph):
        with pytest.raises(ValueError):
            ExperimentPlan(
                title="t", graph=graph, samplers={}, backend="gpu"
            )

    def test_non_ascending_budgets_rejected(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[100, 50],
        )
        with pytest.raises(ValueError, match="ascending"):
            run_plan(plan, 1)

    def test_empty_budgets_rejected(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[],
        )
        with pytest.raises(ValueError, match="ascending"):
            run_plan(plan, 1)

    def test_zero_replicates_rejected_with_samplers(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[10],
        )
        with pytest.raises(ValueError, match="replicates"):
            run_plan(plan, 0)

    def test_bad_procs_rejected(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[10],
        )
        with pytest.raises(ValueError, match="procs"):
            run_plan(plan, 1, procs=0)

    def test_list_backend_cannot_pool(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[10],
            backend="list",
        )
        with pytest.raises(ValueError, match="list"):
            run_plan(plan, 1, procs=2)

    def test_empty_grid_is_descriptive(self, graph):
        """Empty sampler grid: the engine resolves the graph factory
        and returns an empty result (figs 3/7, table 1)."""
        calls = []

        def factory():
            calls.append(1)
            return graph

        plan = ExperimentPlan(title="t", graph=factory, samplers={})
        result = run_plan(plan, replicates=0)
        assert result.graph is graph
        assert calls == [1]
        assert result.methods == {}


class TestSchedulesAndSeeds:
    def test_default_method_seeds_follow_stride(self, graph):
        """Sorted-grid method i replicates on root + 7919*i — the
        historical degree_error_experiment streams."""
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"B": SingleRandomWalk(), "A": SingleRandomWalk()},
            budgets=[60],
            root_seed=5,
        )
        outcome = run_plan(plan, 2)
        for index, method in enumerate(["A", "B"]):
            for run_index, trace in enumerate(
                outcome.measurements(method)
            ):
                seed = 5 + METHOD_SEED_STRIDE * index
                ref = SingleRandomWalk().sample(
                    graph, 60, child_rng(seed, run_index)
                )
                assert trace.edges == ref.edges

    def test_method_seed_mapping_and_callable(self, graph):
        mapping_plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[50],
            method_seed={"SRW": 123},
        )
        callable_plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[50],
            method_seed=lambda method, index: 123,
        )
        a = run_plan(mapping_plan, 2).measurements("SRW")
        b = run_plan(callable_plan, 2).measurements("SRW")
        for ta, tb in zip(a, b):
            assert ta.edges == tb.edges

    def test_steps_schedule_advances_cumulatively(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"FS": FrontierSampler(4)},
            budgets=[10, 25, 40],
            schedule="steps",
        )
        outcome = run_plan(plan, 1)
        run = outcome.run("FS")
        assert run.steps_taken == [40]
        increments = run.rows[0]
        assert [t.num_steps for t in increments] == [10, 25, 40]

    def test_per_method_budget_mapping(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={
                "FS": FrontierSampler(4),
                "MRW": MultipleRandomWalk(4),
            },
            budgets={"FS": [40], "MRW": [10]},
            schedule="steps",
        )
        outcome = run_plan(plan, 1)
        assert outcome.run("FS").steps_taken == [40]
        assert outcome.run("MRW").steps_taken == [10]  # per walker

    def test_default_budget_schedule(self):
        assert default_budget_schedule(100.0, 4) == [25.0, 50.0, 75.0, 100.0]
        with pytest.raises(ValueError):
            default_budget_schedule(100.0, 0)
        with pytest.raises(ValueError):
            default_budget_schedule(0.0)


class TestSingleWalkAccounting:
    def test_budget_sweep_walks_each_replicate_once(self, graph):
        """The engine receipt: a k-point sweep takes steps(final), not
        sum_i steps(b_i) — each replicate's session is advanced
        through the schedule exactly once."""
        budgets = [100.0, 200.0, 400.0]
        replicates = 3
        sampler = FrontierSampler(8)
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"FS": sampler},
            budgets=budgets,
        )
        outcome = run_plan(plan, replicates)
        run = outcome.run("FS")
        final_steps = walk_steps(budgets[-1], 8, sampler.seed_cost)
        resample_steps = sum(
            walk_steps(b, 8, sampler.seed_cost) for b in budgets
        )
        assert run.sessions_started == replicates
        assert run.steps_taken == [final_steps] * replicates
        assert run.total_steps() == replicates * final_steps
        assert run.total_steps() < replicates * resample_steps

    def test_sweep_final_snapshot_is_the_one_shot_trace(self, graph):
        """The default snapshot is the cumulative trace: the final
        checkpoint's value equals the one-shot ``sample()`` trace."""
        sampler = SingleRandomWalk()
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": sampler},
            budgets=[50, 150, 300],
        )
        outcome = run_plan(plan, 2)
        for index, row in enumerate(outcome.run("SRW").rows):
            ref = sampler.sample(graph, 300, child_rng(0, index))
            assert row[-1].edges == ref.edges
            assert [t.num_steps for t in row] == [49, 149, 299]


class TestTraceCollector:
    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            TraceCollector().trace()

    def test_single_increment_returned_unchanged(self, graph):
        trace = SingleRandomWalk().sample(graph, 30, 1)
        collector = TraceCollector().update(trace)
        assert collector.trace() is trace

    def test_concat_list_walk_traces(self, graph):
        session = MultipleRandomWalk(3).start(graph, rng=4)
        session.advance(5)
        first = session.take_trace()
        session.advance(5)
        second = session.take_trace()
        merged = concat_traces([first, second])
        assert merged.num_steps == 30
        assert len(merged.per_walker) == 3
        assert all(len(edges) == 10 for edges in merged.per_walker)

    def test_concat_array_traces(self, graph):
        session = FrontierSampler(4, backend="csr").start(graph, rng=4)
        session.advance(20)
        first = session.take_trace()
        session.advance(15)
        second = session.take_trace()
        merged = concat_traces([first, second])
        assert merged.num_steps == 35
        assert merged.step_walkers.size == 35
        reference = FrontierSampler(4, backend="csr").start(graph, rng=4)
        reference.advance(35)
        assert (
            merged.step_sources == reference.trace().step_sources
        ).all()

    def test_concat_metropolis_keeps_visits(self, graph):
        session = MetropolisHastingsWalk().start(graph, rng=4)
        session.advance(10)
        first = session.take_trace()
        session.advance(10)
        second = session.take_trace()
        merged = concat_traces([first, second])
        assert len(merged.visited) == 20

    def test_concat_vertex_traces(self, graph):
        session = RandomVertexSampler().start(graph, rng=4)
        session.advance(10)
        first = session.take_trace()
        session.advance(10)
        second = session.take_trace()
        merged = concat_traces([first, second])
        assert isinstance(merged, VertexTrace)
        assert merged.num_samples == 20


class TestProcsFanOut:
    def test_pool_incapable_samplers_replicate_in_process(self, graph):
        """Independent-probe samplers cannot cross the process
        boundary; under procs they run in-process with streams
        invariant to the procs value."""
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"RV": RandomVertexSampler()},
            budgets=[80],
        )
        base = run_plan(plan, 3)
        pooled = run_plan(plan, 3, procs=SPAWN_PROCS, executor=EXECUTOR)
        assert not pooled.run("RV").pooled
        for ta, tb in zip(
            base.measurements("RV"), pooled.measurements("RV")
        ):
            assert ta.vertices == tb.vertices

    def test_procs_one_matches_backend_csr_in_process(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"FS": FrontierSampler(6)},
            budgets=[100, 250],
            backend="csr",
        )
        inproc = run_plan(plan, 3)
        inline = run_plan(plan, 3, procs=1)
        assert inline.run("FS").pooled
        for ra, rb in zip(inproc.run("FS").rows, inline.run("FS").rows):
            for ta, tb in zip(ra, rb):
                assert (ta.step_sources == tb.step_sources).all()
                assert (ta.step_targets == tb.step_targets).all()

    def test_spawn_procs_bit_identical_to_inline(self, graph):
        """Real spawn workers: procs=1 and procs=SPAWN_PROCS agree bit
        for bit, method by method."""
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={
                "FS": FrontierSampler(6),
                "MRW": MultipleRandomWalk(4),
                "SRW": SingleRandomWalk(),
            },
            budgets=[100, 250],
        )
        inline = run_plan(plan, 3, procs=1)
        pooled = run_plan(plan, 3, procs=SPAWN_PROCS, executor=EXECUTOR)
        for method in ("FS", "MRW", "SRW"):
            assert (
                inline.run(method).steps_taken
                == pooled.run(method).steps_taken
            )
            for ra, rb in zip(
                inline.run(method).rows, pooled.run(method).rows
            ):
                for ta, tb in zip(ra, rb):
                    assert (ta.step_sources == tb.step_sources).all()
                    assert (ta.step_targets == tb.step_targets).all()

    def test_measurement_column_helpers(self, graph):
        plan = ExperimentPlan(
            title="t",
            graph=graph,
            samplers={"SRW": SingleRandomWalk()},
            budgets=[50, 100],
        )
        outcome = run_plan(plan, 2)
        run = outcome.run("SRW")
        assert len(run.measurements(50)) == 2
        assert run.measurements() == run.measurements(100)
        with pytest.raises(ValueError):
            run.measurements(75)


class TestRunAnytime:
    def test_validation(self, graph):
        from repro.sampling.sharded import ShardedSessionPool

        with ShardedSessionPool(graph, procs=1) as pool:
            with pytest.raises(ValueError, match="schedule"):
                pool.run_anytime(
                    SingleRandomWalk(), [10], 1, schedule="sideways"
                )
            with pytest.raises(ValueError, match="ascending"):
                pool.run_anytime(SingleRandomWalk(), [100, 50], 1)
            with pytest.raises(ValueError, match="runs"):
                pool.run_anytime(SingleRandomWalk(), [10], 0)

    def test_increments_and_steps(self, graph):
        from repro.sampling.sharded import ShardedSessionPool

        with ShardedSessionPool(graph, procs=1) as pool:
            rows = pool.run_anytime(
                SingleRandomWalk(), [50, 120], 2, root_seed=7
            )
        assert len(rows) == 2
        for increments, steps in rows:
            assert steps == 119  # one seed unit, then steps to B=120
            assert [t.num_steps for t in increments] == [49, 70]

    def test_streams_match_pool_run(self, graph):
        """run_anytime at one checkpoint reproduces run()'s traces."""
        from repro.sampling.sharded import ShardedSessionPool

        sampler = FrontierSampler(4)
        with ShardedSessionPool(graph, procs=1) as pool:
            one_shot = pool.run(sampler, 120, runs=2, root_seed=9)
            anytime = pool.run_anytime(
                sampler, [120], runs=2, root_seed=9
            )
        for trace, (increments, _) in zip(one_shot, anytime):
            assert len(increments) == 1
            assert np.array_equal(
                trace.step_sources, increments[0].step_sources
            )
