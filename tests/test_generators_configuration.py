"""Tests for configuration-model generators and power-law sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.configuration import (
    configuration_model,
    directed_configuration_model,
    power_law_degree_sequence,
)


class TestPowerLawSequence:
    def test_length(self):
        degrees = power_law_degree_sequence(500, 2.5, rng=0)
        assert len(degrees) == 500

    def test_bounds_respected(self):
        degrees = power_law_degree_sequence(
            1000, 2.0, min_degree=2, max_degree=50, rng=1
        )
        assert min(degrees) >= 2
        assert max(degrees) <= 50

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 1.0)

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.0, min_degree=0)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.0, min_degree=5, max_degree=3)

    def test_heavier_exponent_means_lighter_tail(self):
        light = power_law_degree_sequence(4000, 3.5, max_degree=1000, rng=2)
        heavy = power_law_degree_sequence(4000, 1.8, max_degree=1000, rng=2)
        assert sum(heavy) / len(heavy) > sum(light) / len(light)

    def test_deterministic(self):
        a = power_law_degree_sequence(100, 2.2, rng=7)
        b = power_law_degree_sequence(100, 2.2, rng=7)
        assert a == b


class TestConfigurationModel:
    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            configuration_model([1, -1])

    def test_graph_size(self):
        graph = configuration_model([2, 2, 2, 2], rng=0)
        assert graph.num_vertices == 4

    def test_degrees_close_to_requested(self):
        """The erased model only loses the few stubs involved in
        self-loops/duplicates."""
        degrees = [3] * 200
        graph = configuration_model(degrees, rng=1)
        realized = sum(graph.degrees())
        assert realized >= 0.9 * sum(degrees)
        assert realized <= sum(degrees)

    def test_odd_sum_handled(self):
        graph = configuration_model([1, 1, 1], rng=2)
        assert graph.num_vertices == 3  # one degree bumped internally

    def test_no_self_loops(self):
        graph = configuration_model([4] * 50, rng=3)
        for u, v in graph.edges():
            assert u != v


class TestDirectedConfigurationModel:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            directed_configuration_model([1, 2], [1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            directed_configuration_model([1, -2], [1, 2])

    def test_size(self):
        graph = directed_configuration_model([1, 1, 1], [1, 1, 1], rng=0)
        assert graph.num_vertices == 3

    def test_arcs_close_to_requested(self):
        out_degrees = [2] * 300
        in_degrees = [2] * 300
        graph = directed_configuration_model(out_degrees, in_degrees, rng=1)
        assert graph.num_edges >= 0.85 * sum(out_degrees)

    def test_unbalanced_totals_trimmed(self):
        graph = directed_configuration_model([5, 5], [1, 1], rng=2)
        assert graph.num_edges <= 2

    def test_no_self_arcs(self):
        graph = directed_configuration_model([3] * 40, [3] * 40, rng=3)
        for u, v in graph.edges():
            assert u != v


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=4, max_value=60),
)
@settings(max_examples=50, deadline=None)
def test_configuration_model_degree_dominance(seed, n):
    """Realized degree never exceeds the requested degree (erasure only
    removes edges)."""
    degrees = power_law_degree_sequence(n, 2.2, max_degree=n - 1, rng=seed)
    adjusted = list(degrees)
    if sum(adjusted) % 2 == 1:
        adjusted[0] += 1
    graph = configuration_model(degrees, rng=seed)
    for v in graph.vertices():
        assert graph.degree(v) <= adjusted[v]
