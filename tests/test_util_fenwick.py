"""Tests for the Fenwick tree, including hypothesis properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fenwick import FenwickTree, fenwick_from_iterable


class TestBasics:
    def test_empty(self):
        tree = FenwickTree(size=0)
        assert len(tree) == 0
        assert tree.total() == 0.0

    def test_construction_from_weights(self):
        tree = FenwickTree([1.0, 2.0, 3.0])
        assert tree.total() == pytest.approx(6.0)
        assert tree.weight(1) == 2.0

    def test_from_iterable(self):
        tree = fenwick_from_iterable(w for w in (1.0, 1.0))
        assert tree.total() == pytest.approx(2.0)

    def test_update_changes_total(self):
        tree = FenwickTree([1.0, 2.0, 3.0])
        tree.update(0, 5.0)
        assert tree.total() == pytest.approx(10.0)
        assert tree.weight(0) == 5.0

    def test_add(self):
        tree = FenwickTree([1.0, 2.0])
        tree.add(1, 0.5)
        assert tree.weight(1) == pytest.approx(2.5)

    def test_prefix_sums(self):
        tree = FenwickTree([1.0, 2.0, 3.0, 4.0])
        assert tree.prefix_sum(0) == 0.0
        assert tree.prefix_sum(2) == pytest.approx(3.0)
        assert tree.prefix_sum(4) == pytest.approx(10.0)

    def test_weights_copy(self):
        tree = FenwickTree([1.0, 2.0])
        weights = tree.weights()
        weights[0] = 99.0
        assert tree.weight(0) == 1.0


class TestValidation:
    def test_negative_weight_rejected(self):
        tree = FenwickTree([1.0])
        with pytest.raises(ValueError):
            tree.update(0, -1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(size=-1)

    def test_index_out_of_range(self):
        tree = FenwickTree([1.0])
        with pytest.raises(IndexError):
            tree.weight(1)
        with pytest.raises(IndexError):
            tree.update(-1, 1.0)

    def test_prefix_sum_range(self):
        tree = FenwickTree([1.0])
        with pytest.raises(IndexError):
            tree.prefix_sum(2)

    def test_find_above_total_rejected(self):
        tree = FenwickTree([1.0, 1.0])
        with pytest.raises(ValueError):
            tree.find(2.0)

    def test_find_negative_rejected(self):
        tree = FenwickTree([1.0])
        with pytest.raises(ValueError):
            tree.find(-0.1)

    def test_sample_all_zero_rejected(self):
        tree = FenwickTree([0.0, 0.0])
        with pytest.raises(ValueError):
            tree.sample(random.Random(0))


class TestFind:
    def test_find_boundaries(self):
        tree = FenwickTree([1.0, 2.0, 3.0])
        assert tree.find(0.0) == 0
        assert tree.find(0.999) == 0
        assert tree.find(1.0) == 1
        assert tree.find(2.999) == 1
        assert tree.find(3.0) == 2
        assert tree.find(5.999) == 2

    def test_find_skips_zero_weights(self):
        tree = FenwickTree([0.0, 1.0, 0.0, 2.0])
        assert tree.find(0.0) == 1
        assert tree.find(1.5) == 3


class TestSampling:
    def test_sampling_proportional(self):
        tree = FenwickTree([1.0, 3.0])
        rng = random.Random(7)
        draws = [tree.sample(rng) for _ in range(8000)]
        fraction = draws.count(1) / len(draws)
        assert fraction == pytest.approx(0.75, abs=0.03)

    def test_sampling_after_update(self):
        tree = FenwickTree([1.0, 1.0])
        tree.update(0, 0.0)
        rng = random.Random(3)
        assert all(tree.sample(rng) == 1 for _ in range(100))


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100)
def test_prefix_sums_match_naive(weights):
    tree = FenwickTree(weights)
    acc = 0.0
    for count in range(len(weights) + 1):
        assert tree.prefix_sum(count) == pytest.approx(acc, abs=1e-9)
        if count < len(weights):
            acc += weights[count]


@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    fractions=st.lists(
        st.floats(min_value=0.0, max_value=0.999999), min_size=1, max_size=10
    ),
)
@settings(max_examples=100)
def test_find_matches_linear_scan(weights, fractions):
    tree = FenwickTree(weights)
    total = sum(weights)
    for fraction in fractions:
        target = fraction * total
        if target >= tree.total():
            continue
        expected = 0
        acc = weights[0]
        while acc <= target:
            expected += 1
            acc += weights[expected]
        assert tree.find(target) == expected


@given(
    initial=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=20,
    ),
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=19),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        max_size=20,
    ),
)
@settings(max_examples=100)
def test_updates_keep_totals_consistent(initial, updates):
    tree = FenwickTree(initial)
    mirror = list(initial)
    for index, weight in updates:
        if index >= len(mirror):
            continue
        tree.update(index, weight)
        mirror[index] = weight
    assert tree.total() == pytest.approx(sum(mirror), abs=1e-9)
    assert tree.weights() == pytest.approx(mirror)
