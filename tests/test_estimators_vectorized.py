"""Vectorized-vs-tuple-loop estimator parity.

Every public ``*_from_trace`` estimator dispatches to the numpy
implementation in :mod:`repro.estimators._vectorized` when handed an
array-backed trace.  These fixed-seed goldens pin the contract from
ISSUE 2: on the same FS steps, the two code paths agree to 1e-12 on
ER, BA and disconnected graphs — including the ``degree_of``
label-vs-walking-degree decoupling.

The tuple-loop reference is the *same* steps wrapped in a plain
list-backed :class:`~repro.sampling.base.WalkTrace`, so any
disagreement is an estimator bug, never walk randomness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators import _vectorized
from repro.estimators.assortativity import (
    assortativity_from_trace,
    directed_assortativity_from_trace,
)
from repro.estimators.clustering import global_clustering_from_trace
from repro.estimators.degree import (
    degree_ccdf_from_trace,
    degree_pmf_from_trace,
)
from repro.estimators.edge_density import (
    edge_label_densities_from_trace,
    edge_label_density_from_trace,
)
from repro.estimators.functionals import (
    edge_functional_from_trace,
    vertex_functional_from_trace,
    weighted_vertex_sums,
)
from repro.estimators.size import (
    estimate_num_edges,
    estimate_num_vertices,
    estimate_volume,
)
from repro.estimators.vertex_density import (
    vertex_label_densities_from_trace,
    vertex_label_density_from_trace,
)
from repro.generators.ba import barabasi_albert
from repro.generators.er import erdos_renyi_gnp
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.labels import EdgeLabeling, VertexLabeling
from repro.sampling.base import WalkTrace
from repro.sampling.frontier import FrontierSampler
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.vectorized import ArrayWalkTrace

TOL = dict(rel=1e-12, abs=1e-12)


def disconnected_graph() -> Graph:
    """Two triangles, a 2-path, and an isolated vertex."""
    graph = Graph(9)
    for base in (0, 3):
        graph.add_edge(base, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base, base + 2)
    graph.add_edge(6, 7)  # vertex 8 stays isolated
    return graph


GRAPH_BUILDERS = {
    "er": lambda: erdos_renyi_gnp(80, 0.08, rng=17),
    "ba": lambda: barabasi_albert(120, 3, rng=23),
    "disconnected": disconnected_graph,
}


@pytest.fixture(params=sorted(GRAPH_BUILDERS), scope="module")
def graph_pair(request):
    """(graph, array trace, tuple-loop twin) for each golden graph."""
    graph = GRAPH_BUILDERS[request.param]()
    array_trace = FrontierSampler(4, backend="csr").sample(
        graph, 1_500, rng=5
    )
    assert isinstance(array_trace, ArrayWalkTrace)
    tuple_trace = WalkTrace(
        method=array_trace.method,
        edges=list(array_trace.edges),
        initial_vertices=array_trace.initial_vertices,
        budget=array_trace.budget,
        seed_cost=array_trace.seed_cost,
    )
    return graph, array_trace, tuple_trace


def empty_array_trace() -> ArrayWalkTrace:
    return ArrayWalkTrace(
        "FS",
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        [0],
        0.0,
        1.0,
    )


class TestDegreeParity:
    def test_pmf_matches_tuple_loop(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        fast = degree_pmf_from_trace(graph, array_trace)
        slow = degree_pmf_from_trace(graph, tuple_trace)
        assert set(fast) == set(slow)
        for k in slow:
            assert fast[k] == pytest.approx(slow[k], **TOL)

    def test_ccdf_matches_tuple_loop(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        fast = degree_ccdf_from_trace(graph, array_trace)
        slow = degree_ccdf_from_trace(graph, tuple_trace)
        assert set(fast) == set(slow)
        for k in slow:
            assert fast[k] == pytest.approx(slow[k], **TOL)

    def test_degree_of_decoupling(self, graph_pair):
        """An arbitrary label is histogrammed; walking degree reweights."""
        graph, array_trace, tuple_trace = graph_pair
        label_of = lambda v: (v % 3) * 2  # noqa: E731 — unrelated to degree
        fast = degree_pmf_from_trace(graph, array_trace, degree_of=label_of)
        slow = degree_pmf_from_trace(graph, tuple_trace, degree_of=label_of)
        assert set(fast) == set(slow) == set(range(5))
        for k in slow:
            assert fast[k] == pytest.approx(slow[k], **TOL)
        # The label histogram really decoupled from the walking degree:
        # only the labels {0, 2, 4} carry mass.
        assert fast[1] == fast[3] == 0.0

    def test_empty_trace_raises(self, graph_pair):
        graph = graph_pair[0]
        with pytest.raises(ValueError, match="empty trace"):
            degree_pmf_from_trace(graph, empty_array_trace())


class TestFunctionalParity:
    def test_vertex_functional(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        g = lambda v: 0.25 * v + 1.0  # noqa: E731
        assert vertex_functional_from_trace(
            graph, array_trace, g
        ) == pytest.approx(
            vertex_functional_from_trace(graph, tuple_trace, g), **TOL
        )

    def test_weighted_vertex_sums(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        g = lambda v: float(v * v)  # noqa: E731
        fast = weighted_vertex_sums(graph, array_trace, g)
        slow = weighted_vertex_sums(graph, tuple_trace, g)
        assert fast[0] == pytest.approx(slow[0], **TOL)
        assert fast[1] == pytest.approx(slow[1], **TOL)

    def test_edge_functional_with_membership(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        f = lambda u, v: float(u + 2 * v)  # noqa: E731
        member = lambda u, v: (u + v) % 2 == 0  # noqa: E731
        assert edge_functional_from_trace(
            array_trace, f, member
        ) == pytest.approx(
            edge_functional_from_trace(tuple_trace, f, member), **TOL
        )

    def test_edge_functional_empty_membership_raises(self, graph_pair):
        _, array_trace, tuple_trace = graph_pair
        never = lambda u, v: False  # noqa: E731
        for trace in (array_trace, tuple_trace):
            with pytest.raises(ValueError, match="E\\*"):
                edge_functional_from_trace(trace, lambda u, v: 1.0, never)


class TestLabelDensityParity:
    @staticmethod
    def _vertex_labeling(graph):
        labeling = VertexLabeling()
        for v in graph.vertices():
            labeling.add(v, "even" if v % 2 == 0 else "odd")
            if v % 5 == 0:
                labeling.add(v, "fifth")
        return labeling

    def test_vertex_label_density(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        labeling = self._vertex_labeling(graph)
        for label in ("even", "odd", "fifth", "missing"):
            assert vertex_label_density_from_trace(
                graph, array_trace, labeling, label
            ) == pytest.approx(
                vertex_label_density_from_trace(
                    graph, tuple_trace, labeling, label
                ),
                **TOL,
            )

    def test_vertex_label_densities_shared_normalizer(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        labeling = self._vertex_labeling(graph)
        labels = ["even", "odd", "fifth"]
        fast = vertex_label_densities_from_trace(
            graph, array_trace, labeling, labels
        )
        slow = vertex_label_densities_from_trace(
            graph, tuple_trace, labeling, labels
        )
        assert set(fast) == set(slow)
        for label in labels:
            assert fast[label] == pytest.approx(slow[label], **TOL)

    def test_edge_label_density(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        labeling = EdgeLabeling()
        for u, v in graph.edges():
            # Label one orientation only: E* = E_d semantics.
            labeling.add((u, v), "low" if u + v < 40 else "high")
        for label in ("low", "high"):
            assert edge_label_density_from_trace(
                array_trace, labeling, label
            ) == pytest.approx(
                edge_label_density_from_trace(tuple_trace, labeling, label),
                **TOL,
            )
        fast = edge_label_densities_from_trace(
            array_trace, labeling, ["low", "high"]
        )
        slow = edge_label_densities_from_trace(
            tuple_trace, labeling, ["low", "high"]
        )
        assert fast == pytest.approx(slow, **TOL)

    def test_unlabeled_trace_raises(self, graph_pair):
        _, array_trace, tuple_trace = graph_pair
        empty_labeling = EdgeLabeling()
        for trace in (array_trace, tuple_trace):
            with pytest.raises(ValueError, match="no sampled edge"):
                edge_label_density_from_trace(trace, empty_labeling, "x")


class TestCharacteristicParity:
    def test_clustering(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        assert global_clustering_from_trace(
            graph, array_trace
        ) == pytest.approx(
            global_clustering_from_trace(graph, tuple_trace), **TOL
        )

    def test_assortativity(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        assert assortativity_from_trace(
            graph, array_trace
        ) == pytest.approx(
            assortativity_from_trace(graph, tuple_trace), **TOL
        )

    def test_directed_assortativity(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        digraph = DiGraph(graph.num_vertices)
        for u, v in graph.edges():
            digraph.add_edge(u, v)  # one orientation: E* = E_d
        assert directed_assortativity_from_trace(
            digraph, array_trace
        ) == pytest.approx(
            directed_assortativity_from_trace(digraph, tuple_trace), **TOL
        )

    def test_size_estimators(self, graph_pair):
        graph, array_trace, tuple_trace = graph_pair
        for estimate in (
            estimate_num_vertices,
            estimate_volume,
            estimate_num_edges,
        ):
            assert estimate(graph, array_trace) == pytest.approx(
                estimate(graph, tuple_trace), **TOL
            )


class TestMetropolisTraceParity:
    def test_accepted_edge_estimators_agree(self):
        """ArrayMetropolisTrace rides the same dispatch path."""
        graph = barabasi_albert(150, 3, rng=9)
        array_trace = MetropolisHastingsWalk(backend="csr").sample(
            graph, 2_000, rng=11
        )
        tuple_trace = WalkTrace(
            method=array_trace.method,
            edges=list(array_trace.edges),
            initial_vertices=array_trace.initial_vertices,
            budget=array_trace.budget,
            seed_cost=array_trace.seed_cost,
        )
        fast = degree_pmf_from_trace(graph, array_trace)
        slow = degree_pmf_from_trace(graph, tuple_trace)
        assert set(fast) == set(slow)
        for k in slow:
            assert fast[k] == pytest.approx(slow[k], **TOL)


class TestVectorizedInternals:
    def test_dispatch_guard(self, graph_pair):
        _, array_trace, tuple_trace = graph_pair
        assert _vectorized.is_array_trace(array_trace)
        assert not _vectorized.is_array_trace(tuple_trace)

    def test_degree_array_cache_tracks_mutation(self):
        graph = disconnected_graph()
        before = _vectorized.degrees_of(graph)
        assert _vectorized.degrees_of(graph) is before  # cached
        graph.add_edge(7, 8)
        after = _vectorized.degrees_of(graph)
        assert after is not before
        assert after[8] == 1

    def test_degree_array_cache_is_bounded_lru(self):
        graph = disconnected_graph()
        latest = {}
        for i in range(8):
            graph.add_edge(i, i + 1)
            latest[graph.version] = _vectorized.degrees_of(graph)
        cache = graph._degree_array_cache
        assert len(cache) == _vectorized._DEGREE_CACHE_VERSIONS
        # The newest version survives the evictions (identity hit)...
        assert _vectorized.degrees_of(graph) is latest[graph.version]
        # ...and every retained entry is keyed by a version we saw.
        assert set(cache) <= set(latest)

    def test_unique_edges_multiplicities(self):
        sources = np.array([2, 0, 2, 2], dtype=np.int64)
        targets = np.array([1, 1, 1, 0], dtype=np.int64)
        us, vs, counts = _vectorized._unique_edges(sources, targets)
        observed = {
            (int(u), int(v)): int(c) for u, v, c in zip(us, vs, counts)
        }
        assert observed == {(2, 1): 2, (0, 1): 1, (2, 0): 1}
