"""The incremental session protocol: chunking, checkpoint/resume,
budget accounting, and bit-identity with the one-shot API.

The determinism contract under test:

- ``Sampler.sample()`` is ``start(); advance_budget(B); trace()`` and
  must reproduce the pre-session fixed-seed goldens exactly;
- both backends consume their random streams in protocol-defined
  units, so a session advanced in *any* chunk sequence matches the
  one-shot trace (except MultipleRW, whose walkers share one stream —
  there, identical chunk boundaries are required);
- a session checkpointed to disk at step k and resumed must finish
  with a trace bit-identical to the uninterrupted run — on both
  backends, and identically under ``REPRO_NO_NATIVE=1`` (the csr
  goldens pin the numpy draw protocol, which the native and
  pure-Python kernels implement bit-for-bit).
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

from repro.generators.ba import barabasi_albert
from repro.sampling import (
    DistributedFrontierSampler,
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    RandomEdgeSampler,
    RandomVertexSampler,
    SamplerSession,
    SingleRandomWalk,
    VertexTrace,
    load_session,
)

BUDGET = 150

#: (sampler key, backend) -> (initial vertices, first 4 edges, digest of
#: the full (edges, initial_vertices, visited) record).  Regenerate by
#: running the samplers at seed 7 on barabasi_albert(300, 2, rng=5) —
#: but any change here is an API-breaking change to the draw protocol.
GOLDENS = {
    ("SRW", "list"): ([165], [(165, 0), (0, 165), (165, 0), (0, 5)], "fb90b9d3c07e2cf7"),
    ("MHRW", "list"): ([165], [(165, 0), (0, 185), (185, 49), (49, 219)], "fe7fc79abf0d36ec"),
    ("FS", "list"): ([165, 77, 202, 24, 37, 274], [(77, 9), (37, 82), (165, 43), (9, 17)], "f012eb6e9bcb7067"),
    ("SRW", "csr"): ([187], [(187, 72), (72, 104), (104, 72), (72, 39)], "af7191c02c9ecb91"),
    ("MHRW", "csr"): ([187], [(187, 72), (72, 187), (187, 72), (72, 28)], "4b158542be38a120"),
    ("FS", "csr"): ([187, 269, 232, 67, 90, 262], [(187, 0), (232, 142), (142, 28), (0, 221)], "2c2e7551ea0c05ed"),
}


def make_sampler(key: str, backend: str):
    if key == "SRW":
        return SingleRandomWalk(backend=backend)
    if key == "MHRW":
        return MetropolisHastingsWalk(backend=backend)
    return FrontierSampler(6, backend=backend)


def digest(trace) -> str:
    record = (
        trace.edges,
        trace.initial_vertices,
        getattr(trace, "visited", None),
    )
    return hashlib.sha256(repr(record).encode()).hexdigest()[:16]


def trace_key(trace):
    if isinstance(trace, VertexTrace):
        return (trace.method, trace.vertices, trace.budget)
    return (
        trace.method,
        trace.edges,
        trace.initial_vertices,
        trace.budget,
        trace.seed_cost,
        trace.per_walker,
        trace.walker_indices,
        getattr(trace, "visited", None),
    )


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(300, 2, rng=5)


ALL_SAMPLERS = [
    SingleRandomWalk(),
    MetropolisHastingsWalk(),
    FrontierSampler(6),
    MultipleRandomWalk(4),
    DistributedFrontierSampler(4),
    RandomVertexSampler(0.8),
    RandomEdgeSampler(0.9),
    SingleRandomWalk(backend="csr"),
    MetropolisHastingsWalk(backend="csr"),
    FrontierSampler(6, backend="csr"),
    MultipleRandomWalk(4, backend="csr"),
]


class TestGoldens:
    @pytest.mark.parametrize("key,backend", sorted(GOLDENS))
    def test_sample_matches_fixed_seed_golden(self, graph, key, backend):
        """One-shot sample() reproduces the pre-session traces."""
        trace = make_sampler(key, backend).sample(graph, BUDGET, rng=7)
        seeds, head, expected = GOLDENS[(key, backend)]
        assert trace.initial_vertices == seeds
        assert trace.edges[:4] == head
        assert digest(trace) == expected

    @pytest.mark.parametrize("key,backend", sorted(GOLDENS))
    def test_checkpoint_resume_matches_golden(
        self, graph, tmp_path, key, backend
    ):
        """Chunked, disk-round-tripped sessions land on the goldens too.

        SRW/MHRW/FS consume their streams one event (or one contiguous
        block) at a time, so chunk boundaries and checkpoints are
        invisible: the resumed trace equals the one-shot golden bit for
        bit.
        """
        sampler = make_sampler(key, backend)
        session = sampler.start(graph, rng=7)
        session.advance_budget(40)  # checkpoint mid-walk, at step ~33
        path = tmp_path / "session.ckpt"
        session.save(path)
        resumed = load_session(path, graph)
        assert isinstance(resumed, SamplerSession)
        assert resumed.steps_taken == session.steps_taken
        resumed.advance_budget(BUDGET)
        trace = resumed.trace()
        _, _, expected = GOLDENS[(key, backend)]
        assert digest(trace) == expected
        assert trace_key(trace) == trace_key(
            sampler.sample(graph, BUDGET, rng=7)
        )


class TestResumeDeterminism:
    @pytest.mark.parametrize(
        "sampler", ALL_SAMPLERS, ids=lambda s: repr(s)
    )
    def test_resume_equals_uninterrupted(self, graph, tmp_path, sampler):
        """Checkpoint at step k + resume == the same run uninterrupted.

        Both runs use identical advance boundaries, so the guarantee
        covers every sampler — including MultipleRW, whose trace is
        chunk-boundary-sensitive by design.
        """
        uninterrupted = sampler.start(graph, rng=11)
        uninterrupted.advance_budget(60)
        uninterrupted.advance_budget(BUDGET)

        interrupted = sampler.start(graph, rng=11)
        interrupted.advance_budget(60)
        path = tmp_path / "ckpt.pkl"
        interrupted.save(path)
        del interrupted
        resumed = load_session(path, graph)
        resumed.advance_budget(BUDGET)

        assert trace_key(resumed.trace()) == trace_key(
            uninterrupted.trace()
        )
        assert resumed.spent() == uninterrupted.spent()

    @pytest.mark.parametrize(
        "sampler", ALL_SAMPLERS, ids=lambda s: repr(s)
    )
    def test_resume_same_checkpoint_twice_is_identical(
        self, graph, tmp_path, sampler
    ):
        """Two resumes of one checkpoint file must not alias.

        Each ``load_session`` unpickles a fully independent session —
        RNG state, walker positions and step records included — so
        driving the first resume to completion cannot perturb the
        second.  The two continuations must match bit for bit.
        """
        session = sampler.start(graph, rng=23)
        session.advance_budget(60)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        first = load_session(path, graph)
        second = load_session(path, graph)
        first.advance_budget(BUDGET)  # finish one before starting the other
        second.advance_budget(BUDGET)
        assert trace_key(first.trace()) == trace_key(second.trace())
        assert first.spent() == second.spent()

    def test_attach_rejects_mismatched_graph(self, graph, tmp_path):
        session = FrontierSampler(6).start(graph, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        other = barabasi_albert(200, 2, rng=6)
        with pytest.raises(ValueError, match="signature"):
            load_session(path, other)

    def test_attach_rejects_graph_mutated_since_save(self, tmp_path):
        """Satellite: a graph edited after save() must be refused.

        ``add_edge`` changes the edge count *and* bumps
        ``Graph.version``; either way the resumed walk would replay its
        stream against different neighbor rows and silently produce
        garbage, so ``load_session`` raises instead.
        """
        mutable = barabasi_albert(120, 2, rng=9)
        session = FrontierSampler(4).start(mutable, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        added = next(
            (u, v)
            for u in mutable.vertices()
            for v in mutable.vertices()
            if u < v and not mutable.has_edge(u, v)
        )
        assert mutable.add_edge(*added)
        with pytest.raises(ValueError, match="mutated"):
            load_session(path, mutable)

    def test_attach_rejects_count_preserving_mutation(self, tmp_path):
        """remove_edge + add_edge keeps (|V|, |E|) but reorders
        neighbor rows — the version field in the signature catches it."""
        mutable = barabasi_albert(120, 2, rng=9)
        session = FrontierSampler(4).start(mutable, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        edges_before = mutable.num_edges
        u, v = next(iter(mutable.edges()))
        assert mutable.remove_edge(u, v)
        assert mutable.add_edge(u, v)
        assert mutable.num_edges == edges_before  # counts alone can't tell
        with pytest.raises(ValueError, match="mutated"):
            load_session(path, mutable)

    def test_attach_guard_survives_a_failed_attempt(self, graph, tmp_path):
        """A rejected attach must not disarm the signature check."""
        import pickle

        session = FrontierSampler(6).start(graph, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        with open(path, "rb") as handle:
            detached = pickle.load(handle)
        with pytest.raises(ValueError, match="signature"):
            detached.attach(barabasi_albert(200, 2, rng=6))
        with pytest.raises(ValueError, match="signature"):
            detached.attach(barabasi_albert(250, 2, rng=6))
        detached.attach(graph)  # the right graph still works
        assert detached.graph is graph

    def test_attach_across_graph_representations(self, graph, tmp_path):
        """A csr-backend checkpoint saved on a Graph must reattach to
        the identical CSRGraph (which carries no mutation counter) —
        the version field is only compared when both sides have one."""
        from repro.graph.csr import get_csr

        sampler = FrontierSampler(6, backend="csr")
        session = sampler.start(graph, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        resumed = load_session(path, get_csr(graph))
        resumed.advance(10)
        assert resumed.steps_taken == 20
        # ...and the continuation matches staying on the Graph form.
        twin = load_session(path, graph)
        twin.advance(10)
        assert trace_key(twin.trace()) == trace_key(resumed.trace())

    def test_pre_version_checkpoints_stay_loadable(self, graph, tmp_path):
        """Checkpoints written before the signature carried the graph
        version stored a (|V|, |E|) 2-tuple; they must still attach
        (compared on the common prefix), not be rejected as mutated."""
        session = FrontierSampler(6).start(graph, rng=1)
        session.advance(10)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        with open(path, "rb") as handle:
            detached = pickle.load(handle)
        detached.__dict__["_graph_signature"] = (
            graph.num_vertices,
            graph.num_edges,
        )
        detached.attach(graph)
        assert detached.graph is graph
        with open(path, "rb") as handle:
            stale = pickle.load(handle)
        stale.__dict__["_graph_signature"] = (graph.num_vertices, 1)
        with pytest.raises(ValueError, match="mutated"):
            stale.attach(graph)

    def test_load_session_rejects_non_session(self, graph, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a session"}, handle)
        with pytest.raises(TypeError):
            load_session(path, graph)

    def test_detached_session_cannot_advance(self, graph, tmp_path):
        session = SingleRandomWalk().start(graph, rng=1)
        path = tmp_path / "ckpt.pkl"
        session.save(path)
        with open(path, "rb") as handle:
            detached = pickle.load(handle)
        assert detached.graph is None
        with pytest.raises(RuntimeError, match="detached"):
            detached.advance(5)

    def test_state_is_picklable_and_graph_free(self, graph):
        session = FrontierSampler(6, backend="csr").start(graph, rng=3)
        session.advance(25)
        state = session.state
        assert state["_graph"] is None
        assert pickle.loads(pickle.dumps(state))  # round-trips

    def test_snapshot_is_independent_of_the_live_session(self, graph):
        """`.state` is a view; `.snapshot()` must be a deep copy."""
        session = FrontierSampler(6).start(graph, rng=3)
        session.advance(10)
        view = session.state
        snapshot = session.snapshot()
        frontier_then = list(snapshot["frontier"])
        session.advance(40)
        # The cheap view aliases live members; the snapshot does not.
        assert view["frontier"] == session.frontier
        assert snapshot["frontier"] == frontier_then


class TestChunkingInvariance:
    @pytest.mark.parametrize("backend", ["list", "csr"])
    @pytest.mark.parametrize("key", ["SRW", "MHRW", "FS"])
    def test_any_chunk_sequence_matches_one_shot(self, graph, key, backend):
        sampler = make_sampler(key, backend)
        session = sampler.start(graph, rng=9)
        for steps in (1, 7, 30, 50, 12):
            session.advance(steps)
        one_shot = sampler.start(graph, rng=9)
        one_shot.advance(100)
        assert trace_key(session.trace()) == trace_key(one_shot.trace())

    def test_take_trace_drains_in_increments(self, graph):
        sampler = FrontierSampler(6, backend="csr")
        keep = sampler.start(graph, rng=4)
        drain = sampler.start(graph, rng=4)
        collected = []
        for budget in (50, 90, BUDGET):
            keep.advance_budget(budget)
            drain.advance_budget(budget)
            increment = drain.take_trace()
            collected.extend(increment.edges)
        assert collected == keep.trace().edges
        assert drain.spent() == keep.spent()
        # after draining, only post-drain steps are retained
        assert drain.trace().num_steps == 0

    def test_frontier_session_tracks_positions(self, graph):
        """The session's frontier equals the last per-walker targets."""
        sampler = FrontierSampler(6, backend="csr")
        session = sampler.start(graph, rng=2)
        session.advance(200)
        trace = session.trace()
        expected = list(session.initial_vertices)
        for idx, (_, v) in zip(trace.walker_indices, trace.edges):
            expected[idx] = v
        assert session.frontier == expected


class TestBudgetAccounting:
    def test_advance_budget_is_monotone_and_idempotent(self, graph):
        session = SingleRandomWalk().start(graph, rng=1)
        took = session.advance_budget(101)
        assert took == 100  # one seed unit, then 100 steps
        assert session.advance_budget(101) == 0
        assert session.advance_budget(50) == 0  # budgets never rewind
        assert session.advance_budget(121) == 20
        assert session.spent() == 121

    def test_fractional_budgets_leave_change_unspent(self, graph):
        session = FrontierSampler(6, seed_cost=1.5).start(graph, rng=1)
        session.advance_budget(20.7)  # 6 seeds * 1.5 = 9; int(11.7) steps
        assert session.steps_taken == 11
        assert session.spent() == pytest.approx(20.0)

    def test_multiple_rw_splits_budget_per_walker(self, graph):
        session = MultipleRandomWalk(4).start(graph, rng=1)
        session.advance_budget(100)  # int(100/4 - 1) = 24 per walker
        assert session.steps_taken == 24
        assert session.trace().num_steps == 96
        assert session.spent() == 100.0

    def test_trace_budget_reports_requested_budget(self, graph):
        sampler = SingleRandomWalk()
        session = sampler.start(graph, rng=1)
        session.advance_budget(77.5)
        assert session.trace().budget == 77.5
        # plain advance() reports actual spend instead
        other = sampler.start(graph, rng=1)
        other.advance(10)
        assert other.trace().budget == other.spent() == 11.0

    def test_negative_arguments_rejected(self, graph):
        session = SingleRandomWalk().start(graph, rng=1)
        with pytest.raises(ValueError):
            session.advance(-1)
        with pytest.raises(ValueError):
            session.advance_budget(-5)

    def test_edge_sampler_session_counts_attempt_cost(self, graph):
        session = RandomEdgeSampler(cost_per_edge=2.0).start(graph, rng=1)
        session.advance_budget(25)
        assert session.steps_taken == 12  # attempts
        assert session.spent() == 24.0
        assert len(session.trace().edges) == 12  # hit_ratio 1.0


class TestIsolatedSeeds:
    @pytest.mark.parametrize("backend", ["list", "csr"])
    def test_pinned_isolated_seed_rejected_at_start(self, backend):
        from repro.graph.graph import Graph

        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)  # vertex 3 is isolated
        sampler = FrontierSampler(2, backend=backend)
        with pytest.raises(ValueError, match="isolated"):
            sampler.start(graph, rng=1, initial_vertices=[0, 3])
        with pytest.raises(ValueError, match="isolated"):
            sampler.sample_from(graph, [0, 3], 0, rng=1)


class TestPlainAdvanceBudgetConsistency:
    def test_budget_never_underreports_spend(self, graph):
        """advance() past a named budget floors trace.budget at spend."""
        session = SingleRandomWalk().start(graph, rng=1)
        session.advance(100)
        session.advance_budget(50)  # no-op rewind attempt
        trace = session.trace()
        assert trace.num_steps == 100
        assert trace.budget == session.spent() == 101.0

    def test_named_budget_below_seed_cost_still_reported_verbatim(
        self, graph
    ):
        """sample(budget=0) semantics: seeds paid, budget field stays 0."""
        trace = FrontierSampler(6).sample(graph, 0, rng=1)
        assert trace.budget == 0
        assert trace.num_steps == 0
