"""Tests for repro.graph.graph.Graph."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph


class TestConstruction:
    def test_empty(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edges_infers_size(self):
        graph = Graph.from_edges([(0, 1), (1, 4)])
        assert graph.num_vertices == 5
        assert graph.num_edges == 2

    def test_from_edges_explicit_size(self):
        graph = Graph.from_edges([(0, 1)], num_vertices=10)
        assert graph.num_vertices == 10

    def test_from_edges_empty(self):
        graph = Graph.from_edges([])
        assert graph.num_vertices == 0

    def test_add_vertex_returns_id(self):
        graph = Graph(2)
        assert graph.add_vertex() == 2
        assert graph.num_vertices == 3

    def test_add_vertices(self):
        graph = Graph(1)
        graph.add_vertices(3)
        assert graph.num_vertices == 4

    def test_add_vertices_negative_rejected(self):
        with pytest.raises(ValueError):
            Graph(1).add_vertices(-1)


class TestEdges:
    def test_add_edge_symmetric(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 1

    def test_duplicate_edge_collapses(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        assert graph.add_edge(1, 0) is False
        assert graph.num_edges == 1
        assert graph.degree(0) == 1

    def test_self_loop_rejected(self):
        graph = Graph(2)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        graph = Graph(2)
        with pytest.raises(IndexError):
            graph.add_edge(0, 2)

    def test_edges_iterates_once(self, paw):
        edges = list(paw.edges())
        assert len(edges) == paw.num_edges
        assert all(u < v for u, v in edges)

    def test_directed_edges_both_orientations(self, paw):
        directed = list(paw.directed_edges())
        assert len(directed) == 2 * paw.num_edges
        assert Counter(directed) == Counter((v, u) for u, v in directed)


class TestQueries:
    def test_degrees(self, paw):
        assert paw.degrees() == [3, 2, 2, 1]
        assert paw.degree(0) == 3

    def test_neighbors(self, paw):
        assert sorted(paw.neighbors(0)) == [1, 2, 3]
        assert paw.neighbor_set(3) == {0}

    def test_volume_whole_graph(self, paw):
        assert paw.volume() == 2 * paw.num_edges == 8

    def test_volume_subset(self, paw):
        assert paw.volume([0, 3]) == 4

    def test_average_degree(self, paw):
        assert paw.average_degree() == pytest.approx(2.0)

    def test_average_degree_empty_rejected(self):
        with pytest.raises(ValueError):
            Graph().average_degree()

    def test_max_degree(self, paw):
        assert paw.max_degree() == 3

    def test_isolated_vertices(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert graph.isolated_vertices() == [2]

    def test_repr(self, paw):
        assert "num_vertices=4" in repr(paw)


class TestRandomPrimitives:
    def test_random_vertex_uniform(self, rng):
        graph = Graph(4)
        counts = Counter(graph.random_vertex(rng) for _ in range(8000))
        for v in range(4):
            assert counts[v] / 8000 == pytest.approx(0.25, abs=0.03)

    def test_random_vertex_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            Graph().random_vertex(rng)

    def test_random_neighbor_uniform(self, paw, rng):
        counts = Counter(paw.random_neighbor(0, rng) for _ in range(9000))
        for v in (1, 2, 3):
            assert counts[v] / 9000 == pytest.approx(1 / 3, abs=0.03)

    def test_random_neighbor_isolated_rejected(self, rng):
        graph = Graph(2)
        graph.add_edge(0, 1)
        graph.add_vertex()
        with pytest.raises(ValueError):
            graph.random_neighbor(2, rng)

    def test_random_edge_uniform_over_orientations(self, paw, rng):
        counts = Counter(paw.random_edge(rng) for _ in range(16000))
        expected = 1.0 / (2 * paw.num_edges)
        for _edge, count in counts.items():
            assert count / 16000 == pytest.approx(expected, abs=0.02)
        assert len(counts) == 2 * paw.num_edges

    def test_random_edge_no_edges_rejected(self, rng):
        with pytest.raises(ValueError):
            Graph(3).random_edge(rng)


class TestCopy:
    def test_copy_is_deep(self, paw):
        clone = paw.copy()
        clone.add_edge(1, 3)
        assert not paw.has_edge(1, 3)
        assert clone.num_edges == paw.num_edges + 1

    def test_copy_equal_structure(self, house):
        clone = house.copy()
        assert sorted(clone.edges()) == sorted(house.edges())


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=80,
        )
    )
    return n, edges


@given(data=edge_lists())
@settings(max_examples=100)
def test_handshake_lemma(data):
    n, edges = data
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    assert sum(graph.degrees()) == 2 * graph.num_edges


@given(data=edge_lists())
@settings(max_examples=100)
def test_adjacency_is_symmetric(data):
    n, edges = data
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    for u in graph.vertices():
        for v in graph.neighbors(u):
            assert u in graph.neighbor_set(v)


@given(data=edge_lists())
@settings(max_examples=100)
def test_edges_match_has_edge(data):
    n, edges = data
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    unique = {(min(u, v), max(u, v)) for u, v in edges}
    assert sorted(graph.edges()) == sorted(unique)
