"""Backend parity: the csr engine's three kernel paths agree exactly.

The contract under test: given the same seeded generator, SRW / MHRW /
FS / MultipleRW traces are element-for-element identical whether the
engine runs over a :class:`Graph`'s adjacency lists (the list-backend
reference), over :class:`CSRGraph` arrays in pure Python, or through
the native C kernels.  Fixed-seed golden traces pin the draw protocol
itself against silent drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.ba import barabasi_albert
from repro.generators.classic import cycle_graph
from repro.generators.er import erdos_renyi_gnp
from repro.graph.csr import get_csr
from repro.graph.graph import Graph
from repro.sampling import _native
from repro.sampling import vectorized as vec
from repro.sampling.base import (
    get_default_backend,
    set_default_backend,
    use_backend,
)
from repro.sampling.frontier import FrontierSampler
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk

NATIVE = _native.available()

#: (label, native flag) for every kernel path runnable here; the
#: engine treats a Graph input as the list-backend reference.
KERNEL_PATHS = [("csr-python", False)] + (
    [("csr-native", True)] if NATIVE else []
)


def disconnected_graph() -> Graph:
    """Two triangles, a 2-path, and an isolated vertex."""
    graph = Graph(9)
    for base in (0, 3):
        graph.add_edge(base, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base, base + 2)
    graph.add_edge(6, 7)  # vertex 8 stays isolated
    return graph


GRAPH_BUILDERS = {
    "er": lambda: erdos_renyi_gnp(80, 0.08, rng=17),
    "ba": lambda: barabasi_albert(120, 3, rng=23),
    "disconnected": disconnected_graph,
}

SAMPLER_RUNS = {
    "srw": lambda g, seed, native: vec.sample_single(
        g, 200, rng=seed, native=native
    ),
    "mhrw": lambda g, seed, native: vec.sample_metropolis(
        g, 200, rng=seed, native=native
    ),
    "fs": lambda g, seed, native: vec.sample_frontier(
        g, 5, 200, rng=seed, native=native
    ),
    "fs-uniform-selection": lambda g, seed, native: vec.sample_frontier(
        g, 5, 200, walker_selection="uniform", rng=seed, native=native
    ),
    "fs-stationary": lambda g, seed, native: vec.sample_frontier(
        g, 5, 200, seeding="stationary", rng=seed, native=native
    ),
    "multiple": lambda g, seed, native: vec.sample_multiple(
        g, 6, 200, rng=seed, native=native
    ),
}


def assert_traces_identical(reference, other):
    assert reference.initial_vertices == other.initial_vertices
    assert reference.edges == other.edges
    assert reference.walker_indices == other.walker_indices
    assert reference.per_walker == other.per_walker
    if hasattr(reference, "visited"):
        assert reference.visited == other.visited


class TestKernelParity:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("sampler_name", sorted(SAMPLER_RUNS))
    def test_csr_trace_identical_to_list_reference(
        self, graph_name, sampler_name
    ):
        graph = GRAPH_BUILDERS[graph_name]()
        csr = get_csr(graph)
        run = SAMPLER_RUNS[sampler_name]
        reference = run(graph, 42, False)  # list-backend reference
        for _label, native in KERNEL_PATHS:
            trace = run(csr, 42, native)
            assert_traces_identical(reference, trace)

    @pytest.mark.skipif(not NATIVE, reason="no C compiler available")
    def test_native_actually_engaged(self):
        graph = get_csr(barabasi_albert(50, 2, rng=1))
        trace = vec.sample_frontier(graph, 3, 100, rng=0, native=True)
        assert trace.num_steps == 97

    def test_native_true_without_csr_input_raises(self):
        graph = barabasi_albert(50, 2, rng=1)
        with pytest.raises(ValueError, match="native"):
            vec.sample_frontier(graph, 3, 100, rng=0, native=True)


class TestFixedSeedRegression:
    """Golden traces pin the draw protocol (any change is a break)."""

    @pytest.fixture
    def house(self):
        graph = cycle_graph(5)
        graph.add_edge(0, 2)
        return graph

    def test_fs_golden(self, house):
        for _, native in [("ref", None)] + KERNEL_PATHS:
            graph = house if native is None else get_csr(house)
            trace = vec.sample_frontier(
                graph, 2, 14, rng=123, native=bool(native)
            )
            assert trace.initial_vertices == [3, 0]
            assert trace.edges == [
                (3, 4), (4, 3), (3, 2), (0, 4), (4, 0), (2, 3),
                (0, 2), (2, 0), (0, 1), (3, 2), (1, 2), (2, 3),
            ]
            assert trace.walker_indices == [
                0, 0, 0, 1, 1, 0, 1, 1, 1, 0, 1, 0,
            ]

    def test_srw_golden(self, house):
        trace = vec.sample_single(house, 8, rng=7, native=False)
        assert trace.initial_vertices == [3]
        assert trace.edges == [
            (3, 4), (4, 0), (0, 1), (1, 0), (0, 2), (2, 1), (1, 2),
        ]

    def test_mhrw_golden(self, house):
        trace = vec.sample_metropolis(house, 8, rng=11, native=False)
        assert trace.initial_vertices == [0]
        assert trace.edges == [
            (0, 4), (4, 3), (3, 4), (4, 3), (3, 4), (4, 0), (0, 1),
        ]
        assert trace.visited == [4, 3, 4, 3, 4, 0, 1]


class TestHypothesisParity:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=60),
        p=st.floats(min_value=0.08, max_value=0.5),
        graph_seed=st.integers(min_value=0, max_value=2**31),
        walk_seed=st.integers(min_value=0, max_value=2**31),
        dimension=st.integers(min_value=1, max_value=6),
    )
    def test_fs_parity_on_random_graphs(
        self, n, p, graph_seed, walk_seed, dimension
    ):
        graph = erdos_renyi_gnp(n, p, rng=graph_seed)
        if graph.num_edges == 0:
            return
        csr = get_csr(graph)
        reference = vec.sample_frontier(
            graph, dimension, 120, rng=walk_seed, native=False
        )
        for _, native in KERNEL_PATHS:
            trace = vec.sample_frontier(
                csr, dimension, 120, rng=walk_seed, native=native
            )
            assert_traces_identical(reference, trace)

    @settings(max_examples=15, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=2**31),
        walk_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_srw_and_mhrw_parity_on_random_graphs(
        self, graph_seed, walk_seed
    ):
        graph = barabasi_albert(40, 2, rng=graph_seed)
        csr = get_csr(graph)
        for run in (vec.sample_single, vec.sample_metropolis):
            reference = run(graph, 150, rng=walk_seed, native=False)
            for _, native in KERNEL_PATHS:
                assert_traces_identical(
                    reference, run(csr, 150, rng=walk_seed, native=native)
                )


class TestSeeding:
    def test_uniform_seeds_skip_isolated(self):
        graph = disconnected_graph()
        degrees = vec.degrees_array(graph)
        seeds = vec.uniform_seeds_np(
            degrees, 500, np.random.default_rng(0)
        )
        assert 8 not in seeds
        assert set(seeds) <= set(range(8))

    def test_stationary_seeds_degree_proportional(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3)])  # star
        degrees = vec.degrees_array(graph)
        seeds = vec.stationary_seeds_np(
            degrees, 6000, np.random.default_rng(1)
        )
        hub_share = seeds.count(0) / len(seeds)
        assert hub_share == pytest.approx(0.5, abs=0.05)

    def test_stationary_seeds_no_edges_raises(self):
        with pytest.raises(ValueError, match="no edges"):
            vec.stationary_seeds_np(
                np.zeros(4, dtype=np.int64), 3, np.random.default_rng(0)
            )

    def test_isolated_start_raises(self):
        csr = get_csr(disconnected_graph())
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="isolated"):
            vec.run_random_walk(csr, 8, 10, rng)
        with pytest.raises(ValueError, match="isolated"):
            vec.run_frontier(csr, [0, 8], 10, rng)


class TestArrayTraces:
    def test_lazy_views_consistent(self):
        graph = get_csr(barabasi_albert(60, 2, rng=4))
        trace = vec.sample_frontier(graph, 4, 300, rng=9)
        assert trace.num_steps == 296
        assert len(trace.edges) == 296
        assert trace.visited_vertices == [v for _, v in trace.edges]
        assert sum(len(block) for block in trace.per_walker) == 296
        flat_by_walker = {
            (i, edge)
            for i, block in enumerate(trace.per_walker)
            for edge in block
        }
        rebuilt = {
            (w, edge)
            for w, edge in zip(trace.walker_indices, trace.edges)
        }
        assert flat_by_walker == rebuilt
        assert trace.spent() == 4 * 1.0 + 296

    def test_multiple_per_walker_blocks(self):
        graph = get_csr(barabasi_albert(60, 2, rng=4))
        trace = vec.sample_multiple(graph, 5, 200, rng=2)
        steps_each = int(200 / 5 - 1)
        assert [len(block) for block in trace.per_walker] == [steps_each] * 5
        for start, block in zip(trace.initial_vertices, trace.per_walker):
            assert block[0][0] == start

    def test_batch_walk_positions(self):
        graph = barabasi_albert(80, 2, rng=6)
        history = vec.batch_walk_positions(graph, [0, 1, 2], 25, rng=0)
        assert history.shape == (26, 3)
        for step in range(25):
            for walker in range(3):
                assert graph.has_edge(
                    int(history[step, walker]), int(history[step + 1, walker])
                )


class TestSamplerBackendSwitch:
    @pytest.fixture
    def graph(self):
        return barabasi_albert(100, 3, rng=8)

    def test_csr_backend_same_trace_for_graph_and_csr_input(self, graph):
        sampler = FrontierSampler(4, backend="csr")
        first = sampler.sample(graph, 300, rng=5)
        second = sampler.sample(get_csr(graph), 300, rng=5)
        assert first.edges == second.edges

    def test_all_samplers_run_on_csr_backend(self, graph):
        csr = get_csr(graph)
        for sampler in (
            SingleRandomWalk(backend="csr"),
            MultipleRandomWalk(4, backend="csr"),
            FrontierSampler(4, backend="csr"),
            MetropolisHastingsWalk(backend="csr"),
        ):
            trace = sampler.sample(csr, 200, rng=1)
            assert trace.num_steps > 0
            assert trace.method == type(sampler).name

    def test_sample_from_csr_backend(self, graph):
        sampler = FrontierSampler(3, backend="csr")
        trace = sampler.sample_from(get_csr(graph), [5, 6, 7], 50, rng=2)
        assert trace.initial_vertices == [5, 6, 7]
        assert trace.num_steps == 50

    def test_explicit_list_backend_rejects_csr_graph(self, graph):
        sampler = SingleRandomWalk(backend="list")
        with pytest.raises(TypeError, match="list"):
            sampler.sample(get_csr(graph), 100, rng=0)

    def test_csr_graph_input_implies_csr_backend(self, graph):
        trace = SingleRandomWalk().sample(get_csr(graph), 100, rng=0)
        assert isinstance(trace, vec.ArrayWalkTrace)

    def test_default_backend_switch(self, graph):
        assert get_default_backend() == "list"
        with use_backend("csr"):
            assert get_default_backend() == "csr"
            trace = SingleRandomWalk().sample(graph, 100, rng=0)
            assert isinstance(trace, vec.ArrayWalkTrace)
        assert get_default_backend() == "list"
        trace = SingleRandomWalk().sample(graph, 100, rng=0)
        assert not isinstance(trace, vec.ArrayWalkTrace)

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError, match="backend"):
            set_default_backend("gpu")

    def test_invalid_backend_at_construction(self):
        with pytest.raises(ValueError, match="backend"):
            FrontierSampler(2, backend="gpu")

    def test_interpreted_list_backend_uses_a_different_stream(self, graph):
        """The parity guarantee's boundary, pinned as a test.

        Bit-for-bit parity holds *within* the csr engine (adjacency
        reference vs CSR-python vs CSR-native).  The interpreted list
        backend draws from ``random.Random`` and is statistically — not
        element-wise — equivalent for the same seed; if these ever
        collide, a protocol change has silently aliased the streams.
        """
        interpreted = SingleRandomWalk(backend="list").sample(
            graph, 100, rng=7
        )
        engine = SingleRandomWalk(backend="csr").sample(graph, 100, rng=7)
        assert interpreted.num_steps == engine.num_steps
        assert interpreted.edges != engine.edges

    def test_mhrw_spent_counts_rejected_proposals(self, graph):
        budget = 100
        for backend in ("list", "csr"):
            trace = MetropolisHastingsWalk(backend=backend).sample(
                graph, budget, rng=7
            )
            assert len(trace.visited) == 99  # budget minus the seed
            assert trace.spent() == budget
            assert len(trace.edges) < len(trace.visited)  # some rejections


class TestEstimatorCompatibility:
    def test_degree_pmf_from_csr_trace(self):
        from repro.estimators.degree import degree_pmf_from_trace

        graph = barabasi_albert(400, 3, rng=12)
        trace = FrontierSampler(10, backend="csr").sample(
            graph, 4000, rng=3
        )
        pmf = degree_pmf_from_trace(graph, trace)
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert pmf  # non-degenerate

    def test_statistical_agreement_with_list_backend(self):
        """Same chain law: csr and list FS agree on average degree."""
        from repro.estimators.degree import degree_pmf_from_trace

        graph = barabasi_albert(300, 3, rng=15)

        def mean_degree(trace):
            pmf = degree_pmf_from_trace(graph, trace)
            return sum(k * p for k, p in pmf.items())

        list_est = mean_degree(
            FrontierSampler(8).sample(graph, 6000, rng=21)
        )
        csr_est = mean_degree(
            FrontierSampler(8, backend="csr").sample(graph, 6000, rng=21)
        )
        assert csr_est == pytest.approx(list_est, rel=0.15)
