"""Tests for degree-preserving (dis)assortative rewiring."""

import pytest

from repro.generators.ba import barabasi_albert
from repro.generators.configuration import (
    directed_configuration_model,
    power_law_degree_sequence,
)
from repro.generators.rewiring import assortative_arc_swaps, assortative_rewire
from repro.graph.graph import Graph
from repro.metrics.exact import (
    true_directed_assortativity,
    true_undirected_assortativity,
)


class TestRemoveEdge:
    def test_graph_remove(self, paw):
        assert paw.remove_edge(0, 3) is True
        assert not paw.has_edge(0, 3)
        assert paw.num_edges == 3
        assert paw.degree(3) == 0

    def test_graph_remove_missing(self, paw):
        assert paw.remove_edge(1, 3) is False
        assert paw.num_edges == 4

    def test_graph_remove_symmetric(self, paw):
        paw.remove_edge(1, 0)
        assert not paw.has_edge(0, 1)
        assert 1 not in paw.neighbor_set(0)

    def test_digraph_remove(self, small_digraph):
        assert small_digraph.remove_edge(0, 1) is True
        assert not small_digraph.has_edge(0, 1)
        assert small_digraph.in_degree(1) == 0

    def test_digraph_remove_is_directed(self, small_digraph):
        assert small_digraph.remove_edge(1, 0) is False  # only (0,1) exists
        assert small_digraph.has_edge(0, 1)


class TestUndirectedRewiring:
    def test_degree_sequence_preserved(self):
        graph = barabasi_albert(300, 2, rng=0)
        before = graph.degrees()
        assortative_rewire(graph, 2000, rng=1)
        assert graph.degrees() == before

    def test_assortativity_increases(self):
        graph = barabasi_albert(500, 2, rng=2)
        before = true_undirected_assortativity(graph)
        applied = assortative_rewire(graph, 3000, rng=3)
        after = true_undirected_assortativity(graph)
        assert applied > 0
        assert after > before

    def test_disassortativity_decreases(self):
        graph = barabasi_albert(500, 2, rng=4)
        before = true_undirected_assortativity(graph)
        assortative_rewire(graph, 3000, rng=5, disassortative=True)
        after = true_undirected_assortativity(graph)
        assert after < before

    def test_no_self_loops_or_duplicates(self):
        graph = barabasi_albert(200, 3, rng=6)
        assortative_rewire(graph, 2000, rng=7)
        edges = list(graph.edges())
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)

    def test_zero_steps(self, paw):
        assert assortative_rewire(paw, 0, rng=0) == 0

    def test_negative_steps_rejected(self, paw):
        with pytest.raises(ValueError):
            assortative_rewire(paw, -1)

    def test_tiny_graph_noop(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        assert assortative_rewire(graph, 100, rng=0) == 0


class TestDirectedSwaps:
    def _heavy_digraph(self, seed):
        degrees = power_law_degree_sequence(400, 2.0, max_degree=40, rng=seed)
        return directed_configuration_model(degrees, degrees[::-1], rng=seed)

    def test_degree_sequences_preserved(self):
        graph = self._heavy_digraph(0)
        out_before = graph.out_degrees()
        in_before = graph.in_degrees()
        assortative_arc_swaps(graph, 3000, rng=1)
        assert graph.out_degrees() == out_before
        assert graph.in_degrees() == in_before

    def test_directed_assortativity_increases(self):
        graph = self._heavy_digraph(2)
        before = true_directed_assortativity(graph)
        applied = assortative_arc_swaps(graph, 4000, rng=3)
        after = true_directed_assortativity(graph)
        assert applied > 0
        assert after > before

    def test_disassortative_swaps_decrease(self):
        graph = self._heavy_digraph(4)
        before = true_directed_assortativity(graph)
        assortative_arc_swaps(graph, 4000, rng=5, disassortative=True)
        assert true_directed_assortativity(graph) < before

    def test_no_self_arcs_or_duplicates(self):
        graph = self._heavy_digraph(6)
        assortative_arc_swaps(graph, 3000, rng=7)
        arcs = list(graph.edges())
        assert len(arcs) == len(set(arcs))
        assert all(u != v for u, v in arcs)

    def test_negative_steps_rejected(self, small_digraph):
        with pytest.raises(ValueError):
            assortative_arc_swaps(small_digraph, -1)

    def test_edge_count_invariant(self):
        graph = self._heavy_digraph(8)
        before = graph.num_edges
        assortative_arc_swaps(graph, 2000, rng=9)
        assert graph.num_edges == before
