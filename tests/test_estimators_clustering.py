"""Tests for the global clustering coefficient estimator."""

import networkx as nx
import pytest

from repro.generators.ba import barabasi_albert
from repro.generators.classic import complete_graph, cycle_graph, star_graph
from repro.generators.smallworld import watts_strogatz
from repro.graph.graph import Graph
from repro.sampling.base import WalkTrace
from repro.sampling.single import SingleRandomWalk
from repro.estimators.clustering import (
    global_clustering_from_trace,
    shared_neighbors,
)
from repro.metrics.exact import true_global_clustering


class TestSharedNeighbors:
    def test_triangle(self, triangle):
        assert shared_neighbors(triangle, 0, 1) == 1

    def test_no_shared(self, path4):
        assert shared_neighbors(path4, 0, 1) == 0

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert shared_neighbors(graph, 0, 1) == 3

    def test_symmetry(self, paw):
        for u, v in paw.edges():
            assert shared_neighbors(paw, u, v) == shared_neighbors(paw, v, u)


class TestTrueGlobalClustering:
    def test_complete_graph_is_one(self):
        assert true_global_clustering(complete_graph(6)) == pytest.approx(1.0)

    def test_cycle_is_zero(self):
        assert true_global_clustering(cycle_graph(6)) == 0.0

    def test_star_rejected(self):
        """A star has no vertex with two adjacent neighbors but every
        internal vertex has degree >= 2 only at the hub; V* = {hub}."""
        assert true_global_clustering(star_graph(4)) == 0.0

    def test_no_valid_vertices_rejected(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            true_global_clustering(graph)

    def test_matches_networkx_average_over_vstar(self):
        """Our C equals the average of nx local clustering over vertices
        with degree >= 2 (the paper's V*)."""
        graph = barabasi_albert(200, 3, rng=0)
        oracle = nx.Graph(list(graph.edges()))
        local = nx.clustering(oracle)
        v_star = [v for v in graph.vertices() if graph.degree(v) >= 2]
        expected = sum(local[v] for v in v_star) / len(v_star)
        assert true_global_clustering(graph) == pytest.approx(
            expected, abs=1e-9
        )

    def test_paw_hand_computed(self, paw):
        # c(0)=1/3 (one triangle of 3 possible pairs), c(1)=c(2)=1,
        # vertex 3 has degree 1 -> excluded. C = (1/3 + 1 + 1)/3
        assert true_global_clustering(paw) == pytest.approx((1 / 3 + 2) / 3)


class TestEstimator:
    def test_empty_trace_rejected(self, paw):
        with pytest.raises(ValueError):
            global_clustering_from_trace(paw, WalkTrace("x", [], [0], 0, 1.0))

    def test_all_degree_one_rejected(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        trace = WalkTrace("x", [(0, 1), (1, 0)], [0], 2, 1.0)
        with pytest.raises(ValueError):
            global_clustering_from_trace(graph, trace)

    def test_complete_graph_estimates_one(self):
        graph = complete_graph(6)
        trace = SingleRandomWalk().sample(graph, 2000, rng=1)
        assert global_clustering_from_trace(graph, trace) == pytest.approx(1.0)

    def test_converges_on_paw(self, paw):
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 60_000, rng=2
        )
        truth = true_global_clustering(paw)
        estimate = global_clustering_from_trace(paw, trace)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_converges_on_smallworld(self):
        graph = watts_strogatz(150, 6, 0.1, rng=3)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 60_000, rng=4
        )
        truth = true_global_clustering(graph)
        estimate = global_clustering_from_trace(graph, trace)
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_converges_on_ba(self):
        graph = barabasi_albert(150, 3, rng=5)
        trace = SingleRandomWalk(seeding="stationary").sample(
            graph, 80_000, rng=6
        )
        truth = true_global_clustering(graph)
        estimate = global_clustering_from_trace(graph, trace)
        assert estimate == pytest.approx(truth, rel=0.2)
