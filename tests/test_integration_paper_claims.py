"""Integration tests: the paper's headline claims must hold on the
scaled stand-ins.

These are the load-bearing assertions of the reproduction — each maps
to a specific figure/table and checks the *ordering* the paper reports
(who wins), not absolute error magnitudes.
"""

import pytest

from repro.datasets.registry import flickr_like, gab
from repro.experiments.degree_errors import degree_error_experiment
from repro.experiments.samplepaths import sample_paths
from repro.markov.transient import walk_trace_final_edge_gap
from repro.metrics.exact import true_degree_pmf
from repro.graph.components import largest_connected_component
from repro.sampling.frontier import FrontierSampler
from repro.sampling.independent import RandomEdgeSampler, RandomVertexSampler
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk


@pytest.fixture(scope="module")
def flickr():
    return flickr_like(scale=0.4)


@pytest.fixture(scope="module")
def gab_dataset():
    return gab(scale=0.4)


class TestFigure5Claim:
    """FS beats uniformly seeded SingleRW and MultipleRW on the
    disconnected social graph."""

    @pytest.fixture(scope="class")
    def result(self, flickr):
        return degree_error_experiment(
            flickr.graph,
            {
                "FS": FrontierSampler(64),
                "SingleRW": SingleRandomWalk(),
                "MultipleRW": MultipleRandomWalk(64),
            },
            budget=flickr.graph.num_vertices / 2.5,
            runs=60,
            root_seed=11,
            degree_of=flickr.in_degree_of,
            metric="ccdf",
        )

    def test_fs_beats_single(self, result):
        assert result.mean_error("FS") < result.mean_error("SingleRW")

    def test_fs_beats_multiple(self, result):
        assert result.mean_error("FS") < result.mean_error("MultipleRW")


class TestFigure10Claim:
    """On GAB (loosely connected), the FS advantage is large."""

    def test_fs_wins_by_a_clear_margin(self, gab_dataset):
        graph = gab_dataset.graph
        result = degree_error_experiment(
            graph,
            {
                "FS": FrontierSampler(64),
                "SingleRW": SingleRandomWalk(),
                "MultipleRW": MultipleRandomWalk(64),
            },
            budget=graph.num_vertices / 2.5,
            runs=60,
            root_seed=13,
            metric="ccdf",
        )
        assert result.mean_error("FS") < 0.8 * result.mean_error("SingleRW")
        assert result.mean_error("FS") < 0.8 * result.mean_error("MultipleRW")


class TestFigure11Claim:
    """MultipleRW seeded in steady state catches up to FS (Section 6.3:
    its earlier losses were the uniform start)."""

    def test_stationary_multiple_rw_comparable_to_fs(self, flickr):
        graph = flickr.graph
        result = degree_error_experiment(
            graph,
            {
                "FS": FrontierSampler(64),
                "MultipleRW-stationary": MultipleRandomWalk(
                    64, seeding="stationary"
                ),
                "MultipleRW-uniform": MultipleRandomWalk(64),
            },
            budget=graph.num_vertices / 2.5,
            runs=60,
            root_seed=17,
            degree_of=flickr.in_degree_of,
            metric="ccdf",
        )
        stationary = result.mean_error("MultipleRW-stationary")
        uniform = result.mean_error("MultipleRW-uniform")
        fs = result.mean_error("FS")
        assert stationary < uniform  # the seeding is the problem
        assert stationary < 1.5 * fs  # and once fixed, MRW ~ FS


class TestFigure12Claim:
    """Edge sampling beats vertex sampling above the mean degree, and
    FS tracks edge sampling (Sections 3 and 6.4)."""

    @pytest.fixture(scope="class")
    def result(self, flickr):
        return degree_error_experiment(
            flickr.graph,
            {
                "RE": RandomEdgeSampler(cost_per_edge=2.0),
                "RV": RandomVertexSampler(),
                "FS": FrontierSampler(64),
            },
            budget=flickr.graph.num_vertices / 2.5,
            runs=60,
            root_seed=19,
            degree_of=flickr.in_degree_of,
            metric="pmf",
        )

    def test_edge_beats_vertex_in_tail(self, result, flickr):
        mean_in_degree = sum(
            k * v
            for k, v in true_degree_pmf(
                flickr.graph, flickr.in_degree_of
            ).items()
        )
        tail_re = result.tail_mean_error("RE", 2 * mean_in_degree)
        tail_rv = result.tail_mean_error("RV", 2 * mean_in_degree)
        assert tail_re < tail_rv

    def test_vertex_beats_edge_below_mean(self, result, flickr):
        mean_in_degree = sum(
            k * v
            for k, v in true_degree_pmf(
                flickr.graph, flickr.in_degree_of
            ).items()
        )
        low = [
            k
            for k in result.curves["RE"]
            if 0 < k < 0.5 * mean_in_degree and k in result.curves["RV"]
        ]
        assert low
        re_low = sum(result.curves["RE"][k] for k in low) / len(low)
        rv_low = sum(result.curves["RV"][k] for k in low) / len(low)
        assert rv_low < re_low

    def test_fs_tracks_edge_sampling_in_tail(self, result, flickr):
        mean_in_degree = sum(
            k * v
            for k, v in true_degree_pmf(
                flickr.graph, flickr.in_degree_of
            ).items()
        )
        tail_fs = result.tail_mean_error("FS", 2 * mean_in_degree)
        tail_rv = result.tail_mean_error("RV", 2 * mean_in_degree)
        assert tail_fs < tail_rv


class TestFigure9Claim:
    """All FS sample paths converge near theta_10 on GAB while
    SingleRW paths scatter (some runs see only one side of the
    bridge)."""

    def test_fs_paths_tighter_than_single(self, gab_dataset):
        graph = gab_dataset.graph
        pmf = true_degree_pmf(graph)
        target = 10
        result = sample_paths(
            graph,
            target_degree=target,
            true_value=pmf.get(target, 0.0),
            dimension=64,
            total_steps=graph.num_vertices,
            num_paths=6,
            root_seed=23,
        )
        truth = result.true_value
        fs_spread = max(
            abs(v - truth) for v in result.final_values("FS")
        )
        single_spread = max(
            abs(v - truth) for v in result.final_values("SingleRW")
        )
        assert fs_spread < single_spread


class TestTable4Claim:
    """FS converges to the uniform edge law faster than single and
    multiple independent walkers (Appendix B)."""

    def test_fs_gap_smallest(self):
        from repro.experiments.tables import _table4_graphs

        graph = _table4_graphs(150, seed=101)["internet-rlt-mini"]
        lcc, _ = largest_connected_component(graph)
        budget = 30
        k = 10
        srw = walk_trace_final_edge_gap(
            lcc, SingleRandomWalk(), budget, runs=25_000, root_seed=31
        )
        mrw = walk_trace_final_edge_gap(
            lcc, MultipleRandomWalk(k), budget, runs=25_000, root_seed=37
        )
        fs = walk_trace_final_edge_gap(
            lcc, FrontierSampler(k), budget, runs=25_000, root_seed=29
        )
        assert fs < mrw
        assert fs < srw
