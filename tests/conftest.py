"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def triangle():
    """K3 — the smallest non-bipartite connected graph."""
    return complete_graph(3)


@pytest.fixture
def paw():
    """Triangle with a pendant vertex (degrees 1, 2, 2, 3)."""
    graph = complete_graph(3)
    graph.add_vertex()
    graph.add_edge(0, 3)
    return graph


@pytest.fixture
def house():
    """Cycle C5 plus one chord — non-regular, non-bipartite."""
    graph = cycle_graph(5)
    graph.add_edge(0, 2)
    return graph


@pytest.fixture
def two_triangles():
    """Two disconnected triangles — the minimal disconnected case."""
    graph = Graph(6)
    for base in (0, 3):
        graph.add_edge(base, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base, base + 2)
    return graph


@pytest.fixture
def bridge_graph():
    """Two triangles joined by a single bridge edge (loosely connected)."""
    graph = Graph(6)
    for base in (0, 3):
        graph.add_edge(base, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base, base + 2)
    graph.add_edge(2, 3)
    return graph


@pytest.fixture
def small_digraph():
    """A 5-vertex digraph with asymmetric arcs and one reciprocal pair."""
    return DiGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (0, 2), (3, 0), (3, 4)], num_vertices=5
    )


@pytest.fixture
def star5():
    return star_graph(5)


@pytest.fixture
def path4():
    return path_graph(4)
