"""Tests for Gelman-Rubin / Geweke walker diagnostics."""

import pytest

from repro.datasets.registry import gab
from repro.generators.ba import barabasi_albert
from repro.sampling.base import WalkTrace
from repro.sampling.multiple import MultipleRandomWalk
from repro.estimators.diagnostics import (
    degree_observable,
    gelman_rubin,
    geweke_z,
    walker_observable_sequences,
)


class TestSequences:
    def test_extraction(self, house):
        trace = MultipleRandomWalk(3).sample(house, 60, rng=0)
        sequences = walker_observable_sequences(
            house, trace, degree_observable(house)
        )
        assert len(sequences) == 3
        for edges, seq in zip(trace.per_walker, sequences):
            assert len(seq) == len(edges)

    def test_requires_per_walker(self, house):
        trace = WalkTrace("x", [(0, 1)], [0], 1, 1.0)
        with pytest.raises(ValueError):
            walker_observable_sequences(house, trace, lambda v: 1.0)

    def test_empty_walkers_dropped(self, house):
        trace = MultipleRandomWalk(3).sample(house, 3, rng=1)  # 0 steps
        with pytest.raises(ValueError):
            walker_observable_sequences(house, trace, lambda v: 1.0)


class TestGelmanRubin:
    def test_identical_chains_give_one(self):
        chains = [[1.0, 2.0, 3.0, 2.0], [1.0, 2.0, 3.0, 2.0]]
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.3)

    def test_disjoint_chains_flagged(self):
        chains = [[0.0, 0.01, 0.0, 0.01], [10.0, 10.01, 10.0, 10.01]]
        assert gelman_rubin(chains) > 5

    def test_constant_agreeing_chains(self):
        assert gelman_rubin([[1.0, 1.0], [1.0, 1.0]]) == 1.0

    def test_constant_disagreeing_chains(self):
        assert gelman_rubin([[0.0, 0.0], [1.0, 1.0]]) == float("inf")

    def test_single_chain_rejected(self):
        with pytest.raises(ValueError):
            gelman_rubin([[1.0, 2.0]])

    def test_truncates_to_shortest(self):
        chains = [[1.0, 2.0, 3.0], [1.5, 2.5]]
        value = gelman_rubin(chains)
        assert value > 0

    def test_mixed_walkers_near_one(self):
        """On a well-connected graph, MultipleRW walkers mix and R_hat
        is close to 1."""
        graph = barabasi_albert(200, 3, rng=0)
        trace = MultipleRandomWalk(8).sample(graph, 4000, rng=1)
        sequences = walker_observable_sequences(
            graph, trace, degree_observable(graph)
        )
        assert gelman_rubin(sequences) < 1.3

    def test_trapped_walkers_flagged_on_gab(self):
        """On GAB, walkers stuck on different sides of the bridge
        disagree — R_hat clearly above 1.  This is the Section 6.2
        failure made visible by the diagnostic.  The observable is the
        low-degree indicator, which separates the two sides."""
        dataset = gab(scale=0.2)
        graph = dataset.graph

        def low_degree(v: int) -> float:
            return 1.0 if graph.degree(v) <= 3 else 0.0

        values = []
        for seed in (2, 3, 5):
            trace = MultipleRandomWalk(16).sample(graph, 2000, rng=seed)
            sequences = walker_observable_sequences(graph, trace, low_degree)
            values.append(gelman_rubin(sequences))
        assert min(values) > 1.2
        assert max(values) > 1.4


class TestGeweke:
    def test_stationary_sequence_small_z(self):
        import random

        rng = random.Random(0)
        sequence = [rng.gauss(0, 1) for _ in range(500)]
        assert abs(geweke_z(sequence)) < 3

    def test_drifting_sequence_large_z(self):
        sequence = [i / 100 for i in range(500)]
        assert abs(geweke_z(sequence)) > 5

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            geweke_z([1.0] * 5)

    def test_overlapping_segments_rejected(self):
        with pytest.raises(ValueError):
            geweke_z([1.0] * 100, head_fraction=0.6, tail_fraction=0.6)

    def test_constant_sequence(self):
        assert geweke_z([2.0] * 100) == 0.0
