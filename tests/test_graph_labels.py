"""Tests for vertex and edge labelings."""


from repro.graph.labels import EdgeLabeling, VertexLabeling


class TestVertexLabeling:
    def test_empty(self):
        labeling = VertexLabeling()
        assert labeling.labels_of(0) == set()
        assert not labeling.is_labeled(0)
        assert len(labeling) == 0

    def test_add_and_query(self):
        labeling = VertexLabeling()
        labeling.add(1, "red")
        assert labeling.has_label(1, "red")
        assert not labeling.has_label(1, "blue")
        assert labeling.is_labeled(1)

    def test_add_many(self):
        labeling = VertexLabeling()
        labeling.add_many(0, ["a", "b"])
        assert labeling.labels_of(0) == {"a", "b"}

    def test_multiple_labels_per_vertex(self):
        labeling = VertexLabeling()
        labeling.add(0, 1)
        labeling.add(0, 2)
        assert labeling.labels_of(0) == {1, 2}
        assert len(labeling) == 1

    def test_labeled_vertices(self):
        labeling = VertexLabeling()
        labeling.add(2, "x")
        labeling.add(5, "x")
        assert sorted(labeling.labeled_vertices()) == [2, 5]

    def test_all_labels(self):
        labeling = VertexLabeling()
        labeling.add(0, "a")
        labeling.add(1, "b")
        assert labeling.all_labels() == {"a", "b"}

    def test_count_with_label(self):
        labeling = VertexLabeling()
        labeling.add(0, "g")
        labeling.add(1, "g")
        labeling.add(1, "h")
        assert labeling.count_with_label("g") == 2
        assert labeling.count_with_label("h") == 1
        assert labeling.count_with_label("missing") == 0

    def test_duplicate_add_idempotent(self):
        labeling = VertexLabeling()
        labeling.add(0, "a")
        labeling.add(0, "a")
        assert labeling.count_with_label("a") == 1


class TestEdgeLabeling:
    def test_empty(self):
        labeling = EdgeLabeling()
        assert labeling.labels_of((0, 1)) == set()
        assert not labeling.is_labeled((0, 1))

    def test_directed_keys(self):
        labeling = EdgeLabeling()
        labeling.add((0, 1), "fwd")
        assert labeling.has_label((0, 1), "fwd")
        assert not labeling.has_label((1, 0), "fwd")

    def test_add_many(self):
        labeling = EdgeLabeling()
        labeling.add_many((0, 1), [(1, 2), (3, 4)])
        assert labeling.labels_of((0, 1)) == {(1, 2), (3, 4)}

    def test_labeled_edges(self):
        labeling = EdgeLabeling()
        labeling.add((0, 1), "x")
        labeling.add((2, 3), "y")
        assert sorted(labeling.labeled_edges()) == [(0, 1), (2, 3)]

    def test_all_labels_and_counts(self):
        labeling = EdgeLabeling()
        labeling.add((0, 1), "x")
        labeling.add((1, 2), "x")
        assert labeling.all_labels() == {"x"}
        assert labeling.count_with_label("x") == 2

    def test_len(self):
        labeling = EdgeLabeling()
        labeling.add((0, 1), "x")
        labeling.add((0, 1), "y")
        assert len(labeling) == 1
