"""Tests for SingleRandomWalk."""

from collections import Counter

import pytest

from repro.graph.graph import Graph
from repro.sampling.single import SingleRandomWalk, random_walk


class TestRandomWalkFunction:
    def test_walk_length(self, house, rng):
        edges = random_walk(house, 0, 50, rng)
        assert len(edges) == 50

    def test_walk_is_connected_path(self, house, rng):
        edges = random_walk(house, 0, 30, rng)
        assert edges[0][0] == 0
        for (_u1, v1), (u2, _) in zip(edges, edges[1:]):
            assert v1 == u2

    def test_walk_uses_real_edges(self, house, rng):
        for u, v in random_walk(house, 0, 100, rng):
            assert house.has_edge(u, v)

    def test_isolated_start_rejected(self, rng):
        graph = Graph(2)
        graph.add_edge(0, 1)
        graph.add_vertex()
        with pytest.raises(ValueError):
            random_walk(graph, 2, 5, rng)

    def test_zero_steps(self, house, rng):
        assert random_walk(house, 0, 0, rng) == []


class TestSingleRandomWalk:
    def test_budget_accounting(self, house):
        trace = SingleRandomWalk().sample(house, 100, rng=0)
        assert trace.num_steps == 99  # one seed, unit cost
        assert trace.spent() == 100

    def test_invalid_seeding_rejected(self):
        with pytest.raises(ValueError):
            SingleRandomWalk(seeding="banana")

    def test_negative_seed_cost_rejected(self):
        with pytest.raises(ValueError):
            SingleRandomWalk(seed_cost=-1)

    def test_stays_in_component(self, two_triangles):
        trace = SingleRandomWalk().sample(two_triangles, 200, rng=1)
        start = trace.initial_vertices[0]
        component = set(range(3)) if start < 3 else set(range(3, 6))
        assert all(v in component for _, v in trace.edges)

    def test_deterministic_given_seed(self, house):
        a = SingleRandomWalk().sample(house, 50, rng=7)
        b = SingleRandomWalk().sample(house, 50, rng=7)
        assert a.edges == b.edges

    def test_stationary_edge_law(self, paw):
        """A long stationary walk samples each directed edge with
        probability 1/vol(V) (Section 4's key property)."""
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 60_000, rng=3
        )
        counts = Counter(trace.edges)
        expected = 1.0 / paw.volume()
        for _edge, count in counts.items():
            assert count / trace.num_steps == pytest.approx(
                expected, rel=0.15
            )
        assert len(counts) == paw.volume()  # every orientation seen

    def test_vertex_visits_degree_proportional(self, paw):
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 60_000, rng=4
        )
        counts = Counter(v for _, v in trace.edges)
        volume = paw.volume()
        for v in paw.vertices():
            assert counts[v] / trace.num_steps == pytest.approx(
                paw.degree(v) / volume, rel=0.1
            )

    def test_repr(self):
        text = repr(SingleRandomWalk(seeding="stationary", seed_cost=2.0))
        assert "stationary" in text
