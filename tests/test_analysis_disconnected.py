"""Tests for the Section 4.5 disconnected-graph model."""

import pytest

from repro.generators.classic import complete_graph, cycle_graph
from repro.generators.composite import disjoint_union
from repro.graph.graph import Graph
from repro.analysis.disconnected import (
    component_edge_probabilities,
    edge_sampling_imbalance,
)


@pytest.fixture
def unbalanced():
    """Two components, equal sizes, very different volumes: C6 (vol 12)
    and K6 (vol 30) — the Section 4.5 situation."""
    union, _ = disjoint_union([cycle_graph(6), complete_graph(6)])
    return union


class TestComponentProbabilities:
    def test_uniform_seeding_biased(self, unbalanced):
        rows = component_edge_probabilities(unbalanced, "uniform")
        # equal h (same sizes) but different volumes -> different p
        probabilities = sorted(p for _, _, p in rows)
        assert probabilities[0] != probabilities[1]
        # the sparse component's edges are oversampled
        sparse = next(p for size, vol, p in rows if vol == 12)
        dense = next(p for size, vol, p in rows if vol == 30)
        assert sparse > dense

    def test_stationary_seeding_uniform(self, unbalanced):
        rows = component_edge_probabilities(unbalanced, "stationary")
        probabilities = {round(p, 12) for _, _, p in rows}
        assert len(probabilities) == 1
        (p,) = probabilities
        assert p == pytest.approx(1.0 / unbalanced.volume())

    def test_isolated_components_skipped(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        rows = component_edge_probabilities(graph, "uniform")
        assert len(rows) == 1

    def test_invalid_seeding_rejected(self, unbalanced):
        with pytest.raises(ValueError):
            component_edge_probabilities(unbalanced, "magic")

    def test_no_edges_rejected(self):
        with pytest.raises(ValueError):
            component_edge_probabilities(Graph(3), "uniform")


class TestImbalance:
    def test_connected_graph_balanced(self):
        assert edge_sampling_imbalance(complete_graph(5)) == pytest.approx(
            1.0
        )

    def test_section_45_ratio(self, unbalanced):
        """p_sparse/p_dense = vol_dense/vol_sparse = 30/12 under uniform
        seeding with equal component sizes."""
        assert edge_sampling_imbalance(unbalanced, "uniform") == (
            pytest.approx(30 / 12)
        )

    def test_stationary_always_balanced(self, unbalanced):
        assert edge_sampling_imbalance(
            unbalanced, "stationary"
        ) == pytest.approx(1.0)

    def test_matches_gab_style_bias(self):
        """The imbalance equals the ratio of average degrees when
        components have equal sizes — the alpha = d_A/d story again."""
        from repro.generators.ba import barabasi_albert

        sparse = barabasi_albert(200, 1, rng=0)
        dense = barabasi_albert(200, 5, rng=1)
        union, _ = disjoint_union([sparse, dense])
        expected = dense.volume() / sparse.volume()
        assert edge_sampling_imbalance(union, "uniform") == pytest.approx(
            expected
        )
