"""Scenario-fabric tests: spec validation errors name their YAML path,
seeds derive deterministically, and the committed smoke suite is
bit-identical across procs=1/procs=2 and resumable per scenario."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.report import (
    build_report,
    flatten_report,
    render_csv,
    render_markdown,
    write_report,
)
from repro.experiments.suite import (
    SuiteSpecError,
    derive_scenario_seed,
    load_suite,
    parse_suite,
    run_suite,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE_SPEC = REPO_ROOT / "suites" / "smoke.yaml"
PAPER_SPEC = REPO_ROOT / "suites" / "paper.yaml"


def base_spec() -> dict:
    """A minimal valid suite document; tests mutate copies of it."""
    return {
        "suite": "unit",
        "seed": 7,
        "replicates": 2,
        "budgets": [50, 100],
        "estimators": ["average_degree"],
        "samplers": {"fs": {"kind": "fs", "dimension": 4}},
        "graphs": [
            {"family": "ba", "sizes": [60], "kwargs": {"edges_per_vertex": 2}}
        ],
    }


class TestSpecValidation:
    def test_minimal_spec_parses(self):
        spec = parse_suite(base_spec())
        assert spec.name == "unit"
        assert spec.scenario_ids() == ["ba-n60"]
        scenario = spec.scenarios[0]
        assert scenario.budgets == [50.0, 100.0]
        assert scenario.seed == derive_scenario_seed(7, "ba-n60")

    def test_unknown_sampler_kind_names_the_path(self):
        data = base_spec()
        data["samplers"]["bogus"] = {"kind": "quantum"}
        with pytest.raises(SuiteSpecError, match=r"samplers\.bogus\.kind"):
            parse_suite(data)

    def test_unknown_sampler_kwarg_names_the_path(self):
        data = base_spec()
        data["samplers"]["fs"]["walkers"] = 3  # should be 'dimension'
        with pytest.raises(SuiteSpecError, match=r"samplers\.fs\.walkers"):
            parse_suite(data)

    def test_unknown_estimator_names_the_path(self):
        data = base_spec()
        data["estimators"] = ["average_degree", "pagerank"]
        with pytest.raises(SuiteSpecError, match=r"estimators\[1\]"):
            parse_suite(data)

    def test_missing_budget_schedule_names_the_path(self):
        data = base_spec()
        del data["budgets"]
        with pytest.raises(
            SuiteSpecError, match=r"graphs\[0\]\.budgets"
        ) as excinfo:
            parse_suite(data)
        assert "missing budget schedule" in str(excinfo.value)

    def test_descending_budgets_rejected(self):
        data = base_spec()
        data["budgets"] = [100, 50]
        with pytest.raises(SuiteSpecError, match="ascending"):
            parse_suite(data)

    def test_duplicate_scenario_ids_rejected(self):
        data = base_spec()
        data["graphs"].append(dict(data["graphs"][0]))
        with pytest.raises(
            SuiteSpecError, match="duplicate scenario id 'ba-n60'"
        ):
            parse_suite(data)

    def test_seed_collision_rejected(self):
        data = base_spec()
        data["graphs"] = [
            {"family": "ba", "sizes": [60], "root_seed": 5},
            {"family": "ba", "sizes": [80], "root_seed": 5},
        ]
        with pytest.raises(
            SuiteSpecError, match="seed collision"
        ) as excinfo:
            parse_suite(data)
        # the error names both colliding scenarios
        assert "ba-n60" in str(excinfo.value)
        assert "ba-n80" in str(excinfo.value)

    def test_unknown_graph_family_names_the_path(self):
        data = base_spec()
        data["graphs"][0]["family"] = "hypercube"
        with pytest.raises(SuiteSpecError, match=r"graphs\[0\]\.family"):
            parse_suite(data)

    def test_empty_sizes_rejected(self):
        data = base_spec()
        data["graphs"][0]["sizes"] = []
        with pytest.raises(SuiteSpecError, match=r"graphs\[0\]\.sizes"):
            parse_suite(data)

    def test_per_entry_sampler_selection_must_exist(self):
        data = base_spec()
        data["graphs"][0]["samplers"] = ["fs", "srw"]
        with pytest.raises(
            SuiteSpecError, match=r"graphs\[0\]\.samplers\[1\]"
        ):
            parse_suite(data)

    def test_explicit_id_needs_single_size(self):
        data = base_spec()
        data["graphs"][0]["sizes"] = [60, 80]
        data["graphs"][0]["id"] = "sweep"
        with pytest.raises(SuiteSpecError, match=r"graphs\[0\]\.id"):
            parse_suite(data)

    def test_invalid_yaml_file_is_a_spec_error(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("suite: [unclosed", encoding="utf-8")
        with pytest.raises(SuiteSpecError, match="invalid YAML"):
            load_suite(bad)


class TestSeedDerivation:
    def test_deterministic_and_id_sensitive(self):
        assert derive_scenario_seed(7, "ba-n60") == derive_scenario_seed(
            7, "ba-n60"
        )
        assert derive_scenario_seed(7, "ba-n60") != derive_scenario_seed(
            7, "ba-n80"
        )
        assert derive_scenario_seed(7, "ba-n60") != derive_scenario_seed(
            8, "ba-n60"
        )

    def test_reordering_scenarios_keeps_seeds(self):
        data = base_spec()
        data["graphs"] = [
            {"family": "ba", "sizes": [60]},
            {"family": "ws", "sizes": [60], "kwargs": {"neighbors": 4}},
        ]
        forward = {s.id: s.seed for s in parse_suite(data).scenarios}
        data["graphs"].reverse()
        backward = {s.id: s.seed for s in parse_suite(data).scenarios}
        assert forward == backward


class TestRunSuite:
    def run_unit_suite(self, tmp_path, procs=1, resume=False, out="out"):
        spec = parse_suite(base_spec())
        result = run_suite(
            spec, procs=procs, out_dir=tmp_path / out, resume=resume
        )
        return write_report(result, tmp_path / out), result

    def test_procs_invariant_and_deterministic(self, tmp_path):
        paths1, _ = self.run_unit_suite(tmp_path, procs=1, out="p1")
        paths2, _ = self.run_unit_suite(tmp_path, procs=2, out="p2")
        assert paths1["json"].read_bytes() == paths2["json"].read_bytes()
        assert paths1["md"].read_bytes() == paths2["md"].read_bytes()
        assert paths1["csv"].read_bytes() == paths2["csv"].read_bytes()

    def test_resume_skips_matching_checkpoints(self, tmp_path):
        paths, first = self.run_unit_suite(tmp_path)
        assert first.resumed_ids() == []
        checkpoint = tmp_path / "out" / "scenarios" / "ba-n60.json"
        assert checkpoint.exists()
        before = paths["json"].read_bytes()
        _, second = self.run_unit_suite(tmp_path, resume=True)
        assert second.resumed_ids() == ["ba-n60"]
        assert paths["json"].read_bytes() == before

    def test_stale_checkpoint_reruns(self, tmp_path):
        self.run_unit_suite(tmp_path)
        checkpoint = tmp_path / "out" / "scenarios" / "ba-n60.json"
        payload = json.loads(checkpoint.read_text(encoding="utf-8"))
        payload["fingerprint"] = "0" * 16
        checkpoint.write_text(json.dumps(payload), encoding="utf-8")
        _, rerun = self.run_unit_suite(tmp_path, resume=True)
        assert rerun.resumed_ids() == []

    def test_report_shape_and_flatten(self, tmp_path):
        _, result = self.run_unit_suite(tmp_path)
        report = build_report(result)
        assert report["schema"] == 1
        scenario = report["scenarios"]["ba-n60"]
        stats = scenario["methods"]["fs"]["100"]["average_degree"]
        assert set(stats) == {"nrmse", "bias"}
        flat = flatten_report(report)
        assert "ba-n60/fs/B100/average_degree.nrmse" in flat
        # bias flattens as magnitude so sign flips never look better
        assert flat["ba-n60/fs/B100/average_degree.bias"] >= 0
        markdown = render_markdown(report)
        assert "average_degree" in markdown and "ba-n60" in markdown
        csv = render_csv(report)
        assert csv.splitlines()[0].startswith("suite,scenario,")
        # header + 2 budgets x 2 stats for the single method/estimator
        assert len(csv.splitlines()) == 1 + 4


class TestCommittedSuites:
    """The specs this repo ships must stay loadable, and smoke must
    reproduce its committed baseline (the CI drift gate's contract)."""

    def test_paper_spec_validates(self):
        spec = load_suite(PAPER_SPEC)
        assert spec.name == "paper"
        assert len(spec.scenarios) >= 4

    def test_smoke_golden_bit_identical_procs_1_vs_2(self, tmp_path):
        spec = load_suite(SMOKE_SPEC)
        reports = {}
        for procs in (1, 2):
            result = run_suite(spec, procs=procs)
            out = tmp_path / f"procs{procs}"
            reports[procs] = write_report(result, out)["json"].read_bytes()
        assert reports[1] == reports[2]
        fresh = json.loads(reports[1])
        committed = json.loads(
            (REPO_ROOT / "suites" / "baselines" / "smoke.json").read_text(
                encoding="utf-8"
            )
        )
        # The golden pin: the committed baseline IS this run's report.
        assert flatten_report(fresh) == pytest.approx(
            flatten_report(committed)
        )
