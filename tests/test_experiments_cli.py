"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import _EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_argument_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_registry_complete(self):
        expected = {f"fig{i}" for i in [1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]}
        expected |= {"table1", "table2", "table3", "table4"}
        expected |= {
            "ablation-dimension",
            "ablation-selection",
            "ablation-metropolis",
            "ablation-burnin",
            "ablation-distributed",
        }
        assert set(_EXPERIMENTS) == expected

    def test_run_fig3(self, capsys):
        assert main(["fig3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "finished in" in out

    def test_run_table1(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_fig1_with_runs(self, capsys):
        assert main(["fig1", "--scale", "0.05", "--runs", "3"]) == 0
        assert "Figure 1" in capsys.readouterr().out
