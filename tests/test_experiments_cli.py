"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import _EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_argument_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_registry_complete(self):
        expected = {f"fig{i}" for i in [1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]}
        expected |= {"table1", "table2", "table3", "table4"}
        expected |= {
            "ablation-dimension",
            "ablation-selection",
            "ablation-metropolis",
            "ablation-burnin",
            "ablation-distributed",
        }
        assert set(_EXPERIMENTS) == expected

    def test_run_fig3(self, capsys):
        assert main(["fig3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "finished in" in out

    def test_run_table1(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_fig1_with_runs(self, capsys):
        assert main(["fig1", "--scale", "0.05", "--runs", "3"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_run_with_procs(self, capsys):
        """--procs fans replicates across spawn workers; the figure
        must render exactly as with inline pooling (procs=1)."""
        assert main(
            ["fig10", "--scale", "0.05", "--runs", "2", "--procs", "1"]
        ) == 0
        inline = capsys.readouterr().out
        assert main(
            ["fig10", "--scale", "0.05", "--runs", "2", "--procs", "2"]
        ) == 0
        pooled = capsys.readouterr().out
        strip_timing = lambda text: [  # noqa: E731
            line for line in text.splitlines() if "finished in" not in line
        ]
        assert strip_timing(inline) == strip_timing(pooled)

    def test_procs_accepted_for_descriptive_drivers(self, capsys):
        """Descriptive artifacts have nothing to replicate; --procs is
        accepted and ignored rather than erroring."""
        assert main(["fig3", "--scale", "0.05", "--procs", "2"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_bad_procs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig10", "--scale", "0.05", "--procs", "0"])


class TestSampleSubcommand:
    def test_sample_runs_and_reports(self, capsys):
        assert main([
            "sample", "--ba", "300", "2", "--sampler", "fs",
            "--dimension", "8", "--budget", "200", "--chunk", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "started FS session" in out
        assert "session done: 192 steps" in out

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.ckpt")
        base = ["sample", "--ba", "300", "2", "--sampler", "srw",
                "--backend", "csr", "--chunk", "200"]
        assert main(base + ["--budget", "300",
                            "--checkpoint", checkpoint]) == 0
        first = capsys.readouterr().out
        assert "checkpoint written" in first
        assert main(base + ["--budget", "900",
                            "--resume", checkpoint]) == 0
        resumed = capsys.readouterr().out
        assert "resumed SingleRW session" in resumed
        assert "899 steps" in resumed  # 1 seed unit + 899 steps

        # uninterrupted run with the same chunking = same estimates
        assert main(base + ["--budget", "900"]) == 0
        fresh = capsys.readouterr().out
        assert fresh.splitlines()[-2] == resumed.splitlines()[-2]

    def test_resume_ignores_sampler_flags(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.ckpt")
        assert main(["sample", "--ba", "300", "2", "--sampler", "fs",
                     "--dimension", "4", "--budget", "100",
                     "--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        assert main(["sample", "--ba", "300", "2", "--sampler", "mrw",
                     "--budget", "150", "--resume", checkpoint]) == 0
        out = capsys.readouterr().out
        assert "resumed FS session" in out

    def test_dfs_rejects_csr_backend(self):
        with pytest.raises(SystemExit):
            main(["sample", "--ba", "100", "2", "--sampler", "dfs",
                  "--backend", "csr", "--budget", "50"])
