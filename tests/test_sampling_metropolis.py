"""Tests for the Metropolis–Hastings walk baseline."""

from collections import Counter

import pytest

from repro.sampling.metropolis import MetropolisHastingsWalk


class TestValidation:
    def test_bad_seeding(self):
        with pytest.raises(ValueError):
            MetropolisHastingsWalk(seeding="nope")

    def test_negative_seed_cost(self):
        with pytest.raises(ValueError):
            MetropolisHastingsWalk(seed_cost=-2)


class TestMechanics:
    def test_visited_length_is_steps(self, house):
        trace = MetropolisHastingsWalk().sample(house, 100, rng=0)
        assert len(trace.visited) == 99

    def test_accepted_edges_subset_of_steps(self, house):
        trace = MetropolisHastingsWalk().sample(house, 100, rng=1)
        assert len(trace.edges) <= len(trace.visited)

    def test_edges_are_real(self, house):
        trace = MetropolisHastingsWalk().sample(house, 300, rng=2)
        for u, v in trace.edges:
            assert house.has_edge(u, v)

    def test_deterministic(self, house):
        a = MetropolisHastingsWalk().sample(house, 80, rng=9)
        b = MetropolisHastingsWalk().sample(house, 80, rng=9)
        assert a.visited == b.visited


class TestUniformTarget:
    def test_uniform_vertex_visits(self, paw):
        """MH targets the uniform law: long-run visit frequencies are
        1/|V| even though degrees differ (the whole point of MRW)."""
        trace = MetropolisHastingsWalk(seeding="stationary").sample(
            paw, 80_000, rng=3
        )
        counts = Counter(trace.visited)
        n = paw.num_vertices
        for v in paw.vertices():
            assert counts[v] / len(trace.visited) == pytest.approx(
                1.0 / n, rel=0.1
            )

    def test_regular_graph_never_rejects(self, triangle):
        """On a regular graph the acceptance ratio is always 1."""
        trace = MetropolisHastingsWalk().sample(triangle, 500, rng=4)
        assert len(trace.edges) == len(trace.visited)
