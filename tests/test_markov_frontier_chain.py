"""Exact verification of Lemma 5.1 and Theorem 5.2 on small graphs."""

import random
from collections import Counter

import pytest

from repro.graph.cartesian import cartesian_power, decode_state, encode_state
from repro.markov.chain import (
    rw_stationary_distribution,
    rw_transition_matrix,
    total_variation_distance,
)
from repro.markov.frontier_chain import (
    frontier_stationary_distribution,
    frontier_transition_matrix,
)
from repro.sampling.frontier import FrontierSampler


class TestLemma51:
    """The FS chain built from Algorithm 1's dynamics must equal the RW
    chain on the explicit Cartesian power G^m."""

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_paw_graph(self, paw, m):
        fs_matrix = frontier_transition_matrix(paw, m)
        rw_matrix = rw_transition_matrix(cartesian_power(paw, m))
        for fs_row, rw_row in zip(fs_matrix, rw_matrix):
            assert fs_row == pytest.approx(rw_row, abs=1e-12)

    @pytest.mark.parametrize("m", [1, 2])
    def test_house_graph(self, house, m):
        fs_matrix = frontier_transition_matrix(house, m)
        rw_matrix = rw_transition_matrix(cartesian_power(house, m))
        for fs_row, rw_row in zip(fs_matrix, rw_matrix):
            assert fs_row == pytest.approx(rw_row, abs=1e-12)

    def test_transition_probability_is_inverse_frontier_volume(self, paw):
        """P[L -> L'] = 1/|e(L)| = 1/sum deg(v_i) for adjacent states."""
        matrix = frontier_transition_matrix(paw, 2)
        n = paw.num_vertices
        for code, row in enumerate(matrix):
            state = decode_state(code, n, 2)
            volume = sum(paw.degree(v) for v in state)
            for _target, probability in enumerate(row):
                if probability > 0:
                    assert probability == pytest.approx(1.0 / volume)

    def test_state_cap_enforced(self, paw):
        with pytest.raises(ValueError):
            frontier_transition_matrix(paw, 10, max_states=100)


class TestTheorem52:
    """The stationary law of FS on G^m."""

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_stationary_is_fixed_point(self, paw, m):
        pi = frontier_stationary_distribution(paw, m)
        matrix = frontier_transition_matrix(paw, m)
        n_states = len(pi)
        pushed = [
            sum(pi[s] * matrix[s][t] for s in range(n_states))
            for t in range(n_states)
        ]
        assert pushed == pytest.approx(pi, abs=1e-12)

    def test_stationary_sums_to_one(self, house):
        pi = frontier_stationary_distribution(house, 2)
        assert sum(pi) == pytest.approx(1.0)

    def test_m1_matches_rw_stationary(self, paw):
        assert frontier_stationary_distribution(paw, 1) == pytest.approx(
            rw_stationary_distribution(paw)
        )

    def test_closed_form(self, paw):
        """P[L] = sum deg(v_i) / (m |V|^(m-1) vol(V))."""
        m = 2
        pi = frontier_stationary_distribution(paw, m)
        n = paw.num_vertices
        denominator = m * n ** (m - 1) * paw.volume()
        for code, probability in enumerate(pi):
            state = decode_state(code, n, m)
            expected = sum(paw.degree(v) for v in state) / denominator
            assert probability == pytest.approx(expected)

    def test_no_edges_rejected(self):
        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            frontier_stationary_distribution(Graph(2), 2)


class TestSimulationAgreesWithChain:
    def test_fs_empirical_state_law(self, triangle):
        """Long FS simulation's frontier-state occupancy matches the
        Theorem 5.2 stationary law (state identified up to ordering of
        the walker list, which the chain distinguishes)."""
        m = 2
        pi = frontier_stationary_distribution(triangle, m)
        sampler = FrontierSampler(m)
        rng = random.Random(5)
        steps = 40_000
        trace = sampler.sample_from(triangle, [0, 1], steps, rng)
        # Replay the exact ordered frontier using walker_indices.
        positions = [0, 1]
        counts = Counter()
        for edge, walker in zip(trace.edges, trace.walker_indices):
            assert positions[walker] == edge[0]
            positions[walker] = edge[1]
            counts[tuple(positions)] += 1
        n = triangle.num_vertices
        empirical = [0.0] * (n**m)
        for state, count in counts.items():
            empirical[encode_state(state, n)] += count / steps
        assert total_variation_distance(empirical, pi) < 0.02
