"""Tests for Kfs / Kun / Kmw walker-count laws (Lemma 5.3 etc.)."""


import pytest

from repro.generators.classic import complete_graph, star_graph
from repro.generators.composite import join_by_bridge
from repro.markov.walker_counts import (
    kfs_pmf,
    kfs_pmf_by_enumeration,
    kmw_expected_count,
    kmw_to_uniform_ratio,
    kun_pmf,
    pmf_total_variation,
)


class TestKun:
    def test_binomial(self):
        pmf = kun_pmf(3, 0.5)
        assert pmf == pytest.approx([0.125, 0.375, 0.375, 0.125])

    def test_validation(self):
        with pytest.raises(ValueError):
            kun_pmf(0, 0.5)
        with pytest.raises(ValueError):
            kun_pmf(3, 1.5)

    def test_sums_to_one(self):
        assert sum(kun_pmf(10, 0.3)) == pytest.approx(1.0)


class TestKfsClosedForm:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_matches_enumeration_paw(self, paw, m):
        """Lemma 5.3's formula vs brute-force summation of Theorem 5.2's
        stationary law over all states of G^m."""
        subset = [0, 1]  # contains the hub: d_A != d
        closed = kfs_pmf(paw, subset, m)
        enumerated = kfs_pmf_by_enumeration(paw, subset, m)
        assert closed == pytest.approx(enumerated, abs=1e-12)

    @pytest.mark.parametrize("m", [1, 2])
    def test_matches_enumeration_house(self, house, m):
        subset = [0]
        closed = kfs_pmf(house, subset, m)
        enumerated = kfs_pmf_by_enumeration(house, subset, m)
        assert closed == pytest.approx(enumerated, abs=1e-12)

    def test_sums_to_one(self, paw):
        assert sum(kfs_pmf(paw, [0, 3], 5)) == pytest.approx(1.0)

    def test_regular_graph_kfs_equals_kun(self):
        """When d_A = d_B = d (regular graph) the size-biasing cancels
        and Kfs is exactly binomial."""
        graph = complete_graph(6)
        subset = [0, 1]
        assert kfs_pmf(graph, subset, 4) == pytest.approx(
            kun_pmf(4, 2 / 6)
        )

    def test_validation(self, paw):
        with pytest.raises(ValueError):
            kfs_pmf(paw, [], 2)
        with pytest.raises(ValueError):
            kfs_pmf(paw, [0, 1, 2, 3], 2)  # not a proper subset
        with pytest.raises(IndexError):
            kfs_pmf(paw, [99], 2)


class TestTheorem54:
    def test_tv_distance_shrinks_with_m(self):
        """Kfs -> Kun as m grows (Theorem 5.4), on a degree-skewed
        graph where the m=1 distance is visible."""
        graph = star_graph(9)  # hub degree 9, leaves degree 1
        subset = [0]  # the hub
        distances = [
            pmf_total_variation(
                kfs_pmf(graph, subset, m), kun_pmf(m, 1 / 10)
            )
            for m in (1, 4, 16, 64, 256)
        ]
        assert distances[0] > 0.3
        for earlier, later in zip(distances, distances[1:]):
            assert later < earlier
        # Theorem 5.4 convergence is O(1/sqrt(m)) — slow but real.
        assert distances[-1] < 0.1 * distances[0]


class TestKmw:
    def test_expected_count(self, paw):
        # V_A = {0}: d_A = 3, d = 2 -> E[Kmw] = m * (1/4) * 3/2
        assert kmw_expected_count(paw, [0], 8) == pytest.approx(3.0)

    def test_alpha_ratio_section51(self, paw):
        """alpha_A = d_A / d, the degree bias of independent walkers."""
        assert kmw_to_uniform_ratio(paw, [0]) == pytest.approx(1.5)
        assert kmw_to_uniform_ratio(paw, [3]) == pytest.approx(0.5)

    def test_alpha_one_for_average_subset(self, paw):
        # {1, 2} has average degree 2 = d -> no bias
        assert kmw_to_uniform_ratio(paw, [1, 2]) == pytest.approx(1.0)

    def test_gab_style_bias(self):
        """On a bridge of sparse+dense BA graphs, the sparse side gets
        alpha < 1 worth of walkers per its share — the Section 6.2
        oversampling argument (uniform seeding gives it *more* than its
        stationary share)."""
        from repro.generators.ba import barabasi_albert

        sparse = barabasi_albert(100, 1, rng=0)
        dense = barabasi_albert(100, 5, rng=1)
        graph = join_by_bridge(sparse, dense)
        sparse_side = list(range(100))
        alpha = kmw_to_uniform_ratio(graph, sparse_side)
        assert alpha < 0.5  # sparse side holds far fewer steady-state walkers


class TestPmfTotalVariation:
    def test_identical(self):
        assert pmf_total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_padding(self):
        assert pmf_total_variation([1.0], [0.5, 0.5]) == pytest.approx(0.5)
