"""Tests for MultipleRandomWalk."""

from collections import Counter

import pytest

from repro.sampling.multiple import MultipleRandomWalk


class TestValidation:
    def test_zero_walkers_rejected(self):
        with pytest.raises(ValueError):
            MultipleRandomWalk(0)

    def test_bad_seeding_rejected(self):
        with pytest.raises(ValueError):
            MultipleRandomWalk(2, seeding="nope")

    def test_negative_seed_cost_rejected(self):
        with pytest.raises(ValueError):
            MultipleRandomWalk(2, seed_cost=-0.5)


class TestBudgetSplit:
    def test_steps_per_walker(self):
        sampler = MultipleRandomWalk(10, seed_cost=1.0)
        # Section 4.4: floor(B/m - c)
        assert sampler.steps_per_walker(1000) == 99

    def test_steps_floor_at_zero(self):
        sampler = MultipleRandomWalk(10, seed_cost=5.0)
        assert sampler.steps_per_walker(40) == 0

    def test_total_steps(self, house):
        sampler = MultipleRandomWalk(4)
        trace = sampler.sample(house, 100, rng=0)
        assert trace.num_steps == 4 * 24

    def test_per_walker_structure(self, house):
        sampler = MultipleRandomWalk(3)
        trace = sampler.sample(house, 60, rng=1)
        assert trace.per_walker is not None
        assert len(trace.per_walker) == 3
        assert all(len(edges) == 19 for edges in trace.per_walker)
        flat = [e for edges in trace.per_walker for e in edges]
        assert Counter(flat) == Counter(trace.edges)


class TestIndependence:
    def test_walkers_start_at_seeds(self, house):
        sampler = MultipleRandomWalk(5)
        trace = sampler.sample(house, 100, rng=2)
        for seed, edges in zip(trace.initial_vertices, trace.per_walker):
            assert edges[0][0] == seed

    def test_each_walker_is_a_path(self, house):
        trace = MultipleRandomWalk(4).sample(house, 200, rng=3)
        for edges in trace.per_walker:
            for (_u1, v1), (u2, _) in zip(edges, edges[1:]):
                assert v1 == u2

    def test_walkers_cover_disconnected_components(self, two_triangles):
        """With enough uniformly seeded walkers, both components get
        sampled — unlike a single walker."""
        trace = MultipleRandomWalk(20).sample(two_triangles, 200, rng=4)
        visited = {v for _, v in trace.edges}
        assert visited & set(range(3))
        assert visited & set(range(3, 6))

    def test_deterministic(self, house):
        a = MultipleRandomWalk(3).sample(house, 80, rng=11)
        b = MultipleRandomWalk(3).sample(house, 80, rng=11)
        assert a.edges == b.edges

    def test_stationary_seeding_mode(self, paw):
        trace = MultipleRandomWalk(500, seeding="stationary").sample(
            paw, 1500, rng=5
        )
        counts = Counter(trace.initial_vertices)
        volume = paw.volume()
        for v in paw.vertices():
            assert counts[v] / 500 == pytest.approx(
                paw.degree(v) / volume, abs=0.06
            )
