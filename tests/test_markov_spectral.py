"""Tests for spectral diagnostics."""

import pytest

from repro.generators.classic import complete_graph, cycle_graph
from repro.graph.graph import Graph
from repro.markov.spectral import (
    relaxation_time,
    spectral_gap,
    transition_eigenvalues,
)


class TestEigenvalues:
    def test_largest_is_one(self, house):
        eigenvalues = transition_eigenvalues(house)
        assert eigenvalues[0] == pytest.approx(1.0)

    def test_all_in_unit_interval(self, paw):
        for value in transition_eigenvalues(paw):
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_complete_graph_spectrum(self):
        """K_n has eigenvalues 1 and -1/(n-1) with multiplicity n-1."""
        eigenvalues = transition_eigenvalues(complete_graph(5))
        assert eigenvalues[0] == pytest.approx(1.0)
        for value in eigenvalues[1:]:
            assert value == pytest.approx(-0.25, abs=1e-9)

    def test_bipartite_has_minus_one(self):
        eigenvalues = transition_eigenvalues(cycle_graph(4))
        assert eigenvalues[-1] == pytest.approx(-1.0)

    def test_isolated_vertex_rejected(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            transition_eigenvalues(graph)


class TestGap:
    def test_bipartite_gap_zero(self):
        assert spectral_gap(cycle_graph(6)) == pytest.approx(0.0, abs=1e-9)

    def test_complete_graph_gap(self):
        assert spectral_gap(complete_graph(5)) == pytest.approx(0.75)

    def test_longer_paths_mix_slower(self):
        # odd paths are bipartite; compare cliques with a chord-path
        fast = complete_graph(6)
        slow = Graph(6)
        for v in range(5):
            slow.add_edge(v, v + 1)
        slow.add_edge(0, 2)  # break bipartiteness
        assert spectral_gap(fast) > spectral_gap(slow)

    def test_relaxation_time_inverse(self):
        graph = complete_graph(4)
        assert relaxation_time(graph) == pytest.approx(
            1.0 / spectral_gap(graph)
        )

    def test_relaxation_time_infinite_for_bipartite(self):
        assert relaxation_time(cycle_graph(4)) == float("inf")
