"""CSRGraph: construction, queries, conversion, caching, I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import load
from repro.generators.ba import barabasi_albert
from repro.generators.er import erdos_renyi_gnp
from repro.graph.csr import CSRGraph, get_csr
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


def edge_set(graph):
    return set(graph.edges())


class TestConstruction:
    def test_from_graph_preserves_neighbor_order(self, paw):
        csr = CSRGraph.from_graph(paw)
        for v in paw.vertices():
            assert csr.neighbors(v).tolist() == list(paw.neighbors(v))

    def test_from_graph_counts(self, house):
        csr = CSRGraph.from_graph(house)
        assert csr.num_vertices == house.num_vertices
        assert csr.num_edges == house.num_edges
        assert csr.degrees().tolist() == house.degrees()

    def test_from_edges_collapses_duplicates_and_self_loops(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)])
        assert csr.num_vertices == 3
        assert csr.num_edges == 2
        assert edge_set(csr) == {(0, 1), (1, 2)}

    def test_from_edges_explicit_num_vertices(self):
        csr = CSRGraph.from_edges([(0, 1)], num_vertices=5)
        assert csr.num_vertices == 5
        assert csr.isolated_vertices() == [2, 3, 4]

    def test_from_edges_num_vertices_too_small(self):
        with pytest.raises(ValueError, match="mention"):
            CSRGraph.from_edges([(0, 4)], num_vertices=3)

    def test_from_edges_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            CSRGraph.from_edges([(0, -1)])

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="array"):
            CSRGraph.from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_from_edges_empty(self):
        csr = CSRGraph.from_edges([], num_vertices=4)
        assert csr.num_vertices == 4
        assert csr.num_edges == 0

    def test_from_edges_matches_graph_from_edges(self):
        edges = [(0, 3), (3, 1), (1, 0), (2, 3), (0, 3)]
        graph = Graph.from_edges(edges)
        csr = CSRGraph.from_edges(edges)
        assert edge_set(csr) == edge_set(graph)
        assert sorted(csr.degrees().tolist()) == sorted(graph.degrees())

    def test_raw_arrays_validated(self):
        with pytest.raises(ValueError, match="start with 0"):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))
        with pytest.raises(ValueError, match="must equal"):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 4]), np.array([0, 1, 2, 0]))
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(np.array([0, 2]), np.array([0, 5]))

    def test_round_trip_through_graph(self):
        graph = erdos_renyi_gnp(60, 0.1, rng=5)
        csr = CSRGraph.from_graph(graph)
        back = csr.to_graph()
        assert edge_set(back) == edge_set(graph)
        assert back.num_vertices == graph.num_vertices


class TestQueries:
    def test_degree_and_neighbors(self, paw):
        csr = CSRGraph.from_graph(paw)
        for v in paw.vertices():
            assert csr.degree(v) == paw.degree(v)
        assert csr.degree(3) == 1

    def test_degree_out_of_range(self, paw):
        csr = CSRGraph.from_graph(paw)
        with pytest.raises(IndexError):
            csr.degree(99)

    def test_has_edge(self, paw):
        csr = CSRGraph.from_graph(paw)
        assert csr.has_edge(0, 1)
        assert csr.has_edge(0, 3)
        assert not csr.has_edge(1, 3)

    def test_volume_and_averages(self, house):
        csr = CSRGraph.from_graph(house)
        assert csr.volume() == 2 * house.num_edges
        assert csr.volume([0, 2]) == house.degree(0) + house.degree(2)
        assert csr.average_degree() == pytest.approx(house.average_degree())
        assert csr.max_degree() == house.max_degree()

    def test_empty_graph_stats_raise(self):
        csr = CSRGraph.from_edges([], num_vertices=0)
        with pytest.raises(ValueError):
            csr.average_degree()
        with pytest.raises(ValueError):
            csr.max_degree()

    def test_repr(self, paw):
        text = repr(CSRGraph.from_graph(paw))
        assert "num_vertices=4" in text


class TestRandomPrimitives:
    def test_random_neighbor_distribution_support(self, paw):
        csr = CSRGraph.from_graph(paw)
        rng = np.random.default_rng(0)
        seen = {csr.random_neighbor(0, rng) for _ in range(200)}
        assert seen == set(paw.neighbors(0))

    def test_random_neighbor_isolated_raises(self):
        csr = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        with pytest.raises(ValueError, match="no neighbors"):
            csr.random_neighbor(2, np.random.default_rng(0))

    def test_random_neighbors_batch(self):
        graph = barabasi_albert(200, 2, rng=3)
        csr = CSRGraph.from_graph(graph)
        rng = np.random.default_rng(1)
        vertices = np.arange(200, dtype=np.int64)
        drawn = csr.random_neighbors(vertices, rng)
        for v, w in zip(vertices.tolist(), drawn.tolist()):
            assert graph.has_edge(v, w)


class TestGetCsrCache:
    def test_cache_hit(self, house):
        assert get_csr(house) is get_csr(house)

    def test_passthrough(self, house):
        csr = get_csr(house)
        assert get_csr(csr) is csr

    def test_cache_invalidated_by_mutation(self, house):
        before = get_csr(house)
        house.add_edge(1, 4)
        after = get_csr(house)
        assert after is not before
        assert after.num_edges == before.num_edges + 1

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            get_csr([(0, 1)])


class TestIo:
    def test_read_edge_list_csr_matches_list(self, tmp_path):
        graph = erdos_renyi_gnp(40, 0.15, rng=9)
        path = tmp_path / "edges.txt"
        write_edge_list(graph, path)
        as_list = read_edge_list(path)
        as_csr = read_edge_list(path, backend="csr")
        assert isinstance(as_csr, CSRGraph)
        assert edge_set(as_csr) == edge_set(as_list)
        assert as_csr.num_vertices == as_list.num_vertices

    def test_read_edge_list_csr_num_vertices(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n", encoding="utf-8")
        csr = read_edge_list(path, backend="csr", num_vertices=6)
        assert csr.num_vertices == 6

    def test_read_edge_list_csr_skips_self_loops(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n0 0\n0 1\n", encoding="utf-8")
        csr = read_edge_list(path, backend="csr")
        assert edge_set(csr) == {(0, 1)}

    def test_read_edge_list_csr_directed_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="undirected"):
            read_edge_list(path, directed=True, backend="csr")

    def test_read_edge_list_bad_backend(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="backend"):
            read_edge_list(path, backend="sparse")

    def test_write_edge_list_accepts_csr(self, tmp_path):
        graph = erdos_renyi_gnp(20, 0.2, rng=2)
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "out.txt"
        write_edge_list(csr, path)
        assert edge_set(read_edge_list(path)) == edge_set(graph)


class TestRegistryBackend:
    def test_load_csr_attaches_view(self):
        dataset = load("gab", scale=0.05, backend="csr")
        assert dataset.csr is not None
        assert dataset.csr.num_edges == dataset.graph.num_edges

    def test_sampling_graph_caches(self):
        dataset = load("gab", scale=0.05)
        assert dataset.csr is None
        first = dataset.sampling_graph("csr")
        assert dataset.sampling_graph("csr") is first
        assert dataset.sampling_graph("list") is dataset.graph

    def test_sampling_graph_tracks_mutation(self):
        dataset = load("gab", scale=0.05)
        before = dataset.sampling_graph("csr")
        isolated = dataset.graph.add_vertex()
        dataset.graph.add_edge(0, isolated)
        after = dataset.sampling_graph("csr")
        assert after is not before
        assert after.num_edges == dataset.graph.num_edges

    def test_sampling_graph_bad_backend(self):
        dataset = load("gab", scale=0.05)
        with pytest.raises(ValueError, match="backend"):
            dataset.sampling_graph("dense")

    def test_load_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            load("gab", scale=0.05, backend="dense")
